"""Exception hierarchy for the Border Control reproduction.

Hardware-visible error conditions (access violations, faults) are modeled
as events delivered to the OS, not exceptions; the exceptions here signal
*misuse of the library* or conditions the simulated OS raises to its
caller (e.g. a process touching an unmapped virtual address).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "MemoryError_",
    "UnmappedAddressError",
    "PageFault",
    "ProtectionFault",
    "AcceleratorDisabledError",
    "AcceleratorHangError",
    "BorderControlViolation",
    "BorderTimeoutError",
    "SimulationIncompleteError",
    "SweepError",
    "TransientCellError",
    "JournalLockedError",
    "JobCancelled",
    "FleetError",
]


class ReproError(Exception):
    """Base class for every library-specific exception."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent system configuration."""


class MemoryError_(ReproError):
    """Base for simulated-memory errors (named to avoid the builtin)."""


class UnmappedAddressError(MemoryError_):
    """A physical access outside any backed region of physical memory."""


class PageFault(MemoryError_):
    """A virtual access to an unmapped page (the OS may service it)."""

    def __init__(self, vaddr: int, write: bool = False) -> None:
        super().__init__(f"page fault at {vaddr:#x} ({'write' if write else 'read'})")
        self.vaddr = vaddr
        self.write = write


class ProtectionFault(MemoryError_):
    """A virtual access violating page-table permissions (CPU-side)."""

    def __init__(self, vaddr: int, write: bool = False) -> None:
        super().__init__(
            f"protection fault at {vaddr:#x} ({'write' if write else 'read'})"
        )
        self.vaddr = vaddr
        self.write = write


class AcceleratorDisabledError(ReproError):
    """Work was submitted to an accelerator the OS has disabled."""


class BorderTimeoutError(ReproError):
    """A border-crossing request exhausted its timeout/retry budget.

    Raised only when the :class:`~repro.core.border_port.BorderControlPort`
    runs with ``strict_timeouts``; otherwise the request is counted and
    reported as failed (``None``) so the simulation can keep making
    forward progress under fault injection.
    """

    def __init__(self, addr: int, write: bool, attempts: int) -> None:
        kind = "write" if write else "read"
        super().__init__(
            f"border {kind} of {addr:#x} timed out after {attempts} attempt(s)"
        )
        self.addr = addr
        self.write = write
        self.attempts = attempts


class AcceleratorHangError(ReproError):
    """An accelerator hang survived every watchdog recovery attempt.

    The chaos harness raises this when quarantining the accelerator and
    releasing injected memory-path hangs both failed to let the kernel
    terminate — i.e. the resilience layer itself is broken.
    """

    def __init__(self, accel_id: str, watchdog_fires: int) -> None:
        super().__init__(
            f"accelerator {accel_id!r} still hung after "
            f"{watchdog_fires} watchdog fire(s)"
        )
        self.accel_id = accel_id
        self.watchdog_fires = watchdog_fires


class SimulationIncompleteError(ReproError):
    """A simulation ended without its kernel completing.

    Raised at the source instead of letting a silent zero-tick
    :class:`~repro.sim.runner.RunResult` flow into downstream metrics
    (where it would only surface later as a baffling
    ``ValueError: baseline has zero runtime``).
    """

    def __init__(self, workload: str, detail: str) -> None:
        super().__init__(
            f"kernel for workload {workload!r} never completed: {detail}"
        )
        self.workload = workload
        self.detail = detail


class TransientCellError(ReproError):
    """A host-side cell failure worth retrying (I/O hiccup, OOM kill, ...).

    The sweep supervisor retries cells failing with this type using
    bounded exponential backoff; any other exception type is treated as
    potentially deterministic and quarantined as *poison* once the same
    failure repeats (see :mod:`repro.supervisor`).
    """


class SweepError(ReproError):
    """One or more cells of a parallel sweep failed.

    ``outcomes`` (when provided) carries the per-cell outcomes of the
    whole sweep — including every *successful* cell — so callers can
    salvage partial results instead of losing the run. The element type
    depends on the producer: :class:`repro.sweep.CellOutcome` for grid
    sweeps, supervisor task outcomes for chaos campaigns.
    """

    def __init__(self, failures, outcomes=None) -> None:
        failures = list(failures)
        summary = "; ".join(failures[:3])
        if len(failures) > 3:
            summary += f"; … and {len(failures) - 3} more"
        super().__init__(f"{len(failures)} sweep cell(s) failed: {summary}")
        self.failures = failures
        self.outcomes = list(outcomes) if outcomes is not None else None


class JournalLockedError(ReproError):
    """Another live process holds the run journal for this run id.

    Run journals are single-writer: two writers interleaving appends to
    one journal would corrupt the last-wins replay semantics. The lock
    is advisory (``flock``) and held for the journal's open lifetime,
    so it vanishes with the holding process — a SIGKILLed server never
    leaves a stale lock behind.

    ``holder_alive`` reports whether the PID recorded in the ``.lock``
    sidecar is a live process: ``True`` (it is), ``False`` (it is not —
    the lock is held by some *other* live process, e.g. an inherited
    file descriptor, because ``flock`` itself is kernel-released on
    death), or ``None`` (no PID could be parsed).
    """

    def __init__(
        self, run_id: str, path, holder: str = "", holder_alive=None
    ) -> None:
        if holder:
            if holder_alive is True:
                liveness = ", alive"
            elif holder_alive is False:
                liveness = (
                    ", no longer alive — the flock is held by an "
                    "unidentified live process (inherited fd?)"
                )
            else:
                liveness = ""
            detail = f" (held by {holder}{liveness})"
        else:
            detail = ""
        super().__init__(
            f"journal for run {run_id!r} is locked by another live "
            f"process{detail}: {path}"
        )
        self.run_id = run_id
        self.path = path
        self.holder = holder
        self.holder_alive = holder_alive


class FleetError(ReproError):
    """A fleet campaign failed at the coordination layer (not a cell).

    Raised for protocol violations and unrecoverable coordinator state;
    ordinary worker death, partitions, and dropped frames are *handled*
    (lease expiry + reassignment), not raised.
    """


class JobCancelled(ReproError):
    """A campaign was cancelled cooperatively between cells.

    Raised by the chaos/recovery campaign loops when their
    ``should_abort`` callback turns true (job cancellation, server
    drain, or a per-job deadline). Cells completed before the abort are
    already journaled, so a resumed run re-executes only the remainder.
    """

    def __init__(self, reason: str = "cancelled") -> None:
        super().__init__(reason)
        self.reason = reason


class BorderControlViolation(ReproError):
    """Raised when a blocked border crossing is surfaced synchronously.

    In hardware the violation is an exception delivered to the OS and the
    offending request is dropped; the functional model mirrors that, but
    test and attack harnesses can also observe the violation as a Python
    exception through :class:`repro.core.border_control.BorderControl`
    strict mode.
    """

    def __init__(self, paddr: int, write: bool, accel_id: str) -> None:
        kind = "write" if write else "read"
        super().__init__(
            f"border control blocked {kind} of physical address {paddr:#x} "
            f"from accelerator {accel_id!r}"
        )
        self.paddr = paddr
        self.write = write
        self.accel_id = accel_id
