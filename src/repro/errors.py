"""Exception hierarchy for the Border Control reproduction.

Hardware-visible error conditions (access violations, faults) are modeled
as events delivered to the OS, not exceptions; the exceptions here signal
*misuse of the library* or conditions the simulated OS raises to its
caller (e.g. a process touching an unmapped virtual address).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "MemoryError_",
    "UnmappedAddressError",
    "PageFault",
    "ProtectionFault",
    "AcceleratorDisabledError",
    "BorderControlViolation",
]


class ReproError(Exception):
    """Base class for every library-specific exception."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent system configuration."""


class MemoryError_(ReproError):
    """Base for simulated-memory errors (named to avoid the builtin)."""


class UnmappedAddressError(MemoryError_):
    """A physical access outside any backed region of physical memory."""


class PageFault(MemoryError_):
    """A virtual access to an unmapped page (the OS may service it)."""

    def __init__(self, vaddr: int, write: bool = False) -> None:
        super().__init__(f"page fault at {vaddr:#x} ({'write' if write else 'read'})")
        self.vaddr = vaddr
        self.write = write


class ProtectionFault(MemoryError_):
    """A virtual access violating page-table permissions (CPU-side)."""

    def __init__(self, vaddr: int, write: bool = False) -> None:
        super().__init__(
            f"protection fault at {vaddr:#x} ({'write' if write else 'read'})"
        )
        self.vaddr = vaddr
        self.write = write


class AcceleratorDisabledError(ReproError):
    """Work was submitted to an accelerator the OS has disabled."""


class BorderControlViolation(ReproError):
    """Raised when a blocked border crossing is surfaced synchronously.

    In hardware the violation is an exception delivered to the OS and the
    offending request is dropped; the functional model mirrors that, but
    test and attack harnesses can also observe the violation as a Python
    exception through :class:`repro.core.border_control.BorderControl`
    strict mode.
    """

    def __init__(self, paddr: int, write: bool, accel_id: str) -> None:
        kind = "write" if write else "read"
        super().__init__(
            f"border control blocked {kind} of physical address {paddr:#x} "
            f"from accelerator {accel_id!r}"
        )
        self.paddr = paddr
        self.write = write
        self.accel_id = accel_id
