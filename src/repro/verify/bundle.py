"""Replayable counterexample bundles for the lockstep verifier.

A divergence found by the Hypothesis machine or the small-model checker
is only useful if it can be re-run: bundles reuse the sweep subsystem's
poison-cell format (``poison-*.json``, ``repro-poison-cell-v1`` schema)
with ``kind: "verify"``, so the existing ``replay-cell`` CLI replays them
alongside sweep and chaos cells. A bundle records the exact op trace and
the harness geometry; :func:`replay_counterexample` rebuilds the system
from scratch and re-applies the trace op by op.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional

from repro.supervisor import write_poison_bundle
from repro.verify.harness import (
    HarnessConfig,
    LockstepHarness,
    OpRejected,
)

__all__ = ["make_cell", "write_verify_bundle", "replay_counterexample"]


def make_cell(
    ops: List[Dict[str, object]],
    source: str,
    config: Optional[HarnessConfig] = None,
) -> Dict[str, object]:
    """Package a failing trace as a self-contained, replayable cell."""
    return {
        "ops": list(ops),
        "source": source,  # "machine" | "smallmodel"
        "harness": (config or HarnessConfig()).to_dict(),
    }


def write_verify_bundle(
    bundle_dir: Path,
    cell: Dict[str, object],
    error: str,
) -> Path:
    """Write a verify counterexample as a poison-cell bundle; returns
    the bundle path."""

    def describe(task: Dict[str, object]) -> Dict[str, object]:
        return {"kind": "verify", "cell": task}

    return write_poison_bundle(
        bundle_dir,
        cell,
        error,
        attempts=1,
        describe_task=describe,
        label="verify",
    )


def replay_counterexample(cell: Dict[str, object]) -> Dict[str, object]:
    """Re-run a bundled trace against a fresh lockstep system.

    Returns ``{"reproduced": bool, "steps": int, "step": int|None,
    "error": str|None}`` — ``reproduced`` is True when the trace again
    ends in a lockstep violation (i.e. the bug is still there).
    """
    config = HarnessConfig.from_dict(dict(cell.get("harness", {})))
    harness = LockstepHarness(config)
    ops = list(cell.get("ops", []))
    for step, op in enumerate(ops):
        try:
            harness.apply(op)
            harness.check_invariants()
        except OpRejected as exc:
            return {
                "reproduced": False,
                "steps": len(ops),
                "step": step,
                "error": f"op rejected on replay: {exc}",
            }
        except AssertionError as exc:
            return {
                "reproduced": True,
                "steps": len(ops),
                "step": step,
                "error": str(exc),
            }
    return {"reproduced": False, "steps": len(ops), "step": None, "error": None}
