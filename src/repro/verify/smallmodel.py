"""Exhaustive small-model checking of the lockstep system.

The small-model hypothesis behind this module: if the Border Control
stack diverges from the abstract reference monitor at all, it diverges on
a *tiny* instance — two devices, a two-page mapping, a secret frame, and
short op sequences. So instead of sampling (Hypothesis), enumerate: run
**every** interleaving over a small op alphabet up to a bounded depth,
a fresh system per sequence, checking the full lockstep invariants after
every step.

With the default alphabet (~17 ops) and depth 3 that is ~5000 sequences
of real-stack execution — a few seconds — and it is *complete* over that
universe: a pass is a proof, not a sample. The alphabet covers the events
the bugs live between: legitimate translations, current and epoch-stale
accesses, rogue secret probes, context-switch downgrades, and
epoch-fenced resets.

No Hypothesis dependency: this module runs anywhere the package runs,
including minimal CI images.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.verify.harness import (
    HarnessConfig,
    LockstepHarness,
    OpRejected,
)

__all__ = [
    "Counterexample",
    "small_model_config",
    "small_model_alphabet",
    "check_small_model",
]


@dataclass
class Counterexample:
    """A minimal op sequence on which the two models diverged."""

    ops: List[Dict[str, object]] = field(default_factory=list)
    step: int = 0
    error: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {"ops": self.ops, "step": self.step, "error": self.error}


def small_model_config() -> HarnessConfig:
    """The small universe: 64 frames, 2 devices, a 2×2 BCC (so eviction
    happens), and a storm threshold of 3 (reachable at depth ≥ 3)."""
    return HarnessConfig(
        phys_bytes=64 * 4096,
        devices=2,
        bcc_entries=2,
        bcc_pages_per_entry=2,
        storm_threshold=3,
    )


def setup_prefix() -> List[Dict[str, object]]:
    """Deterministic prologue run before every sequence: one writable
    two-page mapping, so translations and granted accesses exist at
    depth 1 instead of depth 3."""
    return [{"op": "mmap", "pages": 2, "writable": True}]


def small_model_alphabet(harness: LockstepHarness) -> List[Dict[str, object]]:
    """The op universe enumerated at each depth.

    Per device: translate each of the two mapped pages, write-access each
    page at the current epoch and one epoch stale, probe the secret
    frame, and an epoch-fenced reset. Globally: a context-switch
    downgrade. Reads and writes behave identically with RW grants, so
    only writes are enumerated — halving the fan-out without losing
    coverage of either invariant.
    """
    ops: List[Dict[str, object]] = [{"op": "context-switch"}]
    for dev in range(len(harness.dev_ids)):
        for page in (0, 1):
            ops.append({"op": "translate", "dev": dev, "area": 0, "page": page})
        for page in (0, 1):
            for stale in (0, 1):
                ops.append(
                    {
                        "op": "access",
                        "dev": dev,
                        "ppn": _mapped_ppn(harness, page),
                        "write": True,
                        "stale": stale,
                    }
                )
        ops.append(
            {
                "op": "access",
                "dev": dev,
                "ppn": harness.secret_ppn,
                "write": False,
                "stale": 0,
            }
        )
        ops.append({"op": "reset", "dev": dev})
    return ops


def _mapped_ppn(harness: LockstepHarness, page: int) -> int:
    start_vpn = harness.areas[0]
    translation = harness.victim.page_table.translate_vpn(start_vpn + page)
    assert translation is not None
    return translation.ppn + (start_vpn + page - translation.vpn)


def check_small_model(
    depth: int = 3,
    config: Optional[HarnessConfig] = None,
    progress=None,
) -> Optional[Counterexample]:
    """Enumerate every op sequence up to ``depth``; return the first
    divergence found (as a replayable counterexample), or ``None``.

    Sequences are enumerated shortest-first, so the counterexample
    returned is minimal-in-length by construction. ``progress`` (if
    given) is called with the number of sequences checked so far every
    1000 sequences.
    """
    cfg = config or small_model_config()
    prefix = setup_prefix()
    # The alphabet embeds concrete PPNs, which are deterministic for a
    # given config: build it once from a scratch harness.
    probe = LockstepHarness(cfg)
    for op in prefix:
        probe.apply(op)
    alphabet = small_model_alphabet(probe)

    checked = 0
    for length in range(1, depth + 1):
        for sequence in itertools.product(alphabet, repeat=length):
            checked += 1
            if progress is not None and checked % 1000 == 0:
                progress(checked)
            harness = LockstepHarness(cfg)
            try:
                for op in prefix:
                    harness.apply(op)
                    harness.check_invariants()
            except AssertionError as exc:
                # A broken model can already diverge in the prologue.
                return Counterexample(
                    ops=list(harness.trace), step=len(harness.trace), error=str(exc)
                )
            try:
                for step, op in enumerate(sequence):
                    harness.apply(op)
                    harness.check_invariants()
            except OpRejected:
                continue  # gate refused the op: prune this sequence
            except AssertionError as exc:
                return Counterexample(
                    ops=list(harness.trace),
                    step=len(harness.trace),
                    error=str(exc),
                )
    return None
