"""The abstract reference monitor.

This is the *specification* half of the lockstep checker: a deliberately
tiny model of what Border Control is supposed to enforce, written with no
reference to tables, caches, engines, or timing. Per accelerator it keeps

* a map ``ppn -> Perm`` of permissions the device has legitimately earned
  through ATS translations and not yet lost to a downgrade;
* the current attach **epoch** (advanced on every attach and every
  epoch-fenced reset — traffic stamped older is a stale replay);
* a **lifecycle** state: ``detached``, ``attached``, ``quarantined``, or
  ``killed`` (the violation-storm circuit breaker's permanent ban).

The monitor answers one question — :meth:`check`: *may this device touch
this physical page right now?* — and mirrors the kernel's QUARANTINE
violation policy (PR 4) as pure state transitions. The real
``Kernel``/``BorderControl``/``BCC`` stack is then driven in lockstep by
:mod:`repro.verify.harness`; any divergence between the two is, by
construction, either an unauthorized access the hardware allowed
(confidentiality/integrity escape) or a legitimate access it lost
(availability bug).

``epoch_fence=False`` deliberately breaks the monitor (stale replays are
admitted): the small-model checker's self-test seeds this broken
specification and must find the known counterexample, proving the
checker has teeth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.permissions import Perm

__all__ = ["Lifecycle", "DeviceState", "ReferenceMonitor"]


class Lifecycle(enum.Enum):
    """Where an accelerator is in the attach/sanction lifecycle."""

    DETACHED = "detached"
    ATTACHED = "attached"
    QUARANTINED = "quarantined"
    KILLED = "killed"  # permanent (violation-storm) quarantine


#: ``check`` verdict reasons. ``stale-epoch`` is *not* a violation (the
#: border drops the request before any permission lookup); the other two
#: denials are violations and trigger the sanction mirror.
REASON_GRANTED = "granted"
REASON_STALE = "stale-epoch"
REASON_OOB = "out-of-bounds"
REASON_NO_PERM = "no-permission"


@dataclass
class DeviceState:
    """The monitor's entire knowledge of one accelerator."""

    lifecycle: Lifecycle = Lifecycle.DETACHED
    epoch: int = 0
    strikes: int = 0
    perms: Dict[int, Perm] = field(default_factory=dict)


class ReferenceMonitor:
    """Abstract pages × permissions × epochs × lifecycle security model."""

    def __init__(
        self,
        covered_pages: int,
        storm_threshold: int = 0,
        epoch_fence: bool = True,
    ) -> None:
        self.covered_pages = covered_pages
        self.storm_threshold = storm_threshold
        # False models a broken specification (stale replays admitted);
        # used only to prove the checkers can detect divergence.
        self.epoch_fence = epoch_fence
        self.devices: Dict[str, DeviceState] = {}
        self.victim_alive = True
        # Transition tallies, cross-checked against the kernel's
        # on_lifecycle event stream by the harness.
        self.quarantines = 0
        self.storm_kills = 0
        self.readmissions = 0
        self.resets = 0

    def device(self, dev: str) -> DeviceState:
        return self.devices.setdefault(dev, DeviceState())

    # -- lifecycle transitions (mirroring kernel operations) ---------------

    def attach(self, dev: str) -> None:
        """Fig. 3a: process starts on the device; every attach opens a new
        epoch, and the device owns no permissions until it earns them."""
        st = self.device(dev)
        st.lifecycle = Lifecycle.ATTACHED
        st.epoch += 1
        st.perms.clear()

    def detach(self, dev: str) -> None:
        """Fig. 3e: process completes; the table is zeroed and freed."""
        st = self.device(dev)
        st.lifecycle = Lifecycle.DETACHED
        st.perms.clear()

    def grant(self, dev: str, ppn: int, perms: Perm, page_count: int = 1) -> None:
        """Fig. 3b: a completed ATS translation ORs permissions in.

        Grants are monotonic unions until the next downgrade; pages
        outside physical memory grant nothing (the table cannot cover
        them), mirroring ``BorderControl.insert_translation``.
        """
        st = self.device(dev)
        for offset in range(page_count):
            page = ppn + offset
            if 0 <= page < self.covered_pages and perms != Perm.NONE:
                st.perms[page] = st.perms.get(page, Perm.NONE) | perms

    def downgrade_all(self, dev: str) -> None:
        """Fig. 3d for one device: the whole table is zeroed."""
        self.device(dev).perms.clear()

    def downgrade_page(self, dev: str, ppn: int) -> None:
        """Selective §3.2.4 revocation of a single page."""
        self.device(dev).perms.pop(ppn, None)

    def downgrade_attached(self) -> None:
        """An OS downgrade (munmap / mprotect-loss / context switch) fans
        out to every device currently running the address space — i.e.
        every non-detached device in this single-victim model."""
        for st in self.devices.values():
            if st.lifecycle is not Lifecycle.DETACHED:
                st.perms.clear()

    def reset(self, dev: str) -> None:
        """Epoch-fenced reset: the epoch advances *first* (staling every
        in-flight replay), the sandbox is downgraded, and any quarantine
        — even a permanent one — is lifted. Strikes survive: a device
        that violates again after a reset escalates."""
        st = self.device(dev)
        st.epoch += 1
        st.perms.clear()
        st.lifecycle = Lifecycle.ATTACHED
        self.resets += 1

    def readmit(self, dev: str) -> None:
        """Quarantine release (the ``enable()`` path): the device may
        accept work again but owns nothing — its permissions were revoked
        at quarantine time and must be re-earned through the ATS."""
        st = self.device(dev)
        st.lifecycle = Lifecycle.ATTACHED
        self.readmissions += 1

    def record_violation(self, dev: str) -> None:
        """Mirror of the kernel's QUARANTINE violation policy (PR 4).

        A violation from an already-quarantined device stacks no new
        sanction; otherwise the device takes a strike, loses all
        permissions, and is quarantined — permanently (and the victim
        process killed) once strikes reach the storm threshold.
        """
        st = self.device(dev)
        if st.lifecycle in (Lifecycle.QUARANTINED, Lifecycle.KILLED):
            return
        st.strikes += 1
        st.perms.clear()
        self.quarantines += 1
        if self.storm_threshold > 0 and st.strikes >= self.storm_threshold:
            st.lifecycle = Lifecycle.KILLED
            # One kill per victim process, not per banned device: a second
            # device storming after the victim died bans without killing.
            if self.victim_alive:
                self.storm_kills += 1
                self.victim_alive = False
        else:
            st.lifecycle = Lifecycle.QUARANTINED

    # -- the one question that matters ------------------------------------

    def check(
        self, dev: str, ppn: int, write: bool, epoch: Optional[int] = None
    ) -> Tuple[bool, str]:
        """May ``dev`` access physical page ``ppn`` right now?

        Returns ``(allowed, reason)``. The paper's two invariants fall
        out directly: a read is allowed only under an unrevoked R grant
        (confidentiality), a write only under an unrevoked W grant
        (integrity), and stale-epoch traffic is dropped before either.
        """
        st = self.device(dev)
        if (
            epoch is not None
            and self.epoch_fence
            and epoch < st.epoch
        ):
            return False, REASON_STALE
        if not (0 <= ppn < self.covered_pages):
            return False, REASON_OOB
        if st.perms.get(ppn, Perm.NONE).allows(write):
            return True, REASON_GRANTED
        return False, REASON_NO_PERM

    # -- derived predicates (compared against real kernel state) -----------

    def is_quarantined(self, dev: str) -> bool:
        return self.device(dev).lifecycle in (
            Lifecycle.QUARANTINED,
            Lifecycle.KILLED,
        )

    def is_enabled(self, dev: str) -> bool:
        """disable() fires at quarantine, enable() at readmit/reset; a
        detached device was never disabled."""
        return not self.is_quarantined(dev)

    def granted_pages(self, dev: str):
        return sorted(self.device(dev).perms)

    def __repr__(self) -> str:  # pragma: no cover
        parts = ", ".join(
            f"{dev}:{st.lifecycle.value}@e{st.epoch}({len(st.perms)}p)"
            for dev, st in sorted(self.devices.items())
        )
        return f"ReferenceMonitor({parts}, victim_alive={self.victim_alive})"
