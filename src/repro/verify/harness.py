"""Lockstep driver: the real Border Control stack vs the reference monitor.

A :class:`LockstepHarness` owns one complete real system — ``Kernel`` with
the QUARANTINE violation policy, ``SandboxManager``/``BorderControl``/
``BCC`` per device, real ``AcceleratorBase`` devices, real bytes in
``PhysicalMemory`` — and one :class:`~repro.verify.monitor.ReferenceMonitor`.
Every operation (:meth:`apply`) is executed against both and the outcomes
compared; :meth:`check_invariants` then cross-checks the full visible
state. Any disagreement raises :class:`LockstepViolation`.

Operations are plain dicts with all nondeterminism already resolved
(device index, page number, staleness), so a recorded trace replays
byte-for-byte: the Hypothesis machine, the exhaustive small-model
checker, and the ``verify`` CLI's counterexample bundles all speak this
one op vocabulary.

The secret oracle: a second process owns one RW page holding a known
pattern that no device is ever granted. Confidentiality and integrity
escapes are therefore *directly observable* — the pattern read back
changed, or a device read of that frame was allowed — rather than
inferred from bookkeeping.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from repro.accel.base import AcceleratorBase
from repro.core.bcc import BCCConfig
from repro.core.permissions import Perm
from repro.errors import MemoryError_
from repro.mem.address import PAGE_SHIFT
from repro.mem.phys_memory import PhysicalMemory
from repro.osmodel.kernel import Kernel, ViolationPolicy
from repro.verify.monitor import (
    Lifecycle,
    ReferenceMonitor,
    REASON_STALE,
)

__all__ = [
    "HarnessConfig",
    "LockstepHarness",
    "LockstepViolation",
    "OpRejected",
    "OP_NAMES",
]


class LockstepViolation(AssertionError):
    """The real stack and the reference monitor disagreed.

    Subclasses ``AssertionError`` so Hypothesis treats it as a genuine
    counterexample and shrinks the trace that produced it.
    """


class OpRejected(Exception):
    """An operation's gate failed (e.g. translate on a detached device).

    Raised *before* either side is touched, so a rejected op leaves both
    models unchanged. The small-model checker prunes sequences at the
    first rejection; the Hypothesis machine's preconditions make it
    unreachable there.
    """


#: Every operation :meth:`LockstepHarness.apply` understands.
OP_NAMES = (
    "mmap",
    "munmap",
    "mprotect",
    "translate",
    "retry",
    "access",
    "context-switch",
    "shootdown",
    "reset",
    "readmit",
    "detach",
    "attach",
    "cpu-fallback",
)

#: The secret-holder's page content. Never written by any harness op, so
#: any change to it is an integrity escape.
SECRET = bytes(range(0xE0, 0xF0))

#: What an allowed device write deposits (so escapes would be visible).
MARKER = b"\xa5BC!"


@dataclass(frozen=True)
class HarnessConfig:
    """Geometry of one lockstep system — small enough to explore, big
    enough that the BCC actually evicts and the storm breaker fires."""

    phys_bytes: int = 4 * 2**20  # 1024 frames
    devices: int = 2
    bcc_entries: int = 4
    bcc_pages_per_entry: int = 4
    storm_threshold: int = 3
    #: ``False`` deliberately breaks the *monitor* (stale replays pass the
    #: abstract model) so the checkers can prove they detect divergence.
    monitor_epoch_fence: bool = True

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "HarnessConfig":
        known = {f: data[f] for f in cls.__dataclass_fields__ if f in data}
        return cls(**known)  # type: ignore[arg-type]


class LockstepHarness:
    """One real system and one abstract monitor, driven in lockstep."""

    def __init__(self, config: Optional[HarnessConfig] = None) -> None:
        cfg = config or HarnessConfig()
        self.config = cfg
        self.phys = PhysicalMemory(cfg.phys_bytes)
        self.kernel = Kernel(
            self.phys,
            bcc_config=BCCConfig(cfg.bcc_entries, cfg.bcc_pages_per_entry),
            violation_policy=ViolationPolicy.QUARANTINE,
        )
        # Manual-release quarantine + storm circuit breaker (PR 4).
        self.kernel.quarantine_backoff_ticks = 0
        self.kernel.violation_storm_threshold = cfg.storm_threshold

        self.victim = self.kernel.create_process("victim")
        # The secret oracle: one page no device is ever granted.
        self.holder = self.kernel.create_process("secret-holder")
        secret_vaddr = self.kernel.mmap(self.holder, 1, Perm.RW)
        self.kernel.proc_write(self.holder, secret_vaddr, SECRET)
        translation = self.holder.page_table.translate(secret_vaddr)
        assert translation is not None
        self.secret_ppn = translation.ppn

        self.monitor = ReferenceMonitor(
            covered_pages=self.phys.num_frames,
            storm_threshold=cfg.storm_threshold,
            epoch_fence=cfg.monitor_epoch_fence,
        )

        # Lifecycle event tallies from the kernel's observation hook,
        # cross-checked against the monitor's transition counters.
        self.events: Dict[str, int] = {
            "quarantine": 0,
            "storm-kill": 0,
            "readmit": 0,
            "reset": 0,
        }
        self.kernel.on_lifecycle(self._record_lifecycle)

        # Decision stream from BorderControl.on_decision; cleared before
        # each access op and checked against the op's outcome.
        self._observed: List[Tuple[int, bool, object]] = []

        self.dev_ids: List[str] = [f"dev{i}" for i in range(cfg.devices)]
        self.accels: Dict[str, AcceleratorBase] = {}
        for dev_id in self.dev_ids:
            accel = AcceleratorBase(dev_id)
            self.accels[dev_id] = accel
            sandbox = self.kernel.attach_accelerator(self.victim, accel)
            assert sandbox is not None
            sandbox.on_decision(self._record_decision)
            self.monitor.attach(dev_id)

        #: mmap'd victim areas, as start VPNs, in creation order. Ops
        #: reference areas by (pre-resolved) index into this list, which
        #: evolves deterministically with the trace — so traces replay.
        self.areas: List[int] = []
        self.trace: List[Dict[str, object]] = []

    # -- observation plumbing ---------------------------------------------

    def _record_lifecycle(self, event: str, accel_id: str, info: Dict[str, object]) -> None:
        self.events[event] = self.events.get(event, 0) + 1

    def _record_decision(self, paddr: int, write: bool, decision: object) -> None:
        self._observed.append((paddr, write, decision))

    # -- helpers ------------------------------------------------------------

    def _fail(self, message: str, op: Optional[Dict[str, object]] = None) -> None:
        detail = f" during {op!r}" if op else ""
        raise LockstepViolation(
            f"{message}{detail}\n  monitor: {self.monitor!r}\n  trace: {self.trace!r}"
        )

    def _dev(self, op: Dict[str, object]) -> str:
        return self.dev_ids[int(op["dev"]) % len(self.dev_ids)]

    def _lifecycle(self, dev_id: str) -> Lifecycle:
        return self.monitor.device(dev_id).lifecycle

    def _require(self, condition: bool, why: str) -> None:
        if not condition:
            raise OpRejected(why)

    def _area(self, op: Dict[str, object]) -> int:
        self._require(bool(self.areas), "no mapped areas")
        return self.areas[int(op["area"]) % len(self.areas)]

    def _total_checks(self) -> int:
        total = 0
        for dev_id in self.dev_ids:
            sandbox = self.kernel.sandboxes.sandbox_for(dev_id)
            if sandbox is not None:
                total += sandbox.checks
        return total

    # -- the op interpreter --------------------------------------------------

    def apply(self, op: Dict[str, object]) -> None:
        """Execute one op against both models; raises LockstepViolation on
        divergence, OpRejected when the op's gate fails."""
        name = str(op["op"])
        handler = getattr(self, "_op_" + name.replace("-", "_"), None)
        if handler is None:
            raise OpRejected(f"unknown op {name!r}")
        self.trace.append(dict(op))
        try:
            handler(op)
        except OpRejected:
            self.trace.pop()  # rejected ops leave no mark on either model
            raise

    # OS memory-management ops (the victim's CPU side) ----------------------

    def _op_mmap(self, op: Dict[str, object]) -> None:
        self._require(self.victim.alive, "victim is dead")
        perms = Perm.RW if op.get("writable", True) else Perm.R
        try:
            vaddr = self.kernel.mmap(self.victim, int(op["pages"]), perms)
        except MemoryError_ as exc:
            raise OpRejected(str(exc))
        self.areas.append(vaddr >> PAGE_SHIFT)
        # Mapping grants devices nothing until a translation completes.

    def _op_munmap(self, op: Dict[str, object]) -> None:
        self._require(self.victim.alive, "victim is dead")
        start_vpn = self._area(op)
        self.areas.remove(start_vpn)
        self.kernel.munmap(self.victim, start_vpn << PAGE_SHIFT)
        # §3.2.4: unmapping revokes from every accelerator running the
        # address space (full-table downgrade in the default config).
        self.monitor.downgrade_attached()

    def _op_mprotect(self, op: Dict[str, object]) -> None:
        self._require(self.victim.alive, "victim is dead")
        start_vpn = self._area(op)
        area = self.victim.areas[start_vpn]
        old = area.perms
        new = Perm.RW if op.get("writable", True) else Perm.R
        self.kernel.mprotect(
            self.victim, start_vpn << PAGE_SHIFT, area.num_pages, new
        )
        if old.writable and not new.writable:
            # Losing W is a downgrade and fans out; gaining perms is not.
            self.monitor.downgrade_attached()

    def _op_context_switch(self, op: Dict[str, object]) -> None:
        self._require(self.victim.alive, "victim is dead")
        self.kernel.downgrade_process(self.victim)
        self.monitor.downgrade_attached()

    def _op_cpu_fallback(self, op: Dict[str, object]) -> None:
        """PR 4's degraded mode: the work runs on the CPU. Data must move
        and the border must see *zero* traffic."""
        self._require(self.victim.alive, "victim is dead")
        start_vpn = self._area(op)
        vaddr = start_vpn << PAGE_SHIFT
        before = self._total_checks()
        self.kernel.proc_write(self.victim, vaddr, MARKER)
        data = self.kernel.proc_read(self.victim, vaddr, len(MARKER))
        if data != MARKER:
            self._fail("CPU fallback round-trip corrupted data", op)
        if self._total_checks() != before:
            self._fail("CPU fallback traffic crossed the border", op)

    # device lifecycle ops --------------------------------------------------

    def _op_attach(self, op: Dict[str, object]) -> None:
        dev_id = self._dev(op)
        self._require(self.victim.alive, "victim is dead")
        self._require(
            self._lifecycle(dev_id) is Lifecycle.DETACHED, "device not detached"
        )
        self.kernel.attach_accelerator(self.victim, self.accels[dev_id])
        self.monitor.attach(dev_id)

    def _op_detach(self, op: Dict[str, object]) -> None:
        dev_id = self._dev(op)
        self._require(self.victim.alive, "victim is dead")
        self._require(
            self._lifecycle(dev_id) is Lifecycle.ATTACHED, "device not attached"
        )
        self.kernel.detach_accelerator(self.victim, self.accels[dev_id])
        self.monitor.detach(dev_id)

    def _op_reset(self, op: Dict[str, object]) -> None:
        """Epoch-fenced reset (PR 4): lifts any quarantine — even the
        permanent storm ban — and stales all in-flight replays."""
        dev_id = self._dev(op)
        self._require(
            self._lifecycle(dev_id) is not Lifecycle.DETACHED, "device detached"
        )
        self.kernel.reset_accelerator(dev_id)
        self.monitor.reset(dev_id)

    def _op_readmit(self, op: Dict[str, object]) -> None:
        """Manual quarantine release. Gated to non-permanent quarantine:
        a storm-banned device only returns through a full reset."""
        dev_id = self._dev(op)
        self._require(
            self._lifecycle(dev_id) is Lifecycle.QUARANTINED,
            "device not in releasable quarantine",
        )
        self.kernel.release_quarantine(dev_id)
        self.monitor.readmit(dev_id)

    def _op_shootdown(self, op: Dict[str, object]) -> None:
        """TLB shootdown aimed at one device: permission-neutral."""
        dev_id = self._dev(op)
        self._require(
            self._lifecycle(dev_id) is not Lifecycle.DETACHED, "device detached"
        )
        self.accels[dev_id].shootdown(self.victim.asid, None)

    # translation ops (Fig. 3b) ---------------------------------------------

    def _translate_page(self, dev_id: str, vpn: int) -> None:
        translation = self.victim.page_table.translate_vpn(vpn)
        self._require(translation is not None, f"vpn {vpn:#x} not mapped")
        assert translation is not None
        ppn = translation.ppn + (vpn - translation.vpn)
        sandbox = self.kernel.sandboxes.sandbox_for(dev_id)
        assert sandbox is not None
        sandbox.insert_translation(ppn, translation.perms)
        self.monitor.grant(dev_id, ppn, translation.perms)

    def _op_translate(self, op: Dict[str, object]) -> None:
        dev_id = self._dev(op)
        self._require(self.victim.alive, "victim is dead")
        self._require(
            self._lifecycle(dev_id) is Lifecycle.ATTACHED, "device not attached"
        )
        start_vpn = self._area(op)
        area = self.victim.areas[start_vpn]
        self._translate_page(dev_id, start_vpn + int(op["page"]) % area.num_pages)

    def _op_retry(self, op: Dict[str, object]) -> None:
        """Kernel retry after recovery: the relaunched kernel re-touches
        its whole working set, re-earning permissions page by page."""
        dev_id = self._dev(op)
        self._require(self.victim.alive, "victim is dead")
        self._require(
            self._lifecycle(dev_id) is Lifecycle.ATTACHED, "device not attached"
        )
        start_vpn = self._area(op)
        area = self.victim.areas[start_vpn]
        for offset in range(area.num_pages):
            self._translate_page(dev_id, start_vpn + offset)

    # the border crossing itself (Fig. 3c) ----------------------------------

    def _op_access(self, op: Dict[str, object]) -> None:
        """One device-originated physical access, possibly rogue, possibly
        epoch-stale. This is where every security property is enforced and
        therefore where the lockstep comparison has the most teeth."""
        dev_id = self._dev(op)
        self._require(
            self._lifecycle(dev_id) is not Lifecycle.DETACHED, "device detached"
        )
        ppn = int(op["ppn"])
        write = bool(op["write"])
        stale = int(op.get("stale", 0))
        accel = self.accels[dev_id]
        sandbox = self.kernel.sandboxes.sandbox_for(dev_id)
        assert sandbox is not None and sandbox.active

        # A replay from before `stale` epoch advances. 0 = current traffic.
        epoch = max(0, accel.epoch - stale)
        mon_allowed, mon_reason = self.monitor.check(dev_id, ppn, write, epoch)

        self._observed.clear()
        admitted = sandbox.admit_epoch(epoch)
        if admitted:
            decision = sandbox.check(ppn << PAGE_SHIFT, write)
            real_allowed = decision.allowed
        else:
            real_allowed = False

        # (a) the real stack allowed the access iff the monitor allows it.
        if real_allowed != mon_allowed:
            self._fail(
                f"decision divergence on {dev_id} ppn={ppn:#x} "
                f"write={write} epoch={epoch}: real "
                f"{'allowed' if real_allowed else 'denied'}, monitor "
                f"{'allowed' if mon_allowed else 'denied'} ({mon_reason})",
                op,
            )

        # (c) stale-epoch traffic is always dropped before any check.
        if not admitted:
            if stale == 0:
                self._fail("current-epoch traffic rejected at the fence", op)
            if self._observed:
                self._fail("stale traffic reached the permission check", op)
        else:
            # The decision hook saw exactly this check.
            if len(self._observed) != 1:
                self._fail(
                    f"expected one observed decision, saw {len(self._observed)}",
                    op,
                )
            seen_paddr, seen_write, seen_decision = self._observed[0]
            if (
                seen_paddr != ppn << PAGE_SHIFT
                or seen_write is not write
                or seen_decision.allowed is not real_allowed  # type: ignore[attr-defined]
            ):
                self._fail("decision hook disagrees with check outcome", op)

        # (b) no confidentiality/integrity escape, ever: the secret frame
        # is never granted, so an allowed access to it is an escape even
        # if both models agreed (a shared-bug backstop).
        if real_allowed and ppn == self.secret_ppn:
            kind = "integrity" if write else "confidentiality"
            self._fail(f"{kind} escape: access to secret frame allowed", op)

        if real_allowed:
            # Commit real data so escapes are physically visible.
            paddr = ppn << PAGE_SHIFT
            if write:
                self.phys.write(paddr, MARKER)
            else:
                self.phys.read(paddr, len(MARKER))
        elif admitted:
            # A denied-but-admitted access is a violation: the kernel's
            # QUARANTINE policy already fired inside check(); mirror it.
            if mon_reason != REASON_STALE:
                self.monitor.record_violation(dev_id)

    # -- global state agreement ---------------------------------------------

    def check_invariants(self) -> None:
        """Cross-check all visible state: sandbox vs monitor per device,
        lifecycle tallies, and the secret oracle. Called after every step
        by the Hypothesis machine and the small-model checker."""
        for dev_id in self.dev_ids:
            st = self.monitor.device(dev_id)
            accel = self.accels[dev_id]
            sandbox = self.kernel.sandboxes.sandbox_for(dev_id)
            assert sandbox is not None
            if st.lifecycle is Lifecycle.DETACHED:
                if sandbox.active:
                    self._fail(f"{dev_id}: sandbox active while detached")
                if st.perms:
                    self._fail(f"{dev_id}: detached device holds grants")
            else:
                if not sandbox.active:
                    self._fail(f"{dev_id}: sandbox inactive while attached")
                if not (sandbox.epoch == accel.epoch == st.epoch):
                    self._fail(
                        f"{dev_id}: epoch skew sandbox={sandbox.epoch} "
                        f"device={accel.epoch} monitor={st.epoch}"
                    )
                assert sandbox.table is not None
                real_perms = dict(sandbox.table.populated())
                if real_perms != st.perms:
                    self._fail(
                        f"{dev_id}: Protection Table {real_perms!r} != "
                        f"monitor grants {st.perms!r}"
                    )
                if sandbox.bcc is not None:
                    # The BCC must never be *more* permissive than the
                    # table; with write-through + refetch it is equal.
                    for ppn, cached in sandbox.bcc.cached_permissions():
                        if cached != sandbox.table.get(ppn):
                            self._fail(
                                f"{dev_id}: BCC caches {cached!r} for "
                                f"ppn {ppn:#x}, table holds "
                                f"{sandbox.table.get(ppn)!r}"
                            )
                if self.secret_ppn in st.perms or sandbox.table.get(
                    self.secret_ppn
                ) != Perm.NONE:
                    self._fail(f"{dev_id}: granted the secret frame")
            if self.kernel.is_quarantined(dev_id) != self.monitor.is_quarantined(
                dev_id
            ):
                self._fail(
                    f"{dev_id}: quarantine disagreement "
                    f"(kernel={self.kernel.is_quarantined(dev_id)})"
                )
            if accel.enabled != self.monitor.is_enabled(dev_id):
                self._fail(
                    f"{dev_id}: enable disagreement (device={accel.enabled})"
                )

        if self.victim.alive != self.monitor.victim_alive:
            self._fail(
                f"victim liveness disagreement (real={self.victim.alive})"
            )

        # The secret oracle: the pattern must be byte-identical, forever.
        if self.phys.read(self.secret_ppn << PAGE_SHIFT, len(SECRET)) != SECRET:
            self._fail("integrity escape: secret bytes changed")

        # (d) lifecycle event stream agrees with the monitor's transitions.
        tallies = {
            "quarantine": self.monitor.quarantines,
            "storm-kill": self.monitor.storm_kills,
            "readmit": self.monitor.readmissions,
            "reset": self.monitor.resets,
        }
        for event, expected in tallies.items():
            if self.events.get(event, 0) != expected:
                self._fail(
                    f"lifecycle tally skew for {event!r}: kernel emitted "
                    f"{self.events.get(event, 0)}, monitor counted {expected}"
                )
