"""Lockstep verification of the Border Control stack (the tentpole of
the robustness PR).

An abstract :class:`~repro.verify.monitor.ReferenceMonitor` — pages ×
permissions × epochs × lifecycle, nothing else — runs in lockstep with
the real ``Kernel``/``BorderControl``/``BCC`` stack under a
:class:`~repro.verify.harness.LockstepHarness`. Two checkers drive it:

* :class:`~repro.verify.machine.LockstepMachine` — a Hypothesis stateful
  model sampling deep random interleavings (needs the ``test`` extra);
* :func:`~repro.verify.smallmodel.check_small_model` — an exhaustive,
  dependency-free sweep of *every* short sequence over a small universe.

Counterexamples ship as replayable poison-cell bundles
(:mod:`repro.verify.bundle`) and replay via ``border-control
replay-cell``. Hypothesis-dependent names (``LockstepMachine``,
``run_verify_campaign``, the profiles) import lazily so the rest of the
package works without the ``test`` extra installed.
"""

from repro.verify.bundle import (
    make_cell,
    replay_counterexample,
    write_verify_bundle,
)
from repro.verify.harness import (
    HarnessConfig,
    LockstepHarness,
    LockstepViolation,
    OpRejected,
)
from repro.verify.monitor import DeviceState, Lifecycle, ReferenceMonitor
from repro.verify.smallmodel import (
    Counterexample,
    check_small_model,
    small_model_config,
)

__all__ = [
    "HarnessConfig",
    "LockstepHarness",
    "LockstepViolation",
    "OpRejected",
    "ReferenceMonitor",
    "DeviceState",
    "Lifecycle",
    "Counterexample",
    "check_small_model",
    "small_model_config",
    "make_cell",
    "replay_counterexample",
    "write_verify_bundle",
    "LockstepMachine",
    "run_verify_campaign",
]


def __getattr__(name: str):
    # Lazy: these pull in hypothesis (LockstepMachine) or are only needed
    # by the CLI (campaign); importing repro.verify must stay cheap and
    # dependency-free.
    if name == "LockstepMachine":
        from repro.verify.machine import LockstepMachine

        return LockstepMachine
    if name == "run_verify_campaign":
        from repro.verify.campaign import run_verify_campaign

        return run_verify_campaign
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
