"""Hypothesis stateful model: random full-lifecycle interleavings.

:class:`LockstepMachine` drives one :class:`~repro.verify.harness.
LockstepHarness` with randomly interleaved OS, device, and rogue-device
operations — mmap/munmap/mprotect, attach/detach, legitimate ATS
translations, random physical probes (in- and out-of-bounds, current and
epoch-stale), context-switch downgrades, TLB shootdowns, epoch-fenced
resets, kernel-retry relaunches, CPU fallbacks, quarantine readmissions —
and checks the lockstep invariants after every step.

Every rule resolves its Hypothesis draws to a *concrete* op dict before
applying it, and appends it to the module-global :data:`LAST_TRACE`.
After a failing run, Hypothesis replays the shrunk counterexample once
more as its final reproduction pass, so ``LAST_TRACE`` ends up holding
exactly the minimal trace — which the ``verify`` CLI wraps into a
replayable ``poison-*.json`` bundle.

This module imports :mod:`hypothesis` and must only be imported where
the test extra is installed; everything else in :mod:`repro.verify` is
dependency-free.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.verify.harness import HarnessConfig, LockstepHarness
from repro.verify.monitor import Lifecycle

__all__ = ["LAST_TRACE", "LockstepMachine"]

#: The op trace of the most recent machine execution. Because Hypothesis
#: ends a failing test with one final replay of the shrunk example, this
#: holds the *minimal* counterexample after a failure — ready to bundle.
LAST_TRACE: List[Dict[str, object]] = []

#: Rogue probes reach past the end of physical memory by this many pages,
#: so out-of-bounds (bounds-register) violations are generated too.
_OOB_MARGIN = 64


class LockstepMachine(RuleBasedStateMachine):
    """Random interleavings over the lockstep harness."""

    #: Overridden by the teeth tests to run a deliberately broken config.
    config: Optional[HarnessConfig] = None

    @initialize()
    def setup(self) -> None:
        LAST_TRACE.clear()
        self.h = LockstepHarness(self.config or HarnessConfig())
        self.h.trace = LAST_TRACE  # shared so the final replay is captured

    # -- helpers -------------------------------------------------------------

    def _apply(self, op: Dict[str, object]) -> None:
        self.h.apply(op)

    def _devs_in(self, *states: Lifecycle) -> List[int]:
        return [
            i
            for i, dev_id in enumerate(self.h.dev_ids)
            if self.h.monitor.device(dev_id).lifecycle in states
        ]

    def _alive(self) -> bool:
        return hasattr(self, "h") and self.h.victim.alive

    def _has_areas(self) -> bool:
        return hasattr(self, "h") and bool(self.h.areas)

    # -- OS memory management -----------------------------------------------

    @precondition(lambda self: self._alive())
    @rule(pages=st.integers(1, 4), writable=st.booleans())
    def mmap(self, pages: int, writable: bool) -> None:
        self._apply({"op": "mmap", "pages": pages, "writable": writable})

    @precondition(lambda self: self._alive() and self._has_areas())
    @rule(area=st.integers(0, 63))
    def munmap(self, area: int) -> None:
        self._apply({"op": "munmap", "area": area % len(self.h.areas)})

    @precondition(lambda self: self._alive() and self._has_areas())
    @rule(area=st.integers(0, 63), writable=st.booleans())
    def mprotect(self, area: int, writable: bool) -> None:
        self._apply(
            {
                "op": "mprotect",
                "area": area % len(self.h.areas),
                "writable": writable,
            }
        )

    @precondition(lambda self: self._alive())
    @rule()
    def context_switch(self) -> None:
        self._apply({"op": "context-switch"})

    @precondition(lambda self: self._alive() and self._has_areas())
    @rule(area=st.integers(0, 63))
    def cpu_fallback(self, area: int) -> None:
        self._apply({"op": "cpu-fallback", "area": area % len(self.h.areas)})

    # -- translations (the legitimate path) -----------------------------------

    @precondition(
        lambda self: self._alive()
        and self._has_areas()
        and self._devs_in(Lifecycle.ATTACHED)
    )
    @rule(dev=st.integers(0, 63), area=st.integers(0, 63), page=st.integers(0, 63))
    def translate(self, dev: int, area: int, page: int) -> None:
        devs = self._devs_in(Lifecycle.ATTACHED)
        self._apply(
            {
                "op": "translate",
                "dev": devs[dev % len(devs)],
                "area": area % len(self.h.areas),
                "page": page,
            }
        )

    @precondition(
        lambda self: self._alive()
        and self._has_areas()
        and self._devs_in(Lifecycle.ATTACHED)
    )
    @rule(dev=st.integers(0, 63), area=st.integers(0, 63))
    def retry(self, dev: int, area: int) -> None:
        devs = self._devs_in(Lifecycle.ATTACHED)
        self._apply(
            {
                "op": "retry",
                "dev": devs[dev % len(devs)],
                "area": area % len(self.h.areas),
            }
        )

    # -- device accesses: legitimate, rogue, and stale -------------------------

    @precondition(
        lambda self: hasattr(self, "h")
        and self._devs_in(
            Lifecycle.ATTACHED, Lifecycle.QUARANTINED, Lifecycle.KILLED
        )
    )
    @rule(
        dev=st.integers(0, 63),
        ppn=st.integers(0, 63),
        write=st.booleans(),
        stale=st.integers(0, 2),
    )
    def probe_random(self, dev: int, ppn: int, write: bool, stale: int) -> None:
        """A device-chosen physical address: anywhere in (or past) memory."""
        devs = self._devs_in(
            Lifecycle.ATTACHED, Lifecycle.QUARANTINED, Lifecycle.KILLED
        )
        span = self.h.phys.num_frames + _OOB_MARGIN
        self._apply(
            {
                "op": "access",
                "dev": devs[dev % len(devs)],
                "ppn": ppn * span // 64,  # spread over the whole span
                "write": write,
                "stale": stale,
            }
        )

    @precondition(
        lambda self: hasattr(self, "h")
        and any(
            self.h.monitor.device(d).perms
            and self.h.monitor.device(d).lifecycle is Lifecycle.ATTACHED
            for d in self.h.dev_ids
        )
    )
    @rule(dev=st.integers(0, 63), page=st.integers(0, 63), write=st.booleans(),
          stale=st.integers(0, 2))
    def probe_granted(self, dev: int, page: int, write: bool, stale: int) -> None:
        """An access to a page the device has actually been granted — the
        common case that must keep working (availability)."""
        devs = [
            i
            for i, d in enumerate(self.h.dev_ids)
            if self.h.monitor.device(d).perms
            and self.h.monitor.device(d).lifecycle is Lifecycle.ATTACHED
        ]
        dev_idx = devs[dev % len(devs)]
        granted = self.h.monitor.granted_pages(self.h.dev_ids[dev_idx])
        self._apply(
            {
                "op": "access",
                "dev": dev_idx,
                "ppn": granted[page % len(granted)],
                "write": write,
                "stale": stale,
            }
        )

    @precondition(
        lambda self: hasattr(self, "h")
        and self._devs_in(
            Lifecycle.ATTACHED, Lifecycle.QUARANTINED, Lifecycle.KILLED
        )
    )
    @rule(dev=st.integers(0, 63), write=st.booleans(), stale=st.integers(0, 2))
    def probe_secret(self, dev: int, write: bool, stale: int) -> None:
        """A rogue probe aimed straight at the secret frame."""
        devs = self._devs_in(
            Lifecycle.ATTACHED, Lifecycle.QUARANTINED, Lifecycle.KILLED
        )
        self._apply(
            {
                "op": "access",
                "dev": devs[dev % len(devs)],
                "ppn": self.h.secret_ppn,
                "write": write,
                "stale": stale,
            }
        )

    # -- device lifecycle ------------------------------------------------------

    @precondition(
        lambda self: self._alive() and self._devs_in(Lifecycle.DETACHED)
    )
    @rule(dev=st.integers(0, 63))
    def attach(self, dev: int) -> None:
        devs = self._devs_in(Lifecycle.DETACHED)
        self._apply({"op": "attach", "dev": devs[dev % len(devs)]})

    @precondition(
        lambda self: self._alive() and self._devs_in(Lifecycle.ATTACHED)
    )
    @rule(dev=st.integers(0, 63))
    def detach(self, dev: int) -> None:
        devs = self._devs_in(Lifecycle.ATTACHED)
        self._apply({"op": "detach", "dev": devs[dev % len(devs)]})

    @precondition(
        lambda self: hasattr(self, "h")
        and self._devs_in(
            Lifecycle.ATTACHED, Lifecycle.QUARANTINED, Lifecycle.KILLED
        )
    )
    @rule(dev=st.integers(0, 63))
    def reset(self, dev: int) -> None:
        devs = self._devs_in(
            Lifecycle.ATTACHED, Lifecycle.QUARANTINED, Lifecycle.KILLED
        )
        self._apply({"op": "reset", "dev": devs[dev % len(devs)]})

    @precondition(
        lambda self: hasattr(self, "h") and self._devs_in(Lifecycle.QUARANTINED)
    )
    @rule(dev=st.integers(0, 63))
    def readmit(self, dev: int) -> None:
        devs = self._devs_in(Lifecycle.QUARANTINED)
        self._apply({"op": "readmit", "dev": devs[dev % len(devs)]})

    @precondition(
        lambda self: hasattr(self, "h")
        and self._devs_in(
            Lifecycle.ATTACHED, Lifecycle.QUARANTINED, Lifecycle.KILLED
        )
    )
    @rule(dev=st.integers(0, 63))
    def shootdown(self, dev: int) -> None:
        devs = self._devs_in(
            Lifecycle.ATTACHED, Lifecycle.QUARANTINED, Lifecycle.KILLED
        )
        self._apply({"op": "shootdown", "dev": devs[dev % len(devs)]})

    # -- the lockstep check after every single step ----------------------------

    @invariant()
    def lockstep(self) -> None:
        if hasattr(self, "h"):
            self.h.check_invariants()
