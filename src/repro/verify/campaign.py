"""Verification campaigns: run both checkers, bundle what they find.

This is the engine behind ``border-control verify``: a randomized
Hypothesis machine run (sampling deep interleavings) plus the exhaustive
small-model sweep (proving shallow ones), each reporting independently.
Any counterexample is written as a replayable poison-cell bundle so the
failure travels — from CI artifact to a local ``replay-cell`` — without
the finding machine's RNG state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.verify.bundle import make_cell, write_verify_bundle
from repro.verify.harness import HarnessConfig
from repro.verify.smallmodel import check_small_model, small_model_config

__all__ = ["VerifyReport", "run_verify_campaign"]


@dataclass
class VerifyReport:
    """Outcome of one verification campaign."""

    profile: str = ""
    machine_ran: bool = False
    machine_passed: bool = True
    machine_error: str = ""
    smallmodel_ran: bool = False
    smallmodel_passed: bool = True
    smallmodel_sequences_hint: int = 0
    smallmodel_error: str = ""
    bundles: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return self.machine_passed and self.smallmodel_passed

    def to_dict(self) -> Dict[str, object]:
        return {
            "passed": self.passed,
            "profile": self.profile,
            "machine": {
                "ran": self.machine_ran,
                "passed": self.machine_passed,
                "error": self.machine_error or None,
            },
            "smallmodel": {
                "ran": self.smallmodel_ran,
                "passed": self.smallmodel_passed,
                "error": self.smallmodel_error or None,
            },
            "bundles": self.bundles,
        }


def run_verify_campaign(
    profile: Optional[str] = None,
    max_examples: Optional[int] = None,
    stateful_steps: Optional[int] = None,
    smallmodel_depth: int = 3,
    run_machine: bool = True,
    run_smallmodel: bool = True,
    bundle_dir: Optional[Path] = None,
    config: Optional[HarnessConfig] = None,
    log=None,
) -> VerifyReport:
    """Run the lockstep checkers; returns a :class:`VerifyReport`.

    ``--skip-machine`` runs (``run_machine=False``) work without
    Hypothesis installed: the machine branch is the only place it is
    imported.
    """
    report = VerifyReport()

    def say(message: str) -> None:
        if log is not None:
            log(message)

    if run_machine:
        # Imported lazily: everything else in repro.verify must work in
        # environments without the `test` extra.
        from hypothesis import settings
        from hypothesis.stateful import run_state_machine_as_test

        from repro.verify import machine as machine_mod
        from repro.verify.profiles import load_profile

        report.profile = load_profile(profile)
        overrides: Dict[str, object] = {}
        if max_examples is not None:
            overrides["max_examples"] = max_examples
        if stateful_steps is not None:
            overrides["stateful_step_count"] = stateful_steps
        active = settings(settings.default, **overrides) if overrides else None

        machine_cls = machine_mod.LockstepMachine
        if config is not None:
            machine_cls = type(
                "ConfiguredLockstepMachine", (machine_mod.LockstepMachine,),
                {"config": config},
            )

        report.machine_ran = True
        say(f"machine: profile={report.profile} running stateful search...")
        try:
            run_state_machine_as_test(machine_cls, settings=active)
        except Exception as exc:  # counterexample (or harness crash)
            report.machine_passed = False
            report.machine_error = f"{type(exc).__name__}: {exc}"
            trace = list(machine_mod.LAST_TRACE)
            say(f"machine: FAILED after shrink — {len(trace)}-op trace")
            if bundle_dir is not None and trace:
                cell = make_cell(trace, "machine", config)
                path = write_verify_bundle(
                    Path(bundle_dir), cell, report.machine_error
                )
                report.bundles.append(str(path))
                say(f"machine: wrote counterexample bundle {path}")
        else:
            say("machine: passed")

    if run_smallmodel:
        report.smallmodel_ran = True
        say(f"smallmodel: exhaustive sweep to depth {smallmodel_depth}...")
        counted = [0]

        def progress(n: int) -> None:
            counted[0] = n

        smallmodel_cfg = config or small_model_config()
        counterexample = check_small_model(
            depth=smallmodel_depth, config=smallmodel_cfg, progress=progress
        )
        report.smallmodel_sequences_hint = counted[0]
        if counterexample is not None:
            report.smallmodel_passed = False
            report.smallmodel_error = counterexample.error
            say(
                f"smallmodel: FAILED at step {counterexample.step} "
                f"({len(counterexample.ops)}-op sequence)"
            )
            if bundle_dir is not None:
                cell = make_cell(counterexample.ops, "smallmodel", smallmodel_cfg)
                path = write_verify_bundle(
                    Path(bundle_dir), cell, counterexample.error
                )
                report.bundles.append(str(path))
                say(f"smallmodel: wrote counterexample bundle {path}")
        else:
            say("smallmodel: passed (exhaustive over the small universe)")

    return report
