"""Centralized Hypothesis settings profiles.

One place defines how hard property-based tests try, everywhere: the
test suite (via ``tests/conftest.py``), the ``verify`` CLI subcommand,
and CI all load profiles from here instead of scattering inline
``settings(...)`` decorators.

* ``ci`` — small, derandomized, deadline-free: identical results on
  every run, fast enough for a smoke gate.
* ``dev`` — the default on workstations: quick feedback, still random.
* ``nightly`` — long randomized runs with deep stateful traces, for the
  scheduled job that hunts rare interleavings.

Select with ``HYPOTHESIS_PROFILE=nightly pytest …`` or let
:func:`load_profile` pick: the env var wins, then ``ci`` when a CI
environment is detected, else ``dev``.
"""

from __future__ import annotations

import os
from typing import Optional

from hypothesis import HealthCheck, settings

__all__ = ["register_profiles", "load_profile", "PROFILES"]

PROFILES = ("ci", "dev", "nightly")

_registered = False


def register_profiles() -> None:
    """Register the ci/dev/nightly profiles (idempotent)."""
    global _registered
    if _registered:
        return
    _registered = True
    # The stateful machine builds a whole Kernel per example and its
    # rules have narrow preconditions, so the too_slow / filter_too_much
    # health checks misfire; suppress them uniformly.
    common = dict(
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
    )
    settings.register_profile(
        "ci",
        max_examples=25,
        stateful_step_count=30,
        derandomize=True,  # CI failures must reproduce exactly
        print_blob=True,
        **common,
    )
    settings.register_profile(
        "dev",
        max_examples=50,
        stateful_step_count=50,
        print_blob=True,
        **common,
    )
    settings.register_profile(
        "nightly",
        max_examples=400,
        stateful_step_count=120,
        print_blob=True,
        **common,
    )


def resolve_profile(name: Optional[str] = None) -> str:
    """The profile to use: explicit name > $HYPOTHESIS_PROFILE > CI detection."""
    if name:
        return name
    env = os.environ.get("HYPOTHESIS_PROFILE")
    if env:
        return env
    return "ci" if os.environ.get("CI") else "dev"


def load_profile(name: Optional[str] = None) -> str:
    """Register (if needed) and activate a profile; returns its name."""
    register_profiles()
    chosen = resolve_profile(name)
    settings.load_profile(chosen)
    return chosen
