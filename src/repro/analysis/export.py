"""Machine-readable export of the experiment results.

``export_all`` writes one CSV per figure plus a ``summary.json`` with the
headline numbers — the artifact a downstream paper or plotting pipeline
would consume (the ASCII charts in :mod:`repro.analysis.ascii_chart` are
for terminals; these files are for matplotlib/pgfplots).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.experiments import fig4, fig5, fig6, fig7, storage
from repro.sim.config import GPUThreading, SafetyMode

__all__ = ["export_all", "write_csv"]


def write_csv(path: Union[str, Path], headers: List[str], rows: List[List]) -> None:
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(rows)


def export_all(
    out_dir: Union[str, Path],
    quick: bool = False,
    seed: int = 1234,
    workloads: Optional[List[str]] = None,
    workers: Optional[int] = 1,
    allow_partial: bool = False,
    journal=None,
) -> Dict[str, str]:
    """Run every experiment and write CSV/JSON artifacts.

    ``workers`` > 1 (or ``None`` = all cores) prewarms the cacheable
    grids in parallel first. ``allow_partial`` writes empty CSV fields
    for failed cells instead of aborting; ``journal`` makes the prewarm
    resumable. Returns {artifact name: path written}.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    ops_scale = 0.25 if quick else 1.0
    if workers is None or workers > 1 or journal is not None:
        from repro import sweep

        cells = []
        for grid_name in ("fig4", "fig5", "fig7"):
            cells.extend(
                sweep.grid_cells(
                    grid_name, workloads=workloads, seed=seed, ops_scale=ops_scale
                )
            )
        sweep.prewarm(
            sweep.dedup_cells(cells),
            workers=workers,
            journal=journal,
            allow_partial=allow_partial,
        )
    written: Dict[str, str] = {}
    summary: Dict[str, object] = {"quick": quick, "seed": seed}
    if allow_partial:
        summary["allow_partial"] = True

    # Figure 4: per-workload overheads, both GPU configurations.
    fig4_rows = []
    geomeans = {}
    for threading in (GPUThreading.HIGHLY, GPUThreading.MODERATELY):
        result = fig4.run(
            threading,
            workloads=workloads,
            seed=seed,
            ops_scale=ops_scale,
            allow_partial=allow_partial,
        )
        for mode in fig4.SAFETY_MODES:
            for name, overhead in result.overheads[mode].items():
                fig4_rows.append(
                    [
                        threading.value,
                        mode.value,
                        name,
                        "" if overhead is None else f"{overhead:.6f}",
                    ]
                )
            geomeans[f"{threading.value}/{mode.value}"] = result.geomean(mode)
    path = out / "fig4_runtime_overhead.csv"
    write_csv(path, ["gpu", "configuration", "workload", "overhead"], fig4_rows)
    written["fig4"] = str(path)
    summary["fig4_geomeans"] = geomeans

    # Figure 5: border requests per cycle.
    f5 = fig5.run(
        workloads=workloads,
        seed=seed,
        ops_scale=ops_scale,
        allow_partial=allow_partial,
    )
    path = out / "fig5_requests_per_cycle.csv"
    write_csv(
        path,
        ["workload", "requests_per_cycle"],
        [
            [n, "" if v is None else f"{v:.6f}"]
            for n, v in f5.requests_per_cycle.items()
        ],
    )
    written["fig5"] = str(path)
    summary["fig5_average"] = f5.average

    # Figure 6: BCC miss-ratio sweep.
    f6 = fig6.run(
        workloads=workloads,
        seed=seed,
        ops_scale=ops_scale,
        workers=workers,
        allow_partial=allow_partial,
        journal=journal,
    )
    f6_rows = []
    for ppe, line in sorted(f6.miss_ratio.items()):
        for size, ratio in zip(f6.sizes_bytes, line):
            f6_rows.append(
                [ppe, size, "" if ratio is None else f"{ratio:.6f}"]
            )
    path = out / "fig6_bcc_miss_ratio.csv"
    write_csv(path, ["pages_per_entry", "bcc_bytes", "miss_ratio"], f6_rows)
    written["fig6"] = str(path)

    # Figure 7: downgrade-rate sweep.
    f7 = fig7.run(
        workloads=workloads,
        seed=seed,
        ops_scale=ops_scale,
        allow_partial=allow_partial,
    )
    f7_rows = []
    for mode in (SafetyMode.ATS_ONLY, SafetyMode.BC_BCC):
        for threading in (GPUThreading.HIGHLY, GPUThreading.MODERATELY):
            for rate, overhead in zip(f7.rates, f7.series(mode, threading)):
                f7_rows.append(
                    [mode.value, threading.value, rate, f"{overhead:.8f}"]
                )
    path = out / "fig7_downgrade_overhead.csv"
    write_csv(path, ["configuration", "gpu", "downgrades_per_s", "overhead"], f7_rows)
    written["fig7"] = str(path)
    summary["fig7_cost_ratio_highly"] = f7.bc_to_baseline_cost_ratio(
        GPUThreading.HIGHLY
    )

    # Storage overheads.
    st = storage.run()
    summary["storage"] = {
        "table_bytes": st.table_bytes,
        "table_fraction": st.table_fraction,
        "bcc_bytes": st.bcc_bytes,
        "bcc_reach_bytes": st.bcc_reach_bytes,
    }

    path = out / "summary.json"
    path.write_text(json.dumps(summary, indent=2, default=str))
    written["summary"] = str(path)
    return written
