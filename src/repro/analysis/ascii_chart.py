"""Minimal ASCII chart rendering for terminal reports."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["bar_chart", "line_chart"]


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    width: int = 48,
    fmt: str = "{:.3f}",
) -> str:
    """Horizontal bar chart, one bar per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    peak = max((abs(v) for v in values), default=0.0)
    label_width = max((len(l) for l in labels), default=0)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        length = 0 if peak == 0 else int(round(abs(value) / peak * width))
        lines.append(
            f"{label:<{label_width}}  {'#' * length:<{width}}  " + fmt.format(value)
        )
    return "\n".join(lines)


def line_chart(
    x_values: Sequence[float],
    series: Dict[str, Sequence[Optional[float]]],
    title: str = "",
    height: int = 12,
    width: int = 60,
    y_fmt: str = "{:.3f}",
) -> str:
    """Scatter-style line chart; one glyph per series."""
    glyphs = "*o+x#@%&"
    points: List[tuple] = []
    y_max = 0.0
    x_min = min(x_values)
    x_max = max(x_values)
    for si, (name, ys) in enumerate(series.items()):
        for x, y in zip(x_values, ys):
            if y is None:
                continue
            y_max = max(y_max, y)
            points.append((x, y, glyphs[si % len(glyphs)]))
    if y_max == 0:
        y_max = 1.0
    grid = [[" "] * width for _ in range(height)]
    x_span = (x_max - x_min) or 1.0
    for x, y, glyph in points:
        col = int((x - x_min) / x_span * (width - 1))
        row = height - 1 - int(y / y_max * (height - 1))
        grid[row][col] = glyph
    lines = [title] if title else []
    for i, row in enumerate(grid):
        y_label = y_fmt.format(y_max * (height - 1 - i) / (height - 1))
        lines.append(f"{y_label:>10} |{''.join(row)}")
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(f"{'':>11} {x_min:g}{'':>{max(1, width - 12)}}{x_max:g}")
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]} = {name}" for i, name in enumerate(series)
    )
    lines.append(f"{'':>11} {legend}")
    return "\n".join(lines)
