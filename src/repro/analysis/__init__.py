"""Rendering and reporting: text tables, ASCII charts, the full report.

The experiment drivers return plain-data results; this package turns
them into terminal-friendly tables and charts and assembles the full
paper-vs-measured report used to populate EXPERIMENTS.md.
"""

from repro.analysis.ascii_chart import bar_chart, line_chart
from repro.analysis.report import full_report

__all__ = ["bar_chart", "line_chart", "full_report"]
