"""Full paper-vs-measured report.

``full_report()`` reruns (or reads from cache) every experiment and
assembles the complete text report: Tables 1-3, Figures 4-7, and the
storage overheads. The ``border-control report`` CLI command and the
EXPERIMENTS.md generator both call this.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.ascii_chart import bar_chart, line_chart
from repro.experiments import (
    fig4,
    fig5,
    fig6,
    fig7,
    storage,
    tables,
    workload_table,
)
from repro.sim.config import GPUThreading, SafetyMode

__all__ = ["full_report"]


def full_report(
    quick: bool = False,
    seed: int = 1234,
    workloads: Optional[List[str]] = None,
    workers: Optional[int] = 1,
    allow_partial: bool = False,
    journal=None,
) -> str:
    """Run everything and render one text report.

    ``quick`` scales traces down 4x for a fast smoke pass; the shapes
    survive, the exact percentages wobble. ``workers`` > 1 (or ``None``
    = all cores) prewarms the union of every figure's grid across a
    process pool first; the serial assembly below then reads the shared
    cache, producing output identical to a serial run. ``allow_partial``
    renders explicit gap markers for failed cells instead of aborting;
    ``journal`` (:class:`repro.journal.RunJournal`) makes the prewarm
    resumable after a crash or interrupt.
    """
    ops_scale = 0.25 if quick else 1.0
    if workers is None or workers > 1 or journal is not None:
        from repro import sweep

        cells = []
        # fig6's border-recording cells aren't cacheable; fig6.run below
        # fans them out itself when given `workers`.
        for grid_name in ("fig4", "fig5", "fig7", "workloads"):
            cells.extend(
                sweep.grid_cells(
                    grid_name, workloads=workloads, seed=seed, ops_scale=ops_scale
                )
            )
        sweep.prewarm(
            sweep.dedup_cells(cells),
            workers=workers,
            journal=journal,
            allow_partial=allow_partial,
        )
    sections: List[str] = []

    sections.append(tables.table1())
    sections.append(tables.table2())
    sections.append(tables.table3())
    sections.append(
        workload_table.run(
            workloads=workloads,
            seed=seed,
            ops_scale=ops_scale,
            allow_partial=allow_partial,
        ).render()
    )

    for threading in (GPUThreading.HIGHLY, GPUThreading.MODERATELY):
        result = fig4.run(
            threading,
            workloads=workloads,
            seed=seed,
            ops_scale=ops_scale,
            allow_partial=allow_partial,
        )
        sections.append(result.render())
        full_iommu = {
            name: value
            for name, value in result.overheads[SafetyMode.FULL_IOMMU].items()
            if value is not None
        }
        if full_iommu:
            sections.append(
                bar_chart(
                    list(full_iommu.keys()),
                    [v * 100 for v in full_iommu.values()],
                    title=f"Full IOMMU overhead (%), {threading.label}",
                    fmt="{:.1f}%",
                )
            )

    f5 = fig5.run(
        workloads=workloads,
        seed=seed,
        ops_scale=ops_scale,
        allow_partial=allow_partial,
    )
    sections.append(f5.render())
    f5_bars = {
        name: value
        for name, value in f5.requests_per_cycle.items()
        if value is not None
    }
    if f5_bars:
        sections.append(
            bar_chart(
                list(f5_bars.keys()),
                list(f5_bars.values()),
                title="Border Control requests per cycle (highly threaded)",
            )
        )

    f6 = fig6.run(
        workloads=workloads,
        seed=seed,
        ops_scale=ops_scale,
        workers=workers,
        allow_partial=allow_partial,
        journal=journal,
    )
    sections.append(f6.render())
    sections.append(
        line_chart(
            f6.sizes_bytes,
            {f"{ppe} pages/entry": f6.miss_ratio[ppe] for ppe in sorted(f6.miss_ratio)},
            title="Figure 6: BCC miss ratio vs. size (bytes)",
        )
    )

    f7 = fig7.run(
        workloads=workloads,
        seed=seed,
        ops_scale=ops_scale,
        allow_partial=allow_partial,
    )
    sections.append(f7.render())
    sections.append(
        line_chart(
            f7.rates,
            {
                f"{mode.label}/{thr.label}": f7.series(mode, thr)
                for mode in (SafetyMode.BC_BCC, SafetyMode.ATS_ONLY)
                for thr in (GPUThreading.HIGHLY, GPUThreading.MODERATELY)
            },
            title="Figure 7: overhead vs. downgrades per second",
            y_fmt="{:.4f}",
        )
    )
    for thr in (GPUThreading.HIGHLY, GPUThreading.MODERATELY):
        sections.append(
            f"per-downgrade cost ratio BC/ATS-only ({thr.label}): "
            f"{f7.bc_to_baseline_cost_ratio(thr):.2f}x (paper: ~2x)"
        )

    sections.append(storage.run().render())
    return "\n\n".join(sections)
