"""``repro.supervisor`` — a crash-tolerant process-pool supervisor.

PR 1 taught the *simulated* hardware to survive drops, hangs and
bit-flips (timeouts, bounded backoff, watchdogs, quarantine). This
module applies the same vocabulary to the *host-side* pool that runs
the experiment campaigns, so one OOM-killed or wedged worker never
poisons an entire sweep:

* **Worker-crash containment** — a dead worker breaks a
  :class:`~concurrent.futures.ProcessPoolExecutor` for every pending
  future. The supervisor detects the broken pool, rebuilds it, charges
  a failed *attempt* only to the tasks that were actually running on
  the dead worker, and resubmits everything else untouched.
* **Failure taxonomy** — worker-side exceptions are classified as
  ``transient`` (:class:`~repro.errors.TransientCellError`, retried
  with bounded exponential backoff), ``crash`` / ``deadline``
  (retried on a rebuilt pool), or ``deterministic``. A task failing
  with the *same* deterministic error twice is quarantined as
  **poison**: no further retries, and a serialized repro bundle
  (task parameters + traceback) is written under
  ``<quarantine_dir>/`` for offline replay via
  ``border-control replay-cell``.
* **Deadlines** — with ``deadline_seconds`` set, a task that holds a
  worker past its wall-clock budget gets the whole pool's workers
  killed and rebuilt (a single worker of a pool cannot be killed in
  isolation); only the overdue tasks are charged an attempt.
* **Observability** — every recovery action is counted in
  :class:`SupervisorStats`, which the sweep layer surfaces in
  ``SweepReport.render()`` and ``BENCH_sweep.json``.

All machinery is pay-as-you-go: an undisturbed run takes the exact
same single-submission path as before. The only standing cost is a
4 Hz wake-up of the coordinating thread (to sample which futures are
running, the input to crash/deadline accounting) — it never touches
the workers and adds nothing to any cell's measured time.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import TransientCellError
from repro.faults.plan import derive_seed

__all__ = [
    "BUNDLE_SCHEMA",
    "ERROR_ABORTED",
    "ERROR_CRASH",
    "ERROR_DEADLINE",
    "ERROR_DETERMINISTIC",
    "ERROR_TRANSIENT",
    "SupervisorPolicy",
    "SupervisorStats",
    "TaskOutcome",
    "supervised_map",
    "traced_call",
    "write_poison_bundle",
]

BUNDLE_SCHEMA = "repro-poison-cell-v1"

#: Failure kinds in :attr:`TaskOutcome.error_kind`.
ERROR_TRANSIENT = "transient"
ERROR_DETERMINISTIC = "deterministic"
ERROR_CRASH = "crash"
ERROR_DEADLINE = "deadline"
ERROR_ABORTED = "aborted"

ProgressFn = Callable[[int, int, str, Optional[str]], None]
#: ``describe_task(task)`` returns a JSON-serializable replay recipe for
#: the poison bundle (``None`` → the bundle records only ``repr(task)``).
DescribeFn = Callable[[Any], Optional[Dict[str, Any]]]
OnOutcomeFn = Callable[[int, "TaskOutcome"], None]


@dataclass(frozen=True)
class SupervisorPolicy:
    """Retry/deadline policy for one supervised fan-out.

    The defaults retry crashes and transient failures a couple of times
    and quarantine repeating deterministic failures; they add no cost
    to a run in which nothing fails. ``SupervisorPolicy(retries=0)``
    restores single-shot semantics (every failure is final) while
    keeping crash containment: queued siblings of a dead worker are
    still resubmitted on a rebuilt pool.
    """

    #: Maximum *re*-executions per task (0 = never retry).
    retries: int = 2
    #: First retry delay; doubles per attempt, capped at ``backoff_max``.
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    #: Per-task wall-clock budget (None = no deadline). Parallel mode
    #: only — a serial in-process call cannot be preempted.
    deadline_seconds: Optional[float] = None
    #: Identical deterministic failures before a task is poison.
    max_identical_failures: int = 2
    #: Where poison repro bundles land (None = skip writing bundles).
    quarantine_dir: Optional[Path] = None
    #: Retry-jitter amplitude: each backoff delay is scaled by a factor
    #: drawn deterministically from ``[1 - jitter, 1 + jitter]``. Without
    #: it, N tasks failing together (one dead node, one throttled disk)
    #: back off in lockstep and retry as a thundering herd — across a
    #: fleet, all against the same coordinator. 0 disables jitter.
    jitter: float = 0.25
    #: Seed for the jitter draw. The sweep layer derives it from the run
    #: id, so a resumed run replays the exact same delays (replay
    #: determinism) while different runs decorrelate.
    jitter_seed: int = 0

    def backoff(self, attempts: int, jitter_key: str = "") -> float:
        """Delay before re-running a task that has failed ``attempts`` times.

        ``jitter_key`` identifies the (task, attempt) doing the waiting;
        the delay is then a pure function of ``(policy, jitter_key)`` —
        deterministic under replay, decorrelated across tasks. An empty
        key skips jitter (the bare exponential schedule).
        """
        if attempts <= 0:
            return 0.0
        delay = min(self.backoff_max, self.backoff_base * (2.0 ** (attempts - 1)))
        if self.jitter > 0.0 and jitter_key:
            unit = derive_seed(self.jitter_seed, jitter_key) / 0xFFFFFFFF
            delay *= 1.0 + self.jitter * (2.0 * unit - 1.0)
        return delay


@dataclass
class SupervisorStats:
    """Counters for every recovery action one fan-out performed."""

    retries: int = 0
    pool_rebuilds: int = 0
    poison_cells: int = 0
    deadline_kills: int = 0
    resumed_cells: int = 0  # filled by the journal layer, not here

    def as_dict(self) -> Dict[str, int]:
        return {
            "retries": self.retries,
            "pool_rebuilds": self.pool_rebuilds,
            "poison_cells": self.poison_cells,
            "deadline_kills": self.deadline_kills,
            "resumed_cells": self.resumed_cells,
        }

    @property
    def any_recovery(self) -> bool:
        return any(self.as_dict().values())

    def merge(self, other: "SupervisorStats") -> None:
        self.retries += other.retries
        self.pool_rebuilds += other.pool_rebuilds
        self.poison_cells += other.poison_cells
        self.deadline_kills += other.deadline_kills
        self.resumed_cells += other.resumed_cells


class TaskOutcome(NamedTuple):
    """Final fate of one task after supervision."""

    value: Any
    error: Optional[str]
    wall_seconds: float
    attempts: int = 1
    error_kind: Optional[str] = None
    resumed: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


def traced_call(fn: Callable, task: Any) -> Tuple[Any, Optional[str], float, Optional[str]]:
    """Run one call, capturing wall time, traceback, and failure kind.

    Exceptions are flattened to strings *inside* the worker — raw
    exception objects don't always survive pickling, and the parent
    wants every failure, not just the first. The fourth element is the
    taxonomy kind (:data:`ERROR_TRANSIENT` / :data:`ERROR_DETERMINISTIC`)
    the supervisor's retry policy keys on.
    """
    start = time.perf_counter()
    try:
        value = fn(task)
        return value, None, time.perf_counter() - start, None
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        tb = traceback.format_exc(limit=8)
        kind = (
            ERROR_TRANSIENT
            if isinstance(exc, TransientCellError)
            else ERROR_DETERMINISTIC
        )
        return (
            None,
            f"{type(exc).__name__}: {exc}\n{tb}",
            time.perf_counter() - start,
            kind,
        )


def write_poison_bundle(
    quarantine_dir: Path,
    task: Any,
    error: str,
    attempts: int,
    describe_task: Optional[DescribeFn] = None,
    label: str = "",
) -> Path:
    """Serialize a poison task's repro recipe; returns the bundle path.

    The bundle is written atomically (temp file + ``os.replace``) so a
    killed run never leaves a truncated bundle, and named by a stable
    hash of its contents so re-quarantining the same cell overwrites
    rather than accumulates.
    """
    recipe = describe_task(task) if describe_task is not None else None
    if recipe is None:
        recipe = {"kind": "opaque", "repr": repr(task)}
    payload = {
        "schema": BUNDLE_SCHEMA,
        "label": label,
        "attempts": attempts,
        "error": error,
        **recipe,
    }
    digest_src = json.dumps(
        {k: v for k, v in payload.items() if k not in ("error", "attempts")},
        sort_keys=True,
        default=str,
    )
    name = hashlib.sha256(digest_src.encode()).hexdigest()[:16]
    quarantine_dir.mkdir(parents=True, exist_ok=True)
    path = quarantine_dir / f"poison-{name}.json"
    tmp = quarantine_dir / f".poison-{name}.{os.getpid()}.tmp"
    tmp.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    os.replace(tmp, path)
    return path


class _TaskState:
    """Mutable supervision bookkeeping for one task."""

    __slots__ = ("index", "attempts", "identical_failures", "last_error", "free_rides")

    def __init__(self, index: int) -> None:
        self.index = index
        self.attempts = 0  # completed (failed) executions so far
        self.identical_failures = 0
        self.last_error: Optional[str] = None
        # Pool breaks survived without being observed running. Queued
        # siblings of a dead worker legitimately ride a break or two for
        # free; a task that keeps riding is itself a crasher that dies
        # faster than the running-state sampler can see it.
        self.free_rides = 0


def _first_line(error: str) -> str:
    return error.splitlines()[0] if error else error


class _Supervisor:
    """One supervised fan-out: pool lifecycle + retry/deadline loop."""

    #: How often the event loop wakes to sample running futures (the
    #: basis for crash charging and deadline checks), in seconds.
    _DEADLINE_POLL = 0.25

    def __init__(
        self,
        fn: Callable,
        tasks: Sequence[Any],
        workers: int,
        policy: SupervisorPolicy,
        stats: SupervisorStats,
        progress: Optional[ProgressFn],
        label_of: Callable[[Any], str],
        describe_task: Optional[DescribeFn],
        on_outcome: Optional[OnOutcomeFn],
        initializer: Optional[Callable],
        initargs: Tuple,
        serial_setup: Optional[Callable[[], None]] = None,
        serial_teardown: Optional[Callable[[], None]] = None,
        should_abort: Optional[Callable[[], bool]] = None,
        pool_factory: Optional[Callable[..., ProcessPoolExecutor]] = None,
    ) -> None:
        self.fn = fn
        self.tasks = tasks
        self.workers = workers
        self.policy = policy
        self.stats = stats
        self.progress = progress
        self.label_of = label_of
        self.describe_task = describe_task
        self.on_outcome = on_outcome
        self.initializer = initializer
        self.initargs = initargs
        self.serial_setup = serial_setup
        self.serial_teardown = serial_teardown
        self.should_abort = should_abort
        self.pool_factory = pool_factory
        self.outcomes: List[Optional[TaskOutcome]] = [None] * len(tasks)
        self.states = [_TaskState(i) for i in range(len(tasks))]
        self.done_count = 0

    def _aborted(self) -> bool:
        return self.should_abort is not None and self.should_abort()

    def _finalize_aborted(self) -> None:
        """Seal every unfinished task as aborted (never executed again).

        Cooperative cancellation: the job server's cancel/drain/deadline
        paths flip ``should_abort`` from another thread; the supervisor
        observes it at the next dispatch boundary. Aborted outcomes are
        recorded as *failures* (``ok=False``), so a journaled resume
        re-executes exactly these cells and none of the completed ones.
        """
        for index, outcome in enumerate(self.outcomes):
            if outcome is None:
                self._finalize(
                    index,
                    TaskOutcome(
                        None,
                        "JobCancelled: aborted before completion "
                        "(cancellation, drain, or deadline)",
                        0.0,
                        self.states[index].attempts,
                        ERROR_ABORTED,
                    ),
                )

    # -- shared bookkeeping ------------------------------------------------

    def _finalize(self, index: int, outcome: TaskOutcome) -> None:
        self.outcomes[index] = outcome
        self.done_count += 1
        if self.on_outcome is not None:
            self.on_outcome(index, outcome)
        if self.progress is not None:
            self.progress(
                self.done_count,
                len(self.tasks),
                self.label_of(self.tasks[index]),
                outcome.error,
            )

    def _classify_failure(
        self, state: _TaskState, error: str, kind: str, wall: float
    ) -> Optional[float]:
        """Account one failed execution.

        Returns the backoff delay before the next attempt, or ``None``
        when the task is out of budget (the caller finalizes it).
        Poison detection happens here: a deterministic failure whose
        first line matches the previous one counts toward
        ``max_identical_failures``.
        """
        state.attempts += 1
        if kind == ERROR_DETERMINISTIC:
            if state.last_error is not None and _first_line(
                state.last_error
            ) == _first_line(error):
                state.identical_failures += 1
            else:
                state.identical_failures = 1
        state.last_error = error
        if (
            kind == ERROR_DETERMINISTIC
            and state.identical_failures >= self.policy.max_identical_failures
        ):
            self._quarantine(state, error)
            return None
        if state.attempts > self.policy.retries:
            return None
        self.stats.retries += 1
        return self.policy.backoff(
            state.attempts, jitter_key=f"{state.index}:{state.attempts}"
        )

    def _quarantine(self, state: _TaskState, error: str) -> None:
        self.stats.poison_cells += 1
        if self.policy.quarantine_dir is None:
            return
        try:
            path = write_poison_bundle(
                self.policy.quarantine_dir,
                self.tasks[state.index],
                error,
                state.attempts,
                describe_task=self.describe_task,
                label=self.label_of(self.tasks[state.index]),
            )
            state.last_error = (
                f"{error}\n[poison: quarantined after "
                f"{state.identical_failures} identical failures; "
                f"repro bundle: {path}]"
            )
        except OSError:  # bundle write is best-effort
            pass

    # -- serial path -------------------------------------------------------

    def run_serial(self) -> List[TaskOutcome]:
        # The in-process path never runs the pool ``initializer`` (there
        # is no worker to initialize); callers whose tasks need ambient
        # state — the sweep layer's installed grid context — provide a
        # ``serial_setup`` mirroring the worker-side install, without the
        # initializer's environment mutations leaking into this process.
        if self.serial_setup is not None:
            self.serial_setup()
        try:
            for i, task in enumerate(self.tasks):
                if self._aborted():
                    break
                state = self.states[i]
                while True:
                    value, error, wall, kind = traced_call(self.fn, task)
                    if error is None:
                        self._finalize(i, TaskOutcome(value, None, wall, state.attempts + 1))
                        break
                    delay = self._classify_failure(state, error, kind or ERROR_DETERMINISTIC, wall)
                    if delay is None:
                        self._finalize(
                            i,
                            TaskOutcome(
                                None, state.last_error, wall, state.attempts, kind
                            ),
                        )
                        break
                    if delay > 0:
                        time.sleep(delay)
                    if self._aborted():
                        break
            self._finalize_aborted()
        finally:
            if self.serial_teardown is not None:
                self.serial_teardown()
        return [out for out in self.outcomes if out is not None]

    # -- parallel path -----------------------------------------------------

    def _new_pool(self) -> ProcessPoolExecutor:
        factory = self.pool_factory or ProcessPoolExecutor
        return factory(
            max_workers=min(self.workers, len(self.tasks)),
            initializer=self.initializer,
            initargs=self.initargs,
        )

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down *now*, without waiting on in-flight work.

        ``ProcessPoolExecutor`` has no per-worker kill, so deadline
        enforcement (and abandonment on interrupt) kills every worker
        process; the supervisor then rebuilds and resubmits.
        """
        processes = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            try:
                proc.kill()
            except (OSError, ValueError):  # already gone
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def run_parallel(self) -> List[TaskOutcome]:
        policy = self.policy
        pool = self._new_pool()
        in_pool: Dict[Future, int] = {}
        running_since: Dict[int, float] = {}
        # (due monotonic time, index) — tasks waiting out a retry backoff.
        delayed: List[Tuple[float, int]] = []
        to_submit: "deque[int]" = deque(range(len(self.tasks)))

        def submit(index: int) -> None:
            fut = pool.submit(traced_call, self.fn, self.tasks[index])
            in_pool[fut] = index

        def rebuild_pool() -> None:
            nonlocal pool
            self._kill_pool(pool)
            self.stats.pool_rebuilds += 1
            pool = self._new_pool()
            # Everything that was in the old pool (and didn't get charged
            # an attempt by the caller) goes back to the submit queue.
            for index in in_pool.values():
                running_since.pop(index, None)
                to_submit.append(index)
            in_pool.clear()

        def fail_or_retry(index: int, error: str, kind: str, wall: float) -> None:
            state = self.states[index]
            delay = self._classify_failure(state, error, kind, wall)
            if delay is None:
                self._finalize(
                    index, TaskOutcome(None, state.last_error, wall, state.attempts, kind)
                )
            elif delay > 0:
                delayed.append((time.monotonic() + delay, index))
            else:
                to_submit.append(index)

        def crash_or_ride(
            index: int, exc: BaseException, was_running: bool, wall: float
        ) -> None:
            """Charge a broken-pool victim, or resubmit it for free.

            Only tasks observed running on the dead worker are charged an
            attempt — queued siblings ride the rebuild untouched. The
            ``free_rides`` bound keeps a crasher that dies between
            running-state samples from riding rebuilds forever.
            """
            state = self.states[index]
            if was_running or state.free_rides >= 3:
                fail_or_retry(
                    index,
                    f"{type(exc).__name__}: worker process died "
                    f"mid-cell ({exc})",
                    ERROR_CRASH,
                    wall,
                )
            else:
                state.free_rides += 1
                to_submit.append(index)

        try:
            while self.done_count < len(self.tasks):
                if self._aborted():
                    # Cooperative cancellation observed at the poll
                    # boundary: kill in-flight workers now (their cells
                    # are charged as aborted, not crashed) and seal
                    # everything unfinished.
                    self._kill_pool(pool)
                    self._finalize_aborted()
                    return [out for out in self.outcomes if out is not None]
                now = time.monotonic()
                # Release backed-off tasks whose delay elapsed.
                still_delayed = []
                for due, index in delayed:
                    if due <= now:
                        to_submit.append(index)
                    else:
                        still_delayed.append((due, index))
                delayed[:] = still_delayed
                while to_submit:
                    submit(to_submit.popleft())

                if not in_pool:
                    # Only backed-off tasks remain; sleep until the next one.
                    if delayed:
                        time.sleep(max(0.0, min(d for d, _ in delayed) - now))
                        continue
                    break  # defensive: nothing queued, nothing pending

                # Bounded wait: the wake-up is how running states get
                # sampled. Without it, a task whose worker dies before any
                # sibling completes is never observed "running", so a crash
                # could never be charged an attempt (infinite free
                # resubmission of an always-crashing cell).
                timeout = self._DEADLINE_POLL
                if delayed:
                    timeout = min(
                        timeout, max(0.0, min(d for d, _ in delayed) - now)
                    )

                finished, _ = wait(
                    set(in_pool), timeout=timeout, return_when=FIRST_COMPLETED
                )
                now = time.monotonic()
                # A future turns "running" once the executor hands it to a
                # worker; note the time for deadline accounting.
                for fut, index in in_pool.items():
                    if index not in running_since and fut.running():
                        running_since[index] = now

                pool_broken = False
                for fut in finished:
                    index = in_pool.pop(fut)
                    was_running = index in running_since
                    started = running_since.pop(index, now)
                    try:
                        value, error, wall, kind = fut.result()
                    except BrokenProcessPool as exc:
                        # This future's worker died (OOM kill, SIGKILL...).
                        pool_broken = True
                        crash_or_ride(index, exc, was_running, now - started)
                        continue
                    except Exception as exc:  # pool plumbing failure
                        fail_or_retry(
                            index,
                            f"{type(exc).__name__}: {exc}",
                            ERROR_CRASH,
                            now - started,
                        )
                        continue
                    if error is None:
                        self._finalize(
                            index,
                            TaskOutcome(
                                value, None, wall, self.states[index].attempts + 1
                            ),
                        )
                    else:
                        fail_or_retry(index, error, kind or ERROR_DETERMINISTIC, wall)

                if pool_broken:
                    # The executor fails every sibling future when a worker
                    # dies; drain the already-done ones here so running
                    # victims are charged exactly one attempt and queued
                    # ones ride the rebuild for free.
                    for fut in [f for f in list(in_pool) if f.done()]:
                        index = in_pool.pop(fut)
                        was_running = index in running_since
                        started = running_since.pop(index, now)
                        try:
                            value, error, wall, kind = fut.result()
                        except BrokenProcessPool as exc:
                            crash_or_ride(index, exc, was_running, now - started)
                        except Exception:
                            to_submit.append(index)
                        else:  # landed just before the pool broke
                            if error is None:
                                self._finalize(
                                    index,
                                    TaskOutcome(
                                        value,
                                        None,
                                        wall,
                                        self.states[index].attempts + 1,
                                    ),
                                )
                            else:
                                fail_or_retry(
                                    index, error, kind or ERROR_DETERMINISTIC, wall
                                )
                    rebuild_pool()
                    continue

                # Deadline enforcement: any running task past its budget
                # wedges a worker we cannot reclaim individually — kill the
                # workers, charge the overdue tasks, resubmit the innocent.
                if policy.deadline_seconds is not None:
                    overdue = [
                        index
                        for index, started in running_since.items()
                        if now - started > policy.deadline_seconds
                    ]
                    if overdue:
                        for fut in [f for f, i in in_pool.items() if i in set(overdue)]:
                            index = in_pool.pop(fut)
                            started = running_since.pop(index)
                            self.stats.deadline_kills += 1
                            fail_or_retry(
                                index,
                                "DeadlineExceeded: cell exceeded its "
                                f"{policy.deadline_seconds:g}s wall-clock budget",
                                ERROR_DEADLINE,
                                now - started,
                            )
                        rebuild_pool()
        except BaseException:
            # Interrupt (SIGINT/SIGTERM) or internal error: abandon
            # in-flight work immediately so the process can exit and the
            # journal (flushed per-entry by the caller) stays resumable.
            self._kill_pool(pool)
            raise
        else:
            pool.shutdown(wait=True)
        assert all(out is not None for out in self.outcomes)
        return [out for out in self.outcomes if out is not None]


def supervised_map(
    fn: Callable,
    tasks: Sequence[Any],
    workers: int,
    policy: Optional[SupervisorPolicy] = None,
    stats: Optional[SupervisorStats] = None,
    progress: Optional[ProgressFn] = None,
    label_of: Optional[Callable[[Any], str]] = None,
    describe_task: Optional[DescribeFn] = None,
    on_outcome: Optional[OnOutcomeFn] = None,
    initializer: Optional[Callable] = None,
    initargs: Tuple = (),
    serial_setup: Optional[Callable[[], None]] = None,
    serial_teardown: Optional[Callable[[], None]] = None,
    should_abort: Optional[Callable[[], bool]] = None,
    pool_factory: Optional[Callable[..., ProcessPoolExecutor]] = None,
) -> Tuple[List[TaskOutcome], str]:
    """Run ``fn`` over ``tasks`` under supervision, preserving order.

    Returns ``(outcomes, mode)`` with one :class:`TaskOutcome` per task
    in task order; ``mode`` is ``"parallel"`` or ``"serial"`` (the
    serial path is taken in-process for ``workers <= 1`` or a single
    task — no pool, but the same retry/poison policy). ``on_outcome``
    fires once per task as its fate is sealed, in completion order —
    the journal layer hooks it to persist each cell.

    ``initializer(*initargs)`` runs once per spawned worker process —
    including the workers of every *rebuilt* pool, which is how
    worker-side state (cache pinning, warm registries, shipped task
    context) survives crash containment. The serial path never spawns
    workers, so it never runs the initializer; ``serial_setup`` /
    ``serial_teardown`` bracket the in-process loop for callers whose
    task function needs the same ambient state there.

    ``should_abort`` (thread-safe, cheap) is polled at dispatch
    boundaries; once true, no further task is started, in-flight
    workers are killed, and every unfinished task is sealed with an
    :data:`ERROR_ABORTED` outcome — the cooperative-cancellation hook
    the job server's cancel/drain/deadline paths use.

    ``pool_factory`` swaps the executor backend: it is called with the
    same keyword arguments as :class:`ProcessPoolExecutor`
    (``max_workers``, ``initializer``, ``initargs``) for the initial
    pool *and every rebuilt one* — which is why it is a factory, not an
    executor instance. Fleet workers use it to bound their local pool
    and tests use it to inject failing pools.
    """
    sup = _Supervisor(
        fn,
        tasks,
        workers,
        policy or SupervisorPolicy(),
        stats if stats is not None else SupervisorStats(),
        progress,
        label_of or (lambda task: str(task)),
        describe_task,
        on_outcome,
        initializer,
        initargs,
        serial_setup=serial_setup,
        serial_teardown=serial_teardown,
        should_abort=should_abort,
        pool_factory=pool_factory,
    )
    if workers <= 1 or len(tasks) <= 1:
        return sup.run_serial(), "serial"
    return sup.run_parallel(), "parallel"
