"""A 4-level radix page table resident in simulated physical memory.

Layout follows x86-64: four levels of 512 x 64-bit entries indexed by
9-bit slices of the virtual page number; level-1 entries map 4 KB pages
and level-2 entries with the PS bit map 2 MB large pages (paper §3.4.4).

PTE format (bits):

=====  ==========================================================
0      present
1      readable   (kept explicit so read-only/write-only differ)
2      writable
7      page size  (set in a level-2 entry mapping a 2 MB page)
12-51  physical page number of the target frame / next level
=====  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.core.permissions import Perm
from repro.errors import MemoryError_
from repro.mem.address import (
    LARGE_PAGE_SIZE,
    PAGE_SHIFT,
    PAGE_SIZE,
    PAGES_PER_LARGE_PAGE,
)
from repro.mem.phys_memory import PhysicalMemory
from repro.vm.frame_allocator import FrameAllocator

__all__ = ["PageTable", "Translation"]

_PTE_SIZE = 8
_ENTRIES_PER_NODE = PAGE_SIZE // _PTE_SIZE  # 512
_LEVELS = 4

_FLAG_PRESENT = 1 << 0
_FLAG_READ = 1 << 1
_FLAG_WRITE = 1 << 2
_FLAG_LARGE = 1 << 7
_PPN_SHIFT = 12
_PPN_MASK = ((1 << 40) - 1) << _PPN_SHIFT


@dataclass(frozen=True)
class Translation:
    """Result of a successful page-table walk."""

    vpn: int
    ppn: int
    perms: Perm
    page_size: int = PAGE_SIZE

    @property
    def is_large(self) -> bool:
        return self.page_size == LARGE_PAGE_SIZE


def _encode(ppn: int, perms: Perm, large: bool = False) -> int:
    pte = _FLAG_PRESENT | ((ppn << _PPN_SHIFT) & _PPN_MASK)
    if perms.readable:
        pte |= _FLAG_READ
    if perms.writable:
        pte |= _FLAG_WRITE
    if large:
        pte |= _FLAG_LARGE
    return pte


def _decode_perms(pte: int) -> Perm:
    perms = Perm.NONE
    if pte & _FLAG_READ:
        perms |= Perm.R
    if pte & _FLAG_WRITE:
        perms |= Perm.W
    return perms


class PageTable:
    """Per-process page table; all nodes live in physical memory."""

    def __init__(
        self, phys: PhysicalMemory, allocator: FrameAllocator, asid: int
    ) -> None:
        self.phys = phys
        self.allocator = allocator
        self.asid = asid
        self.root_ppn = allocator.alloc()
        self._node_frames: List[int] = [self.root_ppn]
        self.version = 0  # bumped on every unmap/protect (shootdown epoch)

    # -- PTE access ------------------------------------------------------

    def _read_pte(self, node_ppn: int, index: int) -> int:
        return self.phys.read_u64((node_ppn << PAGE_SHIFT) + index * _PTE_SIZE)

    def _write_pte(self, node_ppn: int, index: int, pte: int) -> None:
        self.phys.write_u64((node_ppn << PAGE_SHIFT) + index * _PTE_SIZE, pte)

    @staticmethod
    def _indices(vpn: int) -> Tuple[int, int, int, int]:
        return (
            (vpn >> 27) & 0x1FF,
            (vpn >> 18) & 0x1FF,
            (vpn >> 9) & 0x1FF,
            vpn & 0x1FF,
        )

    # -- mapping -----------------------------------------------------------

    def map(self, vpn: int, ppn: int, perms: Perm, large: bool = False) -> None:
        """Install a VPN -> PPN mapping with the given permissions.

        Large mappings must be 2 MB-aligned on both sides and install a
        single level-2 entry covering 512 base pages.
        """
        if perms is Perm.NONE:
            raise MemoryError_("mapping with no permissions; use unmap instead")
        idx = self._indices(vpn)
        if large:
            if vpn % PAGES_PER_LARGE_PAGE or ppn % PAGES_PER_LARGE_PAGE:
                raise MemoryError_("large mappings must be 2 MB aligned")
            node = self._descend_to(idx, depth=2, create=True)
            self._write_pte(node, idx[2], _encode(ppn, perms, large=True))
        else:
            node = self._descend_to(idx, depth=3, create=True)
            existing = self._read_pte(node, idx[3])
            if existing & _FLAG_PRESENT:
                raise MemoryError_(f"vpn {vpn:#x} already mapped")
            self._write_pte(node, idx[3], _encode(ppn, perms))

    def unmap(self, vpn: int) -> Optional[Translation]:
        """Remove a mapping; returns the old translation (None if absent)."""
        old = self.translate_vpn(vpn)
        if old is None:
            return None
        idx = self._indices(old.vpn)
        if old.is_large:
            node = self._descend_to(idx, depth=2, create=False)
            self._write_pte(node, idx[2], 0)
        else:
            node = self._descend_to(idx, depth=3, create=False)
            self._write_pte(node, idx[3], 0)
        self.version += 1
        return old

    def protect(self, vpn: int, perms: Perm) -> Translation:
        """Change permissions of an existing mapping; returns the old one."""
        old = self.translate_vpn(vpn)
        if old is None:
            raise MemoryError_(f"vpn {vpn:#x} not mapped")
        idx = self._indices(old.vpn)
        if old.is_large:
            node = self._descend_to(idx, depth=2, create=False)
            self._write_pte(node, idx[2], _encode(old.ppn, perms, large=True))
        else:
            node = self._descend_to(idx, depth=3, create=False)
            self._write_pte(node, idx[3], _encode(old.ppn, perms))
        if not perms.allows(False) or (old.perms.writable and not perms.writable):
            self.version += 1  # downgrade: shootdown epoch advances
        return old

    def _descend_to(self, idx: Tuple[int, int, int, int], depth: int, create: bool) -> int:
        """Walk to the node at ``depth`` (0=root child ... 3=leaf node)."""
        node = self.root_ppn
        for level in range(depth):
            pte = self._read_pte(node, idx[level])
            if not pte & _FLAG_PRESENT:
                if not create:
                    raise MemoryError_("walk reached non-present interior entry")
                child = self.allocator.alloc()
                self._node_frames.append(child)
                # Interior entries carry RW so leaf entries fully control perms.
                self._write_pte(node, idx[level], _encode(child, Perm.RW))
                node = child
            else:
                if pte & _FLAG_LARGE:
                    raise MemoryError_("descending through a large-page entry")
                node = (pte & _PPN_MASK) >> _PPN_SHIFT
        return node

    # -- translation --------------------------------------------------------

    def translate_vpn(self, vpn: int) -> Optional[Translation]:
        """Walk the table for one VPN; None if unmapped."""
        translation, _footprint = self.walk(vpn)
        return translation

    def translate(self, vaddr: int) -> Optional[Translation]:
        return self.translate_vpn(vaddr >> PAGE_SHIFT)

    def walk(self, vpn: int) -> Tuple[Optional[Translation], List[int]]:
        """Full walk returning (translation, physical addresses touched).

        The footprint list is what a hardware walker would fetch — the ATS
        timing model charges one memory access per touched node.
        """
        idx = self._indices(vpn)
        node = self.root_ppn
        touched: List[int] = []
        for level in range(_LEVELS):
            pte_addr = (node << PAGE_SHIFT) + idx[level] * _PTE_SIZE
            touched.append(pte_addr)
            pte = self.phys.read_u64(pte_addr)
            if not pte & _FLAG_PRESENT:
                return None, touched
            ppn = (pte & _PPN_MASK) >> _PPN_SHIFT
            if level == 2 and pte & _FLAG_LARGE:
                base_vpn = vpn & ~(PAGES_PER_LARGE_PAGE - 1)
                return (
                    Translation(base_vpn, ppn, _decode_perms(pte), LARGE_PAGE_SIZE),
                    touched,
                )
            if level == _LEVELS - 1:
                return Translation(vpn, ppn, _decode_perms(pte)), touched
            node = ppn
        raise AssertionError("unreachable")

    # -- enumeration -----------------------------------------------------------

    def entries(self) -> Iterator[Translation]:
        """Iterate every present leaf mapping (4 KB and 2 MB)."""
        yield from self._walk_node(self.root_ppn, 0, 0)

    def _walk_node(self, node: int, level: int, vpn_prefix: int) -> Iterator[Translation]:
        shift = 9 * (_LEVELS - 1 - level)
        for i in range(_ENTRIES_PER_NODE):
            pte = self._read_pte(node, i)
            if not pte & _FLAG_PRESENT:
                continue
            vpn = vpn_prefix | (i << shift)
            ppn = (pte & _PPN_MASK) >> _PPN_SHIFT
            if level == 2 and pte & _FLAG_LARGE:
                yield Translation(vpn, ppn, _decode_perms(pte), LARGE_PAGE_SIZE)
            elif level == _LEVELS - 1:
                yield Translation(vpn, ppn, _decode_perms(pte))
            else:
                yield from self._walk_node(ppn, level + 1, vpn)

    def destroy(self) -> None:
        """Free every page-table node frame (mappings become invalid)."""
        for frame in self._node_frames:
            self.allocator.free(frame)
        self._node_frames = []
        self.version += 1
