"""Translation lookaside buffers with ASID tags and shootdown support.

The same structure models the accelerator's per-CU L1 TLBs (untrusted, 64
entries in Table 3) and the shared trusted L2 TLB at the IOMMU/ATS (512
entries). Shootdowns — invalidation of one VPN or of everything — are what
couple memory-mapping updates to Border Control actions (paper §3.2.4).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.permissions import Perm
from repro.sim.stats import StatDomain

__all__ = ["TLB", "TLBEntry"]


@dataclass(frozen=True)
class TLBEntry:
    """A cached translation (4 KB by default; ``pages`` > 1 for 2 MB)."""

    asid: int
    vpn: int
    ppn: int
    perms: Perm
    pages: int = 1  # 512 for a 2 MB large-page entry (§3.4.4)

    def covers(self, vpn: int) -> bool:
        return self.vpn <= vpn < self.vpn + self.pages

    def ppn_for(self, vpn: int) -> int:
        """PPN of a 4 KB page inside this (possibly large) mapping."""
        return self.ppn + (vpn - self.vpn)


class TLB:
    """Fully associative, LRU-replaced TLB with large-page entries."""

    def __init__(self, name: str, entries: int, stats: Optional[StatDomain] = None) -> None:
        if entries < 1:
            raise ValueError("TLB needs at least one entry")
        self.name = name
        self.capacity = entries
        # Key: (asid, base vpn, is_large). Large entries are base-aligned.
        self._entries: "OrderedDict[Tuple[int, int, bool], TLBEntry]" = OrderedDict()
        # Residency version for the vector tier's memoized snapshots
        # (repro.sim.batch): bumped whenever the set of cached
        # translations changes (recency-only touches do not count).
        self.version = 0
        self._vec_snap = None
        stats = stats or StatDomain(name)
        self._hits = stats.counter("hits")
        self._misses = stats.counter("misses")
        self._shootdowns = stats.counter("shootdowns")

    @staticmethod
    def _key(entry: TLBEntry) -> Tuple[int, int, bool]:
        return (entry.asid, entry.vpn, entry.pages > 1)

    def lookup(self, asid: int, vpn: int) -> Optional[TLBEntry]:
        """LRU-updating lookup; counts a hit or miss."""
        entries = self._entries
        key = (asid, vpn, False)
        entry = entries.get(key)
        if entry is None:
            # Large entries are 512-page aligned (2 MB mappings).
            key = (asid, vpn & ~0x1FF, True)
            entry = entries.get(key)
            if entry is None:
                self._misses.value += 1
                return None
        entries.move_to_end(key)
        self._hits.value += 1
        return entry

    def probe(self, asid: int, vpn: int) -> Optional[Tuple[Tuple[int, int, bool], TLBEntry]]:
        """Side-effect-free lookup for the batched-replay fast path.

        Returns ``(key, entry)`` on a hit, ``None`` on a miss — without
        touching recency or the hit/miss counters, so a caller that falls
        back to :meth:`lookup` after a miss does not double count.
        """
        key = (asid, vpn, False)
        entry = self._entries.get(key)
        if entry is None:
            key = (asid, vpn & ~0x1FF, True)
            entry = self._entries.get(key)
            if entry is None:
                return None
        return key, entry

    def commit_hit(self, key: Tuple[int, int, bool]) -> None:
        """Commit the hit-path side effects of :meth:`lookup` (recency
        touch + hit counter) for a key returned by :meth:`probe`."""
        self._entries.move_to_end(key)
        self._hits.value += 1

    def insert(self, entry: TLBEntry) -> None:
        key = self._key(entry)
        if key not in self._entries and len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[key] = entry
        self._entries.move_to_end(key)
        self.version += 1

    # -- shootdown ---------------------------------------------------------

    def invalidate(self, asid: int, vpn: int) -> bool:
        """Invalidate the translation covering ``vpn``; True if present."""
        self._shootdowns.inc()
        hit = self._entries.pop((asid, vpn, False), None) is not None
        hit |= self._entries.pop((asid, vpn & ~0x1FF, True), None) is not None
        if hit:
            self.version += 1
        return hit

    def invalidate_asid(self, asid: int) -> int:
        """Invalidate every translation of one address space."""
        self._shootdowns.inc()
        doomed = [key for key in self._entries if key[0] == asid]
        for key in doomed:
            del self._entries[key]
        if doomed:
            self.version += 1
        return len(doomed)

    def invalidate_all(self) -> int:
        """Full TLB flush."""
        self._shootdowns.inc()
        count = len(self._entries)
        self._entries.clear()
        self.version += 1
        return count

    def reset(self) -> None:
        """Warm-reuse reset: drop every entry without counting a shootdown
        (counters are zeroed separately through the owning StatDomain)."""
        self._entries.clear()
        self.version += 1
        self._vec_snap = None  # warm reuse must carry no batch state

    # -- introspection ------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    def contains(self, asid: int, vpn: int) -> bool:
        return (asid, vpn, False) in self._entries or (
            asid,
            vpn & ~0x1FF,
            True,
        ) in self._entries

    def __repr__(self) -> str:  # pragma: no cover
        return f"TLB({self.name}, {len(self._entries)}/{self.capacity})"
