"""Physical frame allocator.

A simple first-fit allocator over 4 KB frames with support for contiguous
allocations (page-table nodes, Protection Tables — which the OS must carve
out of physical memory as a flat region, paper §3.1.1) and explicit
reservations (e.g. frame 0 is kept unmapped to catch null physical
pointers).

The free pool is represented as the complement of ``_used`` within the
allocator's window rather than as a materialized set of every free PPN:
a frame is free iff it lies in ``[base_frame, num_frames)`` and is not in
``_used``. Construction and :meth:`reset` are therefore O(reserved
frames) instead of O(window size) — the window covers hundreds of
thousands of frames, and every scan the allocator performs already
iterates ascending ``range``\\ s doing membership tests, so the two
representations produce bit-identical allocation orders.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.errors import MemoryError_
from repro.mem.address import PAGE_SHIFT, PAGE_SIZE
from repro.mem.phys_memory import PhysicalMemory

__all__ = ["FrameAllocator", "OutOfFramesError"]


class OutOfFramesError(MemoryError_):
    """Physical memory is exhausted."""


class FrameAllocator:
    """Tracks free/used 4 KB frames of a :class:`PhysicalMemory`.

    ``base_frame``/``frame_count`` confine the allocator to a window of
    physical memory — how a VMM hands each guest its partition while
    keeping Protection Tables in VMM-private frames (paper §3.4.2).
    """

    def __init__(
        self,
        phys: PhysicalMemory,
        reserve_low_frames: int = 1,
        base_frame: int = 0,
        frame_count: Optional[int] = None,
    ) -> None:
        self.phys = phys
        end_frame = phys.num_frames if frame_count is None else base_frame + frame_count
        if not (0 <= base_frame < end_frame <= phys.num_frames):
            raise MemoryError_(
                f"allocator window [{base_frame}, {end_frame}) outside memory"
            )
        self.base_frame = base_frame
        self.num_frames = end_frame  # exclusive upper bound of the window
        first_free = max(base_frame, reserve_low_frames)
        self._initial_used_end = first_free
        self._used: Set[int] = set(range(base_frame, first_free))
        self._next_hint = first_free

    # -- queries ---------------------------------------------------------

    @property
    def free_frames(self) -> int:
        return (self.num_frames - self.base_frame) - len(self._used)

    @property
    def used_frames(self) -> int:
        return len(self._used)

    def is_allocated(self, ppn: int) -> bool:
        return ppn in self._used

    def is_free(self, ppn: int) -> bool:
        return self.base_frame <= ppn < self.num_frames and ppn not in self._used

    # -- allocation --------------------------------------------------------

    def alloc(self, zero: bool = True) -> int:
        """Allocate one frame; returns its PPN."""
        if self.free_frames == 0:
            raise OutOfFramesError("no free physical frames")
        # Prefer an ascending scan from the hint for locality/determinism.
        ppn = self._scan_from(self._next_hint)
        self._used.add(ppn)
        self._next_hint = ppn + 1
        if zero:
            self.phys.zero_range(ppn << PAGE_SHIFT, PAGE_SIZE)
        return ppn

    def alloc_contiguous(self, count: int, zero: bool = True, align: int = 1) -> int:
        """Allocate ``count`` physically contiguous frames; returns base PPN.

        ``align`` constrains the base PPN to a multiple (e.g. 512 for a
        2 MB large-page frame, which hardware requires to be 2 MB-aligned
        physically as well as virtually).
        """
        if count <= 0:
            raise ValueError("count must be positive")
        if align <= 0:
            raise ValueError("alignment must be positive")
        used = self._used
        run = 0
        for ppn in range(self.base_frame, self.num_frames):
            if ppn not in used:
                run += 1
                if run >= count:
                    base = ppn - count + 1
                    if base % align:
                        continue  # keep extending until an aligned base fits
                    used.update(range(base, base + count))
                    if zero:
                        self.phys.zero_range(base << PAGE_SHIFT, count * PAGE_SIZE)
                    return base
            else:
                run = 0
        raise OutOfFramesError(f"no contiguous run of {count} frames (align={align})")

    def free(self, ppn: int) -> None:
        """Return a frame to the free pool."""
        if ppn not in self._used:
            raise MemoryError_(f"double free of frame {ppn:#x}")
        self._used.discard(ppn)
        if ppn < self._next_hint:
            self._next_hint = ppn

    def free_contiguous(self, base_ppn: int, count: int) -> None:
        for ppn in range(base_ppn, base_ppn + count):
            self.free(ppn)

    def _scan_from(self, start: int) -> int:
        used = self._used
        lo = self.base_frame
        hi = self.num_frames
        if start < lo:
            start = lo
        for ppn in range(start, hi):
            if ppn not in used:
                return ppn
        for ppn in range(lo, min(start, hi)):
            if ppn not in used:
                return ppn
        raise OutOfFramesError("no free physical frames")

    def snapshot_used(self) -> List[int]:
        return sorted(self._used)

    # -- warm reuse --------------------------------------------------------

    def reset(self) -> None:
        """Restore the post-construction state: every non-reserved frame
        in the window is free again. O(reserved frames)."""
        self._used.clear()
        self._used.update(range(self.base_frame, self._initial_used_end))
        self._next_hint = self._initial_used_end
