"""CPU-side memory management unit.

The CPU is trusted hardware: its MMU walks the process page table itself
and enforces permissions before any access reaches memory — the 40-year-old
protection baseline Border Control extends to accelerators (paper §2.1).
The MMU here is functional; CPU timing is not on the evaluation's critical
path (the CPU idles during GPU kernels, §5.1).
"""

from __future__ import annotations

from typing import Optional

from repro.core.permissions import Perm
from repro.errors import PageFault, ProtectionFault
from repro.mem.address import PAGE_SHIFT, PAGE_SIZE, page_offset
from repro.mem.phys_memory import PhysicalMemory
from repro.vm.page_table import PageTable, Translation
from repro.vm.tlb import TLB

__all__ = ["MMU"]


class MMU:
    """Translates and permission-checks CPU accesses for one process."""

    def __init__(
        self,
        phys: PhysicalMemory,
        tlb_entries: int = 64,
    ) -> None:
        self.phys = phys
        self.tlb = TLB("cpu-tlb", tlb_entries)
        self._page_table: Optional[PageTable] = None

    def set_page_table(self, page_table: Optional[PageTable]) -> None:
        """Context switch: point at a new address space, flush the TLB."""
        self._page_table = page_table
        self.tlb.invalidate_all()

    @property
    def page_table(self) -> PageTable:
        if self._page_table is None:
            raise ProtectionFault(0, False)
        return self._page_table

    # -- translation --------------------------------------------------------

    def translate(self, vaddr: int, write: bool) -> int:
        """VA -> PA with permission checks; raises PageFault/ProtectionFault."""
        table = self.page_table
        vpn = vaddr >> PAGE_SHIFT
        entry = self.tlb.lookup(table.asid, vpn)
        if entry is None:
            translation = table.translate_vpn(vpn)
            if translation is None:
                raise PageFault(vaddr, write)
            entry = self._cache(vpn, translation)
        if not entry.perms.allows(write):
            raise ProtectionFault(vaddr, write)
        return (entry.ppn << PAGE_SHIFT) | page_offset(vaddr)

    def _cache(self, vpn: int, translation: Translation):
        """Insert a (possibly large-page) translation at 4 KB granularity."""
        offset = vpn - translation.vpn
        from repro.vm.tlb import TLBEntry

        entry = TLBEntry(
            asid=self.page_table.asid,
            vpn=vpn,
            ppn=translation.ppn + offset,
            perms=translation.perms,
        )
        self.tlb.insert(entry)
        return entry

    # -- data access ------------------------------------------------------

    def read(self, vaddr: int, length: int) -> bytes:
        """Virtual read (may span pages)."""
        out = bytearray()
        addr = vaddr
        remaining = length
        while remaining > 0:
            chunk = min(remaining, PAGE_SIZE - page_offset(addr))
            paddr = self.translate(addr, write=False)
            out += self.phys.read(paddr, chunk)
            addr += chunk
            remaining -= chunk
        return bytes(out)

    def write(self, vaddr: int, data: bytes) -> None:
        """Virtual write (may span pages)."""
        addr = vaddr
        pos = 0
        while pos < len(data):
            chunk = min(len(data) - pos, PAGE_SIZE - page_offset(addr))
            paddr = self.translate(addr, write=True)
            self.phys.write(paddr, data[pos : pos + chunk])
            addr += chunk
            pos += chunk

    def read_u64(self, vaddr: int) -> int:
        return int.from_bytes(self.read(vaddr, 8), "little")

    def write_u64(self, vaddr: int, value: int) -> None:
        self.write(vaddr, (value & (2**64 - 1)).to_bytes(8, "little"))

    def access_allowed(self, vaddr: int, write: bool) -> bool:
        """Non-faulting probe of whether an access would be permitted."""
        try:
            self.translate(vaddr, write)
            return True
        except (PageFault, ProtectionFault):
            return False
