"""Virtual-memory substrate: page tables, frame allocation, TLBs, MMU.

The page table is a real 4-level radix tree whose entries live inside the
simulated :class:`~repro.mem.phys_memory.PhysicalMemory`, so page walks
performed by the Address Translation Service read the same bytes the OS
wrote — exactly the structure Border Control piggybacks on (paper §3).
"""

from repro.vm.frame_allocator import FrameAllocator, OutOfFramesError
from repro.vm.page_table import PageTable, Translation
from repro.vm.tlb import TLB, TLBEntry
from repro.vm.mmu import MMU

__all__ = [
    "FrameAllocator",
    "MMU",
    "OutOfFramesError",
    "PageTable",
    "TLB",
    "TLBEntry",
    "Translation",
]
