"""The Border Control Cache (paper §3.1.2).

A small, fully associative, LRU cache of Protection Table blocks, tagged
by physical page number group. The default configuration matches Table 3:
64 entries of 128 bytes (512 pages per entry) for 8 KB total and a 128 MB
reach. The cache is explicitly managed by Border Control hardware and
needs no coherence (§3.1.2): the engine write-throughs every permission
change to the Protection Table and invalidates the BCC on downgrades.

The entry granularity is configurable (1/2/32/512 pages per entry) to
reproduce the sensitivity analysis of Fig. 6, where total capacity in
bytes — including a 36-bit tag per entry — is the budget being swept.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.core.permissions import Perm
from repro.core.protection_table import ProtectionTable
from repro.errors import ConfigurationError
from repro.sim.stats import StatDomain

__all__ = ["BCCConfig", "BorderControlCache"]

TAG_BITS = 36  # per-entry tag size used in the paper's Fig. 6 sweep


@dataclass(frozen=True)
class BCCConfig:
    """Geometry of a Border Control Cache."""

    num_entries: int = 64
    pages_per_entry: int = 512  # one 128 B table block

    def __post_init__(self) -> None:
        if self.num_entries < 1:
            raise ConfigurationError("BCC needs at least one entry")
        if self.pages_per_entry < 1:
            raise ConfigurationError("BCC entries must cover at least one page")

    @property
    def entry_bits(self) -> int:
        """Storage per entry: 2 permission bits per page plus the tag."""
        return 2 * self.pages_per_entry + TAG_BITS

    @property
    def size_bits(self) -> int:
        return self.num_entries * self.entry_bits

    @property
    def size_bytes(self) -> float:
        return self.size_bits / 8

    @property
    def reach_bytes(self) -> int:
        """Bytes of physical memory whose permissions fit in the cache."""
        return self.num_entries * self.pages_per_entry * 4096

    @classmethod
    def from_budget(cls, budget_bytes: float, pages_per_entry: int) -> "BCCConfig":
        """Largest whole-entry configuration within a byte budget (Fig. 6)."""
        entry_bits = 2 * pages_per_entry + TAG_BITS
        entries = int(budget_bytes * 8 // entry_bits)
        if entries < 1:
            raise ConfigurationError(
                f"budget {budget_bytes} B holds no {pages_per_entry}-page entry"
            )
        return cls(num_entries=entries, pages_per_entry=pages_per_entry)


#: Perm is an enum, so ``Perm(x)`` always returns the same four singletons;
#: indexing this table skips the enum-constructor call on the hot path.
_PERM_TABLE = (Perm(0), Perm(1), Perm(2), Perm(3))


class BorderControlCache:
    """Functional model of the BCC, backed by a Protection Table."""

    def __init__(self, config: BCCConfig, stats: Optional[StatDomain] = None) -> None:
        self.config = config
        # group tag -> packed 2-bit permission fields for the group's pages
        self._entries: "OrderedDict[int, int]" = OrderedDict()
        # One-entry MRU line in front of the LRU structure: the last group
        # touched by lookup/fill/insert. Because "last touched" is exactly
        # the OrderedDict's end position, a lookup that hits the MRU line
        # can skip the dict get and the (no-op) move_to_end entirely while
        # leaving identical cache state. ``-1`` means invalid.
        self._mru_group = -1
        self._mru_packed = 0
        # Residency/content version for the vector tier's telemetry
        # snapshots (repro.sim.batch): bumped on fills, invalidations and
        # permission rewrites.
        self.version = 0
        self._vec_snap = None
        ppe = config.pages_per_entry
        self._ppe = ppe
        if ppe & (ppe - 1) == 0:
            self._group_shift: Optional[int] = ppe.bit_length() - 1
            self._slot_mask = ppe - 1
        else:
            self._group_shift = None
            self._slot_mask = 0
        stats = stats or StatDomain("bcc")
        self._hits = stats.counter("hits")
        self._misses = stats.counter("misses")
        self._fills = stats.counter("fills")
        self._writethroughs = stats.counter("writethroughs")
        self._invalidations = stats.counter("invalidations")

    # -- addressing ------------------------------------------------------------

    def group_of(self, ppn: int) -> int:
        if self._group_shift is not None:
            return ppn >> self._group_shift
        return ppn // self._ppe

    def _slot_of(self, ppn: int) -> int:
        if self._group_shift is not None:
            return ppn & self._slot_mask
        return ppn % self._ppe

    @staticmethod
    def _field(packed: int, slot: int) -> Perm:
        return _PERM_TABLE[(packed >> (2 * slot)) & 0x3]

    # -- probes (no fill) -----------------------------------------------------------

    def probe(self, ppn: int) -> Tuple[bool, Perm]:
        """Tag check without side effects: (hit, perms)."""
        packed = self._entries.get(self.group_of(ppn))
        if packed is None:
            return False, Perm.NONE
        return True, self._field(packed, self._slot_of(ppn))

    # -- the hardware operations ------------------------------------------------------

    def lookup(self, ppn: int, table: ProtectionTable) -> Tuple[bool, Perm]:
        """Check path (Fig. 3c): returns (was_hit, perms), filling on miss.

        On a miss the covering Protection Table bits are fetched and a new
        entry allocated (LRU victim dropped — entries are never dirty,
        because every change is written through).
        """
        shift = self._group_shift
        if shift is not None:
            group = ppn >> shift
            slot = ppn & self._slot_mask
        else:
            group = ppn // self._ppe
            slot = ppn % self._ppe
        if group == self._mru_group:
            # MRU hit: the group is already at the recency end, so the
            # move_to_end would be a no-op — state is bit-identical.
            self._hits.value += 1
            return True, _PERM_TABLE[(self._mru_packed >> (2 * slot)) & 0x3]
        packed = self._entries.get(group)
        if packed is not None:
            self._entries.move_to_end(group)
            self._hits.value += 1
            self._mru_group = group
            self._mru_packed = packed
            return True, _PERM_TABLE[(packed >> (2 * slot)) & 0x3]
        self._misses.value += 1
        packed = self._fill(group, table)
        return False, _PERM_TABLE[(packed >> (2 * slot)) & 0x3]

    def insert_permission(
        self, ppn: int, perms: Perm, table: ProtectionTable
    ) -> bool:
        """Insertion path (Fig. 3b): update this page's field, write through.

        Returns True if the Protection Table changed (i.e. the translation
        introduced new permission bits). Grants are monotonic ORs — the
        multiprocess union rule (§3.3) falls out of this for free.
        """
        changed = table.grant(ppn, perms)
        if changed:
            self._writethroughs.inc()
        group = self.group_of(ppn)
        packed = self._entries.get(group)
        if packed is None:
            self._misses.inc()
            self._fill(group, table)
        else:
            slot = self._slot_of(ppn)
            old = self._field(packed, slot)
            new = old.union(perms)
            if new != old:
                packed &= ~(0x3 << (2 * slot))
                packed |= int(new) << (2 * slot)
                self._entries[group] = packed
            self._entries.move_to_end(group)
            self._mru_group = group
            self._mru_packed = packed
            self._hits.inc()
        return changed

    def _fill(self, group: int, table: ProtectionTable) -> int:
        self._fills.value += 1
        self.version += 1
        ppe = self.config.pages_per_entry
        packed = table.read_bits(group * ppe, ppe)
        if group not in self._entries and len(self._entries) >= self.config.num_entries:
            victim, _bits = self._entries.popitem(last=False)
            if victim == self._mru_group:
                self._mru_group = -1
        self._entries[group] = packed
        self._entries.move_to_end(group)
        self._mru_group = group
        self._mru_packed = packed
        return packed

    # -- downgrades -----------------------------------------------------------------

    def invalidate_page(self, ppn: int, table: ProtectionTable) -> None:
        """Selective downgrade: refresh the covering entry from the table.

        The caller must already have updated the Protection Table; the BCC
        simply refetches so it never caches stale (more permissive) bits.
        """
        group = self.group_of(ppn)
        if group in self._entries:
            ppe = self.config.pages_per_entry
            self._entries[group] = table.read_bits(group * ppe, ppe)
            self.version += 1
            if group == self._mru_group:
                self._mru_group = -1  # drop the stale MRU copy
            self._invalidations.inc()

    def invalidate_all(self) -> None:
        """Full invalidation (whole-table zeroing path, §3.2.4-5)."""
        self._invalidations.inc()
        self._entries.clear()
        self._mru_group = -1
        self.version += 1
        self._vec_snap = None

    # -- introspection ---------------------------------------------------------------

    def cached_permissions(self) -> "Iterator[Tuple[int, Perm]]":
        """Yield ``(ppn, perms)`` for every page of every cached entry.

        Zero-permission fields are yielded too: a verifier must be able to
        prove the cache never holds bits *more* permissive than the
        Protection Table, which requires seeing exactly what is cached.
        Pure observation — no LRU movement, no fills, no counters.
        """
        ppe = self._ppe
        for group, packed in self._entries.items():
            base = group * ppe
            for slot in range(ppe):
                yield base + slot, _PERM_TABLE[(packed >> (2 * slot)) & 0x3]

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    def miss_ratio(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover
        cfg = self.config
        return (
            f"BorderControlCache({cfg.num_entries} x {cfg.pages_per_entry} pages, "
            f"~{cfg.size_bytes / 1024:.1f} KiB, reach {cfg.reach_bytes / 2**20:g} MiB)"
        )
