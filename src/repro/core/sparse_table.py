"""Sparse (demand-allocated) Protection Table — the paper's §3.1.1 aside.

    "We expect the Protection Table will often be sparsely populated and
    an alternate structure could be more spatially efficient (e.g., a
    tree), or it could be stored in system virtual memory and allocated
    upon demand. However, the flat layout has small enough overhead that
    we do not evaluate alternate layouts."

This module evaluates that alternate layout. The sparse table is a
two-level radix: a directory of chunk pointers (one 64-bit pointer per
*chunk* of pages) plus 4 KB permission chunks allocated from physical
memory on first grant. A chunk covers 16384 pages (4 KB x 4 pages/byte),
i.e. 64 MB of physical memory; an accelerator touching 100 MB of a 16 GB
machine needs two or three chunks instead of a 1 MB flat table.

Trade-offs vs. the flat table (measured in
``benchmarks/bench_ablation_sparse_table.py``):

* storage scales with the accelerator's footprint, not physical memory;
* lookups may need two memory accesses (directory, then chunk) instead
  of one, and the single-access guarantee the flat layout gives the
  checking hardware (§3.1.1) is lost;
* unpopulated chunks deny by construction, preserving the lazy-denial
  invariant.

The class is interface-compatible with
:class:`~repro.core.protection_table.ProtectionTable` (``get``/``set``/
``grant``/``revoke``/``read_bits``/``zero``/``covers``), so the BCC and
Border Control engine can run on either.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.core.permissions import Perm
from repro.errors import ConfigurationError
from repro.mem.address import PAGE_SHIFT, PAGE_SIZE
from repro.mem.phys_memory import PhysicalMemory
from repro.vm.frame_allocator import FrameAllocator

__all__ = ["SparseProtectionTable"]

PAGES_PER_BYTE = 4
CHUNK_BYTES = PAGE_SIZE  # one frame per chunk
PAGES_PER_CHUNK = CHUNK_BYTES * PAGES_PER_BYTE  # 16384 pages = 64 MB reach


class SparseProtectionTable:
    """Demand-allocated Protection Table (directory + 4 KB chunks)."""

    def __init__(
        self,
        phys: PhysicalMemory,
        allocator: FrameAllocator,
        covered_pages: Optional[int] = None,
    ) -> None:
        self.phys = phys
        self.allocator = allocator
        self.covered_pages = covered_pages if covered_pages is not None else phys.num_frames
        if self.covered_pages <= 0:
            raise ConfigurationError("table must cover at least one page")
        num_chunks = (self.covered_pages + PAGES_PER_CHUNK - 1) // PAGES_PER_CHUNK
        # The directory itself lives in physical memory: one u64 per chunk.
        dir_bytes = num_chunks * 8
        dir_frames = (dir_bytes + PAGE_SIZE - 1) // PAGE_SIZE
        self._dir_base_ppn = allocator.alloc_contiguous(dir_frames, zero=True)
        self._dir_frames = dir_frames
        self.num_chunks = num_chunks
        # ppn of each chunk frame, cached OS-side (mirrors the directory).
        self._chunks: Dict[int, int] = {}

    # -- helpers -----------------------------------------------------------

    @property
    def base_paddr(self) -> int:
        """Directory base (what a base register would hold)."""
        return self._dir_base_ppn << PAGE_SHIFT

    def covers(self, ppn: int) -> bool:
        return 0 <= ppn < self.covered_pages

    def _dir_slot_addr(self, chunk: int) -> int:
        return self.base_paddr + chunk * 8

    def _chunk_ppn(self, chunk: int) -> Optional[int]:
        cached = self._chunks.get(chunk)
        if cached is not None:
            return cached
        pointer = self.phys.read_u64(self._dir_slot_addr(chunk))
        if pointer == 0:
            return None
        ppn = pointer >> PAGE_SHIFT
        self._chunks[chunk] = ppn
        return ppn

    def _ensure_chunk(self, chunk: int) -> int:
        ppn = self._chunk_ppn(chunk)
        if ppn is None:
            ppn = self.allocator.alloc(zero=True)
            self._chunks[chunk] = ppn
            # Mark the pointer present (low bit) like a PTE would.
            self.phys.write_u64(self._dir_slot_addr(chunk), (ppn << PAGE_SHIFT) | 1)
        return ppn

    @staticmethod
    def _field_location(ppn: int) -> Tuple[int, int, int]:
        chunk, within = divmod(ppn, PAGES_PER_CHUNK)
        return chunk, within >> 2, 2 * (within & 3)

    # -- the ProtectionTable interface ---------------------------------------

    def get(self, ppn: int) -> Perm:
        if not self.covers(ppn):
            return Perm.NONE
        chunk, byte_off, shift = self._field_location(ppn)
        chunk_ppn = self._chunk_ppn(chunk)
        if chunk_ppn is None:
            return Perm.NONE  # unallocated chunk: deny by construction
        byte = self.phys.read((chunk_ppn << PAGE_SHIFT) + byte_off, 1)[0]
        return Perm((byte >> shift) & 0x3)

    def set(self, ppn: int, perms: Perm) -> None:
        if not self.covers(ppn):
            raise ConfigurationError(f"ppn {ppn:#x} outside table bounds")
        chunk, byte_off, shift = self._field_location(ppn)
        if perms is Perm.NONE and self._chunk_ppn(chunk) is None:
            return  # clearing an unallocated chunk allocates nothing
        chunk_ppn = self._ensure_chunk(chunk)
        addr = (chunk_ppn << PAGE_SHIFT) + byte_off
        byte = self.phys.read(addr, 1)[0]
        byte = (byte & ~(0x3 << shift)) | (int(perms) << shift)
        self.phys.write(addr, bytes([byte]))

    def grant(self, ppn: int, perms: Perm) -> bool:
        old = self.get(ppn)
        new = old.union(perms)
        if new != old:
            self.set(ppn, new)
            return True
        return False

    def revoke(self, ppn: int) -> None:
        self.set(ppn, Perm.NONE)

    def read_bits(self, start_ppn: int, count: int) -> int:
        """Packed 2-bit fields for ``count`` consecutive pages.

        Spans chunk boundaries; unallocated chunks contribute zeros.
        """
        if count <= 0:
            return 0
        packed = 0
        produced = 0
        ppn = start_ppn
        while produced < count:
            chunk, within = divmod(ppn, PAGES_PER_CHUNK)
            take = min(count - produced, PAGES_PER_CHUNK - within)
            chunk_ppn = self._chunk_ppn(chunk)
            if chunk_ppn is not None:
                first_byte = within >> 2
                last_byte = (within + take - 1) >> 2
                raw = self.phys.read(
                    (chunk_ppn << PAGE_SHIFT) + first_byte,
                    last_byte - first_byte + 1,
                )
                bits = int.from_bytes(raw, "little") >> (2 * (within & 3))
                bits &= (1 << (2 * take)) - 1
                packed |= bits << (2 * produced)
            produced += take
            ppn += take
        return packed

    def zero(self) -> None:
        """Revoke everything, releasing the demand-allocated chunks."""
        for chunk, ppn in list(self._chunks.items()):
            self.allocator.free(ppn)
            self.phys.write_u64(self._dir_slot_addr(chunk), 0)
        self._chunks.clear()

    def populated(self) -> Iterator[Tuple[int, Perm]]:
        for chunk in sorted(self._chunks):
            chunk_ppn = self._chunks[chunk]
            base = chunk * PAGES_PER_CHUNK
            raw = self.phys.read(chunk_ppn << PAGE_SHIFT, CHUNK_BYTES)
            for byte_index, byte in enumerate(raw):
                if not byte:
                    continue
                for sub in range(4):
                    field = (byte >> (2 * sub)) & 0x3
                    if field:
                        ppn = base + byte_index * 4 + sub
                        if self.covers(ppn):
                            yield ppn, Perm(field)

    # -- storage accounting ----------------------------------------------------

    @property
    def size_bytes(self) -> int:
        """Bytes of physical memory currently consumed (directory + chunks)."""
        return self._dir_frames * PAGE_SIZE + len(self._chunks) * CHUNK_BYTES

    def storage_overhead_fraction(self) -> float:
        return self.size_bytes / (self.covered_pages * PAGE_SIZE)

    def deallocate(self, allocator: FrameAllocator) -> None:
        self.zero()
        allocator.free_contiguous(self._dir_base_ppn, self._dir_frames)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SparseProtectionTable(chunks={len(self._chunks)}/{self.num_chunks}, "
            f"{self.size_bytes / 1024:g} KiB resident)"
        )
