"""The Border Control engine (paper §3.2, Fig. 3).

One :class:`BorderControl` instance guards one accelerator. It owns the
accelerator's Protection Table and Border Control Cache and implements the
five events of Fig. 3:

(a) **process initialization** — allocate and zero the table on first use,
    program base/bounds, bump the use count;
(b) **Protection Table insertion** — on every ATS translation, OR the
    translation's permissions into the table (write-through) and the BCC;
(c) **accelerator memory request** — bounds-check, then look up the PPN in
    the BCC (filling from the table on a miss) and verify the requested
    permission; block and notify the OS on failure;
(d) **memory-mapping update** — on permission downgrades, after the
    accelerator's caches are flushed, either zero the whole table and
    invalidate the BCC or selectively revoke the affected pages;
(e) **process completion** — invalidate everything, zero the table, and
    release it once no process is using the accelerator.

The engine is functional; the timing wrapper that charges BCC/Protection
Table latencies lives in :mod:`repro.accel.border_port`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set

from repro.core.bcc import BCCConfig, BorderControlCache
from repro.core.permissions import Perm
from repro.core.protection_table import ProtectionTable
from repro.errors import BorderControlViolation, ConfigurationError
from repro.mem.address import PAGE_SHIFT
from repro.mem.phys_memory import PhysicalMemory
from repro.sim.stats import StatDomain
from repro.vm.frame_allocator import FrameAllocator

__all__ = ["AccessDecision", "BorderControl", "ViolationRecord"]


@dataclass(frozen=True)
class AccessDecision:
    """Outcome of one border check (Fig. 3c)."""

    allowed: bool
    perms: Perm
    bcc_hit: bool  # True if no Protection Table access was needed
    out_of_bounds: bool = False


@dataclass(frozen=True)
class ViolationRecord:
    """What the OS learns when a request is blocked (§3.2.3)."""

    accel_id: str
    paddr: int
    write: bool
    out_of_bounds: bool
    perms_held: Perm

    def describe(self) -> str:
        kind = "write" if self.write else "read"
        why = (
            "address beyond protection-table bounds"
            if self.out_of_bounds
            else f"page permissions {self.perms_held.describe()}"
        )
        return f"{self.accel_id}: blocked {kind} at {self.paddr:#x} ({why})"


ViolationHandler = Callable[[ViolationRecord], None]

#: Observation hook signature: (paddr, write, decision). Fired on every
#: border check — allowed or not — so a lockstep verifier can compare the
#: engine's decision stream against an abstract reference monitor.
DecisionHandler = Callable[[int, bool, AccessDecision], None]

#: Interned :class:`AccessDecision` instances. The type is frozen and has
#: only a handful of distinct values (allowed x perms x bcc_hit x oob), so
#: the hot check path reuses singletons instead of allocating a dataclass
#: per memory access.
_DECISION_CACHE: dict = {}


def _decision(
    allowed: bool, perms: Perm, bcc_hit: bool, out_of_bounds: bool = False
) -> AccessDecision:
    key = (allowed, int(perms), bcc_hit, out_of_bounds)
    cached = _DECISION_CACHE.get(key)
    if cached is None:
        cached = AccessDecision(allowed, perms, bcc_hit, out_of_bounds)
        _DECISION_CACHE[key] = cached
    return cached


class BorderControl:
    """Sandboxes one accelerator's memory traffic."""

    def __init__(
        self,
        accel_id: str,
        phys: PhysicalMemory,
        allocator: FrameAllocator,
        bcc_config: Optional[BCCConfig] = BCCConfig(),
        stats: Optional[StatDomain] = None,
        strict: bool = False,
        table_kind: str = "flat",
    ) -> None:
        if table_kind not in ("flat", "sparse"):
            raise ConfigurationError(
                f"table_kind must be 'flat' or 'sparse', got {table_kind!r}"
            )
        self.accel_id = accel_id
        self.phys = phys
        self.allocator = allocator
        self.bcc_config = bcc_config
        self.strict = strict
        # "flat" is the paper's evaluated layout (single-access lookups);
        # "sparse" is the §3.1.1 demand-allocated alternative.
        self.table_kind = table_kind
        self.stats = stats or StatDomain(f"bc[{accel_id}]")
        self.table: Optional[ProtectionTable] = None
        self.bcc: Optional[BorderControlCache] = None
        self.use_count = 0
        self.asids: Set[int] = set()
        # Epoch fence (recovery): the current attach epoch. Every attach
        # and every epoch-fenced reset advances it; requests stamped with
        # an older epoch are stale replays from a pre-reset device and
        # are rejected without touching the Protection Table.
        self.epoch = 0
        self.violations: List[ViolationRecord] = []
        self._handlers: List[ViolationHandler] = []
        # Decision observers (repro.verify): empty in production, so the
        # hot check path pays one falsy test and nothing else.
        self._decision_hooks: List[DecisionHandler] = []
        self._checks = self.stats.counter("checks")
        self._read_checks = self.stats.counter("read_checks")
        self._write_checks = self.stats.counter("write_checks")
        self._violation_count = self.stats.counter("violations")
        self._pt_accesses = self.stats.counter("pt_accesses")
        self._insertions = self.stats.counter("insertions")
        self._downgrades = self.stats.counter("downgrades")
        self._stale_rejections = self.stats.counter("stale_epoch_rejections")

    # -- OS interface ------------------------------------------------------

    def on_violation(self, handler: ViolationHandler) -> None:
        """Register an OS notification handler (kill process / disable accel)."""
        self._handlers.append(handler)

    def on_decision(self, handler: DecisionHandler) -> None:
        """Observe every allow/deny decision this engine makes.

        The hook fires synchronously inside :meth:`check` with the same
        ``(paddr, write, decision)`` the caller sees; it charges no
        simulated time, so a lockstep verifier can shadow the engine
        without perturbing any experiment's timing.
        """
        self._decision_hooks.append(handler)

    @property
    def active(self) -> bool:
        return self.table is not None

    @property
    def has_bcc(self) -> bool:
        """Whether this engine is configured with a Border Control Cache
        (the cache itself exists only while a process is active)."""
        return self.bcc_config is not None

    # -- epoch fence (recovery subsystem) -----------------------------------

    def advance_epoch(self) -> int:
        """Move to a new attach epoch; returns it. Called on every attach
        and on every epoch-fenced accelerator reset — *before* the device
        is touched, so anything the old device replays is already stale."""
        self.epoch += 1
        return self.epoch

    def admit_epoch(self, epoch: Optional[int]) -> bool:
        """Is traffic stamped ``epoch`` current? A single register compare
        in hardware. ``None`` (untagged traffic, non-recovery configs) is
        always admitted; an older epoch is a stale replay and is rejected
        and counted."""
        if epoch is None or epoch >= self.epoch:
            return True
        self._stale_rejections.inc()
        return False

    @property
    def stale_epoch_rejections(self) -> int:
        return self._stale_rejections.value

    # -- (a) process initialization ------------------------------------------

    def process_init(self, asid: int) -> bool:
        """A process starts using the accelerator. Returns True if a fresh
        Protection Table was allocated (the accelerator was idle)."""
        if asid in self.asids:
            raise ConfigurationError(
                f"asid {asid} already running on accelerator {self.accel_id}"
            )
        self.asids.add(asid)
        self.use_count += 1
        if self.table is not None:
            return False
        if self.table_kind == "sparse":
            from repro.core.sparse_table import SparseProtectionTable

            self.table = SparseProtectionTable(self.phys, self.allocator)
        else:
            self.table = ProtectionTable.allocate(self.phys, self.allocator)
        if self.bcc_config is not None:
            self.bcc = BorderControlCache(self.bcc_config, self.stats.child("bcc"))
        return True

    # -- (b) Protection Table insertion -----------------------------------------

    def insert_translation(self, ppn: int, perms: Perm, page_count: int = 1) -> int:
        """Record permissions for a completed ATS translation.

        ``page_count`` > 1 handles large pages (§3.4.4): a 2 MB translation
        updates 512 consecutive 4 KB entries. Returns how many table fields
        actually changed (0 when the BCC/table already had the bits).
        """
        table = self._require_table()
        self._insertions.inc()
        changed = 0
        for offset in range(page_count):
            page = ppn + offset
            if not table.covers(page):
                continue  # translations to non-existent memory grant nothing
            if self.bcc is not None:
                if self.bcc.insert_permission(page, perms, table):
                    changed += 1
                    self._pt_accesses.inc()
            else:
                if table.grant(page, perms):
                    changed += 1
                    self._pt_accesses.inc()
        return changed

    # -- (c) accelerator memory request ---------------------------------------------

    def check(self, paddr: int, write: bool) -> AccessDecision:
        """Check one border crossing; blocks and notifies the OS on failure."""
        table = self._require_table()
        self._checks.value += 1
        if write:
            self._write_checks.value += 1
        else:
            self._read_checks.value += 1
        ppn = paddr >> PAGE_SHIFT
        if not table.covers(ppn):
            decision = _decision(False, Perm.NONE, bcc_hit=False, out_of_bounds=True)
            if self._decision_hooks:
                for hook in self._decision_hooks:
                    hook(paddr, write, decision)
            self._report(paddr, write, decision)
            return decision
        if self.bcc is not None:
            hit, perms = self.bcc.lookup(ppn, table)
            if not hit:
                self._pt_accesses.value += 1
        else:
            hit, perms = False, table.get(ppn)
            self._pt_accesses.value += 1
        decision = _decision(perms.allows(write), perms, hit)
        if self._decision_hooks:
            for hook in self._decision_hooks:
                hook(paddr, write, decision)
        if not decision.allowed:
            self._report(paddr, write, decision)
        return decision

    def _report(self, paddr: int, write: bool, decision: AccessDecision) -> None:
        record = ViolationRecord(
            accel_id=self.accel_id,
            paddr=paddr,
            write=write,
            out_of_bounds=decision.out_of_bounds,
            perms_held=decision.perms,
        )
        self.violations.append(record)
        self._violation_count.inc()
        for handler in self._handlers:
            handler(record)
        if self.strict:
            raise BorderControlViolation(paddr, write, self.accel_id)

    # -- (d) memory-mapping update ----------------------------------------------------

    def downgrade_page(self, ppn: int) -> None:
        """Selective downgrade: revoke one page after caches are flushed.

        The caller (the OS kernel) is responsible for first writing back /
        flushing accelerator cache blocks of this page (§3.2.4); Border
        Control then revokes lazily — the page re-inserts through the ATS
        if it is still legitimately mapped.
        """
        table = self._require_table()
        self._downgrades.inc()
        table.revoke(ppn)
        if self.bcc is not None:
            self.bcc.invalidate_page(ppn, table)

    def downgrade_all(self) -> None:
        """Full downgrade: zero the table, invalidate the BCC (§3.2.4).

        Equivalent in correctness to selective revocation when the whole
        accelerator cache is flushed; permissions lazily re-populate.
        """
        table = self._require_table()
        self._downgrades.inc()
        table.zero()
        if self.bcc is not None:
            self.bcc.invalidate_all()

    # -- (e) process completion ---------------------------------------------------------

    def process_complete(self, asid: int) -> bool:
        """A process finishes. Returns True if the table was torn down
        (use count reached zero and the memory was reclaimed)."""
        if asid not in self.asids:
            raise ConfigurationError(
                f"asid {asid} is not running on accelerator {self.accel_id}"
            )
        table = self._require_table()
        self.asids.discard(asid)
        self.use_count -= 1
        # Access permissions for the departing process are revoked by
        # zeroing; co-scheduled processes lazily re-populate (§3.2.5, §3.3).
        table.zero()
        if self.bcc is not None:
            self.bcc.invalidate_all()
        if self.use_count == 0:
            table.deallocate(self.allocator)
            self.table = None
            self.bcc = None
            return True
        return False

    # -- warm reuse -------------------------------------------------------------

    def reset_for_reuse(self, handlers: Optional[List[ViolationHandler]] = None) -> None:
        """Return this engine to its post-construction state, in place.

        The owning :class:`System` caches direct references to this
        instance, so warm reuse must reset rather than replace it. The
        Protection Table's frames are reclaimed wholesale by the frame
        allocator's own reset, so the table is simply dropped. ``handlers``
        restores the violation-handler baseline (the handlers the
        SandboxManager installs at sandbox creation); hooks added later —
        verification observers — are discarded.
        """
        self.table = None
        self.bcc = None
        self.use_count = 0
        self.asids.clear()
        self.epoch = 0
        self.violations.clear()
        if handlers is not None:
            self._handlers = list(handlers)
        self._decision_hooks.clear()

    # -- internals ------------------------------------------------------------

    def _require_table(self) -> ProtectionTable:
        if self.table is None:
            raise ConfigurationError(
                f"accelerator {self.accel_id} has no active Protection Table "
                "(no process initialized)"
            )
        return self.table

    # -- reporting --------------------------------------------------------------

    @property
    def checks(self) -> int:
        return self._checks.value

    @property
    def pt_accesses(self) -> int:
        return self._pt_accesses.value

    def __repr__(self) -> str:  # pragma: no cover
        state = "active" if self.active else "idle"
        return f"BorderControl({self.accel_id!r}, {state}, use_count={self.use_count})"
