"""Read/write permission flags.

Border Control deliberately tracks only read and write permission per
physical page: execute permission cannot be enforced at the border because
once a block is inside the accelerator, Border Control cannot observe
whether it is used as data or instructions (paper §3.1.1).
"""

from __future__ import annotations

import enum

__all__ = ["Perm", "PERM_NONE", "PERM_R", "PERM_W", "PERM_RW"]


class Perm(enum.IntFlag):
    """Per-page permission bits, 2 bits per page as in the Protection Table."""

    NONE = 0
    R = 1
    W = 2
    RW = 3

    @property
    def readable(self) -> bool:
        return bool(self & Perm.R)

    @property
    def writable(self) -> bool:
        return bool(self & Perm.W)

    def allows(self, write: bool) -> bool:
        """Does this permission allow a read (write=False) or write access?"""
        return self.writable if write else self.readable

    def union(self, other: "Perm") -> "Perm":
        """Union of permissions — the multiprocess-accelerator rule (§3.3)."""
        return Perm(self | other)

    def describe(self) -> str:
        return ("R" if self.readable else "-") + ("W" if self.writable else "-")


PERM_NONE = Perm.NONE
PERM_R = Perm.R
PERM_W = Perm.W
PERM_RW = Perm.RW
