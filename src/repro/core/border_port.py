"""Timing wrapper placing Border Control on the memory path.

This is the hardware position of Fig. 2: between the accelerator's
physical caches and the rest of the memory hierarchy. Every access the
accelerator L2 sends toward memory — fills and writebacks — flows through
:class:`BorderControlPort`, which consults the functional
:class:`~repro.core.border_control.BorderControl` engine and charges:

* a BCC lookup (10 GPU cycles, Table 3) when the BCC hits;
* a Protection Table access (100 cycles, plus a 128 B read that competes
  for DRAM bandwidth) when the BCC misses or no BCC is configured.

Reads proceed *in parallel* with the permission lookup (§3.1.1: the flat
table guarantees single-access lookups that "can proceed in parallel with
read requests"); data is simply not returned if the check fails. Writes
must pass the check before they are forwarded.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.border_control import BorderControl
from repro.mem.address import BLOCK_SIZE
from repro.mem.dram import DRAM
from repro.mem.port import MemoryPort
from repro.sim.engine import Engine
from repro.sim.stats import StatDomain

__all__ = ["BorderControlPort"]


class BorderControlPort(MemoryPort):
    """The border checkpoint between untrusted caches and trusted memory."""

    name = "border"

    def __init__(
        self,
        engine: Engine,
        bc: BorderControl,
        dram: DRAM,
        downstream: MemoryPort,
        bcc_latency_ticks: int,
        pt_latency_ticks: int,
        pt_fetch_bytes: int = BLOCK_SIZE,
        stats: Optional[StatDomain] = None,
    ) -> None:
        self._engine = engine
        self.bc = bc
        self.dram = dram
        self.downstream = downstream
        self.bcc_latency_ticks = bcc_latency_ticks
        self.pt_latency_ticks = pt_latency_ticks
        # Without a BCC there is nothing to fill, so the checker reads just
        # the 64-bit word holding the page's 2-bit field; with a BCC a full
        # 128 B table block is fetched into the cache (§3.1.2).
        self.pt_fetch_bytes = pt_fetch_bytes
        stats = stats or StatDomain("border_port")
        self._checked = stats.counter("checked")
        self._blocked = stats.counter("blocked")
        # Optional trace of (ppn, is_write) crossings, used by the Fig. 6
        # BCC sensitivity sweep to replay real border streams offline.
        self.ppn_recorder: Optional[list] = None

    def _check_delay(self, bcc_hit: bool) -> int:
        """Latency of the permission lookup; PT reads also consume DRAM
        bandwidth (the §3.1.2 motivation for having a BCC at all)."""
        if bcc_hit:
            return self.bcc_latency_ticks
        dram_delay = self.dram.access(self.pt_fetch_bytes, write=False)
        return self.bcc_latency_ticks + max(self.pt_latency_ticks, dram_delay)

    def access(
        self, addr: int, size: int, write: bool, data: Optional[bytes] = None
    ) -> Generator:
        self._checked.inc()
        if self.ppn_recorder is not None:
            self.ppn_recorder.append((addr >> 12, write))
        decision = self.bc.check(addr, write)
        delay = self._check_delay(decision.bcc_hit)
        if write:
            # Writes commit only after the check passes.
            if delay:
                yield delay
            if not decision.allowed:
                self._blocked.inc()
                return None
            return (yield from self.downstream.access(addr, size, True, data))
        if not decision.allowed:
            # No data crosses the border; the memory read never issues.
            if delay:
                yield delay
            self._blocked.inc()
            return None
        # Read: the lookup overlaps the memory access; the slower of the
        # two determines when data may cross back into the accelerator.
        start = self._engine.now
        result = yield from self.downstream.access(addr, size, False)
        elapsed = self._engine.now - start
        if delay > elapsed:
            yield delay - elapsed
        return result
