"""Timing wrapper placing Border Control on the memory path.

This is the hardware position of Fig. 2: between the accelerator's
physical caches and the rest of the memory hierarchy. Every access the
accelerator L2 sends toward memory — fills and writebacks — flows through
:class:`BorderControlPort`, which consults the functional
:class:`~repro.core.border_control.BorderControl` engine and charges:

* a BCC lookup (10 GPU cycles, Table 3) when the BCC hits;
* a Protection Table access (100 cycles, plus a 128 B read that competes
  for DRAM bandwidth) when the BCC misses or no BCC is configured.

Reads proceed *in parallel* with the permission lookup (§3.1.1: the flat
table guarantees single-access lookups that "can proceed in parallel with
read requests"); data is simply not returned if the check fails. Writes
must pass the check before they are forwarded.

Resilience: when ``request_timeout_ticks`` is set, every downstream
access races an :meth:`~repro.sim.engine.Engine.deadline`; a request the
memory path never answers (a fault-injected hang, a wedged channel) is
abandoned and retried up to ``max_retries`` times with exponential
backoff, so a single lost response costs bounded time instead of wedging
the accelerator. With ``strict_timeouts`` the exhausted budget raises
:class:`~repro.errors.BorderTimeoutError`; otherwise the access fails
(``None``) and is counted. With the default ``request_timeout_ticks=0``
the port is timing-transparent — byte-identical to the pre-resilience
behavior — so the paper's calibration is untouched.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.core.border_control import BorderControl
from repro.errors import BorderTimeoutError
from repro.mem.address import BLOCK_SIZE, PAGE_SHIFT
from repro.mem.dram import DRAM
from repro.mem.port import MemoryPort
from repro.sim.engine import Engine, TIMEOUT
from repro.sim.stats import StatDomain

__all__ = ["BorderControlPort"]


class BorderControlPort(MemoryPort):
    """The border checkpoint between untrusted caches and trusted memory."""

    name = "border"

    def __init__(
        self,
        engine: Engine,
        bc: BorderControl,
        dram: DRAM,
        downstream: MemoryPort,
        bcc_latency_ticks: int,
        pt_latency_ticks: int,
        pt_fetch_bytes: int = BLOCK_SIZE,
        stats: Optional[StatDomain] = None,
        request_timeout_ticks: int = 0,
        max_retries: int = 3,
        retry_backoff_ticks: int = 0,
        strict_timeouts: bool = False,
    ) -> None:
        self._engine = engine
        self.bc = bc
        self.dram = dram
        self.downstream = downstream
        self.bcc_latency_ticks = bcc_latency_ticks
        self.pt_latency_ticks = pt_latency_ticks
        # Without a BCC there is nothing to fill, so the checker reads just
        # the 64-bit word holding the page's 2-bit field; with a BCC a full
        # 128 B table block is fetched into the cache (§3.1.2).
        self.pt_fetch_bytes = pt_fetch_bytes
        # Watchdog parameters; 0 timeout disables the race entirely.
        self.request_timeout_ticks = request_timeout_ticks
        self.max_retries = max_retries
        self.retry_backoff_ticks = retry_backoff_ticks
        self.strict_timeouts = strict_timeouts
        # Optional chaos hook: extra Protection-Table-fetch latency (a
        # faulty PT path can only slow the check down, never skip it).
        self.pt_fault_hook: Optional[Callable[[], int]] = None
        # Epoch fence (recovery): where to read the issuing device's
        # believed attach epoch. Wired by System as a callable so that a
        # post-construction accelerator swap (the chaos harness replaces
        # ``system.gpu``) is still observed. None leaves traffic untagged.
        self.epoch_source: Optional[Callable[[], int]] = None
        stats = stats or StatDomain("border_port")
        self._checked = stats.counter("checked")
        self._blocked = stats.counter("blocked")
        self._timeouts = stats.counter("timeouts")
        self._retries = stats.counter("retries")
        self._abandoned = stats.counter("abandoned")
        self._stale_rejected = stats.counter("stale_epoch_rejections")
        # Optional trace of (ppn, is_write) crossings, used by the Fig. 6
        # BCC sensitivity sweep to replay real border streams offline.
        self.ppn_recorder: Optional[list] = None

    def reset(self) -> None:
        """Warm-reuse reset: drop per-run hooks. ``epoch_source`` is kept —
        it is construction-time system wiring reading live state."""
        self.pt_fault_hook = None
        self.ppn_recorder = None

    def _check_delay(self, bcc_hit: bool) -> int:
        """Latency of the permission lookup; PT reads also consume DRAM
        bandwidth (the §3.1.2 motivation for having a BCC at all)."""
        if bcc_hit:
            return self.bcc_latency_ticks
        dram_delay = self.dram.access(self.pt_fetch_bytes, write=False)
        delay = self.bcc_latency_ticks + max(self.pt_latency_ticks, dram_delay)
        if self.pt_fault_hook is not None:
            delay += max(0, int(self.pt_fault_hook()))
        return delay

    def _downstream_access(
        self, addr: int, size: int, write: bool, data: Optional[bytes]
    ) -> Generator:
        """Forward one access downstream, policing it with the watchdog."""
        if not self.request_timeout_ticks:
            return (yield from self.downstream.access(addr, size, write, data))
        attempt = 0
        while True:
            proc = self._engine.process(
                self.downstream.access(addr, size, write, data),
                name="border-downstream",
            )
            result = yield self._engine.deadline(proc, self.request_timeout_ticks)
            if result is not TIMEOUT:
                return result
            self._timeouts.inc()
            if attempt >= self.max_retries:
                self._abandoned.inc()
                if self.strict_timeouts:
                    raise BorderTimeoutError(addr, write, attempt + 1)
                return None
            attempt += 1
            self._retries.inc()
            backoff = self.retry_backoff_ticks * (1 << (attempt - 1))
            if backoff:
                yield backoff

    def access(
        self,
        addr: int,
        size: int,
        write: bool,
        data: Optional[bytes] = None,
        epoch: Optional[int] = None,
    ) -> Generator:
        self._checked.value += 1
        # Epoch fence: requests stamped with a stale attach epoch are
        # in-flight traffic from a pre-reset device; they die here — no
        # permission lookup, no memory access, no data movement. The
        # explicit ``epoch=`` argument lets the replay harness inject
        # stale traffic; live traffic is stamped via ``epoch_source``.
        if epoch is None and self.epoch_source is not None:
            epoch = self.epoch_source()
        if not self.bc.admit_epoch(epoch):
            self._stale_rejected.inc()
            return None
        if self.ppn_recorder is not None:
            self.ppn_recorder.append((addr >> PAGE_SHIFT, write))
        decision = self.bc.check(addr, write)
        # The paper's whole point (§5.2.2): a BCC hit must be nearly free.
        # Mirror that on the host side — a hit charges the constant BCC
        # latency without the PT/DRAM pricing call.
        if decision.bcc_hit:
            delay = self.bcc_latency_ticks
        else:
            delay = self._check_delay(False)
        if write:
            # Writes commit only after the check passes.
            if delay:
                yield delay
            if not decision.allowed:
                self._blocked.inc()
                return None
            return (yield from self._downstream_access(addr, size, True, data))
        if not decision.allowed:
            # No data crosses the border; the memory read never issues.
            if delay:
                yield delay
            self._blocked.inc()
            return None
        # Read: the lookup overlaps the memory access; the slower of the
        # two determines when data may cross back into the accelerator.
        start = self._engine.now
        result = yield from self._downstream_access(addr, size, False, None)
        elapsed = self._engine.now - start
        if delay > elapsed:
            yield delay - elapsed
        return result
