"""Border Control — the paper's primary contribution.

The core package implements the hardware proposed in the paper:

* :class:`~repro.core.permissions.Perm` — read/write permission flags.
* :class:`~repro.core.protection_table.ProtectionTable` — the flat,
  physically indexed 2-bits-per-page table resident in simulated physical
  memory, with base and bounds registers (paper §3.1.1, Fig. 2).
* :class:`~repro.core.bcc.BorderControlCache` — the sub-blocked cache of
  the Protection Table (64 entries x 128 B = 8 KB by default; §3.1.2).
* :class:`~repro.core.border_control.BorderControl` — the checking engine
  at the trusted/untrusted border, implementing every event of Fig. 3:
  process initialization, Protection Table insertion, memory-request
  checks, memory-mapping updates (permission downgrades), and process
  completion; plus multiprocess union permissions (§3.3) and large pages
  (§3.4.4).
* :class:`~repro.core.sandbox.SandboxManager` — OS-facing lifecycle
  helper tying accelerators, processes, and Border Control together.
"""

from repro.core.permissions import PERM_NONE, PERM_R, PERM_RW, PERM_W, Perm
from repro.core.protection_table import ProtectionTable
from repro.core.sparse_table import SparseProtectionTable
from repro.core.bcc import BCCConfig, BorderControlCache
from repro.core.border_control import (
    AccessDecision,
    BorderControl,
    ViolationRecord,
)
from repro.core.sandbox import SandboxManager

__all__ = [
    "AccessDecision",
    "BCCConfig",
    "BorderControl",
    "BorderControlCache",
    "PERM_NONE",
    "PERM_R",
    "PERM_RW",
    "PERM_W",
    "Perm",
    "ProtectionTable",
    "SandboxManager",
    "SparseProtectionTable",
    "ViolationRecord",
]
