"""OS-facing sandbox registry.

The kernel owns one :class:`SandboxManager`; it creates a Border Control
instance per accelerator on demand, tracks which address spaces run where,
and fans permission downgrades out to every accelerator an address space
touches. This is the "one Protection Table per active accelerator" rule of
§3.1.1 made concrete.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.core.bcc import BCCConfig
from repro.core.border_control import BorderControl, ViolationRecord
from repro.core.permissions import Perm
from repro.errors import ConfigurationError
from repro.mem.phys_memory import PhysicalMemory
from repro.sim.stats import StatDomain
from repro.vm.frame_allocator import FrameAllocator

__all__ = ["SandboxManager"]


class SandboxManager:
    """Creates and tracks per-accelerator Border Control instances."""

    def __init__(
        self,
        phys: PhysicalMemory,
        allocator: FrameAllocator,
        bcc_config: Optional[BCCConfig] = BCCConfig(),
        stats: Optional[StatDomain] = None,
        strict: bool = False,
        table_kind: str = "flat",
    ) -> None:
        self.phys = phys
        self.allocator = allocator
        self.bcc_config = bcc_config
        self.strict = strict
        self.table_kind = table_kind
        self.stats = stats or StatDomain("sandboxes")
        self._sandboxes: Dict[str, BorderControl] = {}
        # asid -> accelerator ids it currently runs on
        self._placements: Dict[int, Set[str]] = {}
        self._violation_handlers: List[Callable[[ViolationRecord], None]] = []

    # -- registry ----------------------------------------------------------

    def border_control_for(self, accel_id: str) -> BorderControl:
        """Get (creating lazily) the Border Control guarding an accelerator."""
        sandbox = self._sandboxes.get(accel_id)
        if sandbox is None:
            sandbox = BorderControl(
                accel_id,
                self.phys,
                self.allocator,
                bcc_config=self.bcc_config,
                stats=self.stats.child(accel_id),
                strict=self.strict,
                table_kind=self.table_kind,
            )
            for handler in self._violation_handlers:
                sandbox.on_violation(handler)
            self._sandboxes[accel_id] = sandbox
        return sandbox

    def sandbox_for(self, accel_id: str) -> Optional[BorderControl]:
        """The Border Control guarding an accelerator, or None if one was
        never created (unlike :meth:`border_control_for`, never creates)."""
        return self._sandboxes.get(accel_id)

    def on_violation(self, handler: Callable[[ViolationRecord], None]) -> None:
        """Install an OS handler on every current and future sandbox."""
        self._violation_handlers.append(handler)
        for sandbox in self._sandboxes.values():
            sandbox.on_violation(handler)

    # -- process lifecycle ----------------------------------------------------

    def attach(self, accel_id: str, asid: int) -> BorderControl:
        """A process starts on an accelerator (Fig. 3a)."""
        sandbox = self.border_control_for(accel_id)
        sandbox.process_init(asid)
        # Every attach opens a new epoch (recovery): requests still in
        # flight from before the attach carry the old epoch and cannot
        # leak into the new process's sandbox.
        sandbox.advance_epoch()
        self._placements.setdefault(asid, set()).add(accel_id)
        return sandbox

    def detach(self, accel_id: str, asid: int) -> bool:
        """A process finishes on an accelerator (Fig. 3e)."""
        sandbox = self._sandboxes.get(accel_id)
        if sandbox is None:
            raise ConfigurationError(f"unknown accelerator {accel_id!r}")
        torn_down = sandbox.process_complete(asid)
        accels = self._placements.get(asid)
        if accels is not None:
            accels.discard(accel_id)
            if not accels:
                del self._placements[asid]
        return torn_down

    # -- warm reuse ----------------------------------------------------------

    def reset_for_reuse(self) -> None:
        """Reset every sandbox in place and forget all placements.

        Existing :class:`BorderControl` instances are kept (the System
        holds direct references into this registry) but restored to their
        post-construction state, with the manager's own violation-handler
        baseline re-installed."""
        for sandbox in self._sandboxes.values():
            sandbox.reset_for_reuse(self._violation_handlers)
        self._placements.clear()

    # -- fan-out ------------------------------------------------------------

    def sandboxes_running(self, asid: int) -> Iterator[BorderControl]:
        """Every sandbox whose accelerator currently runs this address space."""
        for accel_id in sorted(self._placements.get(asid, ())):
            yield self._sandboxes[accel_id]

    def insert_translation(
        self, accel_id: str, ppn: int, perms: Perm, page_count: int = 1
    ) -> int:
        """Route an ATS translation completion to the right sandbox (Fig. 3b)."""
        return self.border_control_for(accel_id).insert_translation(
            ppn, perms, page_count
        )

    def active_sandboxes(self) -> List[Tuple[str, BorderControl]]:
        return [
            (accel_id, sandbox)
            for accel_id, sandbox in sorted(self._sandboxes.items())
            if sandbox.active
        ]

    def total_table_bytes(self) -> int:
        """Aggregate Protection Table storage across active accelerators."""
        return sum(
            sandbox.table.size_bytes
            for _id, sandbox in self.active_sandboxes()
            if sandbox.table is not None
        )
