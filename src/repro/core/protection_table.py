"""The Protection Table (paper §3.1.1, Fig. 2).

A flat, physically indexed table with a read bit and a write bit for every
physical page number, resident in (simulated) physical memory. For a page
size of 4 KB this costs 2 bits per 4 KB page = 0.006% of physical memory
per active accelerator — 1 MB for a 16 GB system.

Layout (Fig. 2): the 2-bit field for PPN ``p`` lives at byte offset
``p >> 2``, bit offset ``2 * (p & 3)``; bit 0 of the field is Read, bit 1
is Write. A 128-byte memory block therefore holds permissions for 512
pages, which is what gives the Border Control Cache its reach (§3.1.2).

The table is addressed through *base* and *bounds* registers the OS
programs at process initialization (§3.2.1); any checked physical address
at or beyond the bounds is out of range and the access is refused.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.core.permissions import Perm
from repro.errors import ConfigurationError
from repro.mem.address import BLOCK_SIZE, PAGE_SHIFT, PAGE_SIZE, align_up
from repro.mem.phys_memory import PhysicalMemory
from repro.vm.frame_allocator import FrameAllocator

__all__ = ["ProtectionTable"]

PAGES_PER_BYTE = 4
PAGES_PER_BLOCK = BLOCK_SIZE * PAGES_PER_BYTE  # 512


class ProtectionTable:
    """One accelerator's Protection Table, resident in physical memory."""

    def __init__(
        self,
        phys: PhysicalMemory,
        base_paddr: int,
        covered_pages: int,
    ) -> None:
        if base_paddr % PAGE_SIZE:
            raise ConfigurationError("protection table base must be page aligned")
        if covered_pages <= 0:
            raise ConfigurationError("protection table must cover at least one page")
        self.phys = phys
        self.base_paddr = base_paddr  # the base register
        self.covered_pages = covered_pages  # the bounds register (in pages)
        self.size_bytes = align_up(
            (covered_pages + PAGES_PER_BYTE - 1) // PAGES_PER_BYTE, PAGE_SIZE
        )
        # Permission-bit version for the vector tier's memoized snapshot
        # (repro.sim.batch.readable_snapshot): bumped on every mutation.
        self.version = 0
        self._vec_snap = None
        if not phys.contains(base_paddr, self.size_bytes):
            raise ConfigurationError("protection table does not fit in memory")

    # -- allocation helpers ----------------------------------------------------

    @classmethod
    def allocate(
        cls,
        phys: PhysicalMemory,
        allocator: FrameAllocator,
        covered_pages: Optional[int] = None,
    ) -> "ProtectionTable":
        """OS path: carve a zeroed, contiguous region and build the table.

        By default the table covers all of physical memory, as the paper's
        bounds register is set to "the size of physical memory" (§3.2.1).
        """
        pages = covered_pages if covered_pages is not None else phys.num_frames
        nbytes = align_up((pages + PAGES_PER_BYTE - 1) // PAGES_PER_BYTE, PAGE_SIZE)
        frames = nbytes // PAGE_SIZE
        base_ppn = allocator.alloc_contiguous(frames, zero=True)
        table = cls(phys, base_ppn << PAGE_SHIFT, pages)
        table._frames = (base_ppn, frames)  # type: ignore[attr-defined]
        return table

    def deallocate(self, allocator: FrameAllocator) -> None:
        """Return the table's frames to the OS (process completion, §3.2.5)."""
        frames: Optional[Tuple[int, int]] = getattr(self, "_frames", None)
        if frames is None:
            raise ConfigurationError("table was not allocator-backed")
        base_ppn, count = frames
        allocator.free_contiguous(base_ppn, count)
        self._frames = None  # type: ignore[attr-defined]

    # -- bounds ---------------------------------------------------------------

    def covers(self, ppn: int) -> bool:
        """The bounds-register check applied before any table access (§3.2.3)."""
        return 0 <= ppn < self.covered_pages

    # -- single-page access ------------------------------------------------------

    def _field_addr(self, ppn: int) -> Tuple[int, int]:
        return self.base_paddr + (ppn >> 2), 2 * (ppn & 3)

    def get(self, ppn: int) -> Perm:
        """Read the 2-bit permission field for one physical page."""
        if not self.covers(ppn):
            return Perm.NONE
        addr, shift = self._field_addr(ppn)
        byte = self.phys.read(addr, 1)[0]
        return Perm((byte >> shift) & 0x3)

    def set(self, ppn: int, perms: Perm) -> None:
        """Overwrite the permission field for one physical page."""
        if not self.covers(ppn):
            raise ConfigurationError(f"ppn {ppn:#x} outside table bounds")
        addr, shift = self._field_addr(ppn)
        byte = self.phys.read(addr, 1)[0]
        byte = (byte & ~(0x3 << shift)) | (int(perms) << shift)
        self.phys.write(addr, bytes([byte]))
        self.version += 1

    def grant(self, ppn: int, perms: Perm) -> bool:
        """OR permissions into a page's field (insertion is monotonic up,
        §3.2.2; union across co-scheduled processes, §3.3). Returns True if
        the stored field changed."""
        old = self.get(ppn)
        new = old.union(perms)
        if new != old:
            self.set(ppn, new)
            return True
        return False

    def revoke(self, ppn: int) -> None:
        """Clear a page's field (selective downgrade path, §3.2.4)."""
        self.set(ppn, Perm.NONE)

    # -- block access (what the BCC fetches) ----------------------------------------

    def block_index_of(self, ppn: int) -> int:
        return ppn // PAGES_PER_BLOCK

    def read_block(self, block_index: int) -> bytes:
        """Read one 128 B table block (permissions for 512 pages)."""
        addr = self.base_paddr + block_index * BLOCK_SIZE
        return self.phys.read(addr, BLOCK_SIZE)

    def read_bits(self, start_ppn: int, count: int) -> int:
        """Permissions for ``count`` consecutive pages as a packed integer.

        Page ``start_ppn + i`` occupies bits ``[2i, 2i+2)`` of the result.
        Used by Border Control Cache fills at arbitrary entry granularity.
        """
        if count <= 0:
            return 0
        first_byte = start_ppn >> 2
        last_byte = (start_ppn + count - 1) >> 2
        raw = self.phys.read(self.base_paddr + first_byte, last_byte - first_byte + 1)
        packed = int.from_bytes(raw, "little")
        packed >>= 2 * (start_ppn & 3)
        return packed & ((1 << (2 * count)) - 1)

    # -- bulk operations -----------------------------------------------------------

    def zero(self) -> None:
        """Zero the whole table — revoking every permission (§3.2.4-5)."""
        self.phys.zero_range(self.base_paddr, self.size_bytes)
        self.version += 1
        self._vec_snap = None

    def populated(self) -> Iterator[Tuple[int, Perm]]:
        """Iterate (ppn, perms) for pages with any permission set."""
        # One bulk read instead of size_bytes single-byte reads, and the
        # (usually huge) all-zero tail is dropped at C speed — this runs
        # after every step of the lockstep verifier.
        data = self.phys.read(self.base_paddr, self.size_bytes).rstrip(b"\x00")
        for byte_index, byte in enumerate(data):
            if not byte:
                continue
            for sub in range(4):
                field = (byte >> (2 * sub)) & 0x3
                if field:
                    ppn = byte_index * 4 + sub
                    if self.covers(ppn):
                        yield ppn, Perm(field)

    # -- reporting ----------------------------------------------------------------

    def storage_overhead_fraction(self) -> float:
        """Table bytes per byte of covered physical memory (paper: 0.006%)."""
        covered_bytes = self.covered_pages * PAGE_SIZE
        return self.size_bytes / covered_bytes

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ProtectionTable(base={self.base_paddr:#x}, "
            f"pages={self.covered_pages}, {self.size_bytes / 1024:g} KiB)"
        )
