"""Memory-path strategies realizing the configurations of Table 2.

A *path* is what a compute unit's memory instruction traverses. All paths
share the interface:

``mem_op(cu_index, asid, vaddr, write, data) -> Generator`` returning the
accessed bytes (or ``None`` if blocked), plus ``shootdown`` /
``flush_caches`` / ``flush_pages`` maintenance hooks the GPU forwards
from the kernel.

* :class:`CachedHierarchyPath` — per-CU L1 TLB + write-through L1 cache,
  shared write-back L2, then whatever sits below (the raw memory
  controller for the unsafe baseline, or a
  :class:`~repro.core.border_port.BorderControlPort` for the BC configs).
* :class:`FullIOMMUPathAdapter` — no TLBs, no caches; every request
  through the checking IOMMU.
* :class:`CAPIPathAdapter` — no private structures; a trusted TLB + L2.
"""

from __future__ import annotations

from typing import Generator, Iterable, List, Optional

from repro.iommu.ats import ATS
from repro.iommu.capi import CAPILikePath
from repro.iommu.iommu import FullIOMMUPath
from repro.mem.address import BLOCK_SIZE, PAGE_SHIFT
from repro.mem.cache import Cache
from repro.sim.stats import StatDomain
from repro.vm.tlb import TLB, TLBEntry

__all__ = ["CachedHierarchyPath", "FullIOMMUPathAdapter", "CAPIPathAdapter"]


class CachedHierarchyPath:
    """L1 TLB -> L1$ -> shared L2$ -> (border) -> memory.

    This is both the unsafe ATS-only baseline and, with a
    BorderControlPort spliced below the L2, the two Border Control
    configurations — the accelerator keeps every performance optimization
    (paper §5.1).
    """

    def __init__(
        self,
        accel_id: str,
        ats: ATS,
        l1_tlbs: List[TLB],
        l1_caches: List[Cache],
        l2_cache: Cache,
        stats: Optional[StatDomain] = None,
    ) -> None:
        if len(l1_tlbs) != len(l1_caches):
            raise ValueError("need one L1 TLB per L1 cache (per CU)")
        self.accel_id = accel_id
        self.ats = ats
        self.l1_tlbs = l1_tlbs
        self.l1_caches = l1_caches
        self.l2_cache = l2_cache
        stats = stats or StatDomain("path")
        self._translation_faults = stats.counter("translation_faults")

    def mem_op(
        self,
        cu_index: int,
        asid: int,
        vaddr: int,
        write: bool,
        data: Optional[bytes] = None,
    ) -> Generator:
        vpn = vaddr >> PAGE_SHIFT
        entry = self.l1_tlbs[cu_index].lookup(asid, vpn)
        if entry is None:
            result = yield from self.ats.translate(self.accel_id, asid, vpn)
            if result is None:
                self._translation_faults.inc()
                return None
            entry = TLBEntry(
                asid=asid,
                vpn=result.vpn,
                ppn=result.ppn,
                perms=result.perms,
                pages=result.pages_covered,
            )
            self.l1_tlbs[cu_index].insert(entry)
        paddr = ((entry.ppn + vpn - entry.vpn) << PAGE_SHIFT) | (vaddr & 0xFFF)
        rem = BLOCK_SIZE - (paddr & (BLOCK_SIZE - 1))
        if write and data is not None:
            size = len(data)
            if size > rem:
                size = rem
        else:
            size = rem
        return (
            yield from self.l1_caches[cu_index].access(paddr, size, write, data)
        )

    # -- batched-replay fast path -----------------------------------------

    def fast_read_latency(self, cu_index: int) -> int:
        """Ticks a :meth:`fast_read` hit costs (the L1 hit latency)."""
        return self.l1_caches[cu_index].config.hit_latency_ticks

    def fast_read(self, cu_index: int, asid: int, vaddr: int):
        """Zero-yield probe-and-commit for a pure-hit read.

        The all-or-nothing analogue of :meth:`mem_op` for the only case
        batched trace replay may service inline: an L1 TLB hit followed by
        an L1 cache read hit. Both structures are probed without side
        effects first; only when *both* hit are the hit-path side effects
        committed (recency touches + hit counters — exactly what the
        generator path commits, in the same per-structure order). Returns
        the resident line (truthy) on success, or ``None`` with the TLB
        and cache untouched so the caller can fall back to :meth:`mem_op`
        without double counting.
        """
        tlb = self.l1_tlbs[cu_index]
        vpn = vaddr >> PAGE_SHIFT
        probed = tlb.probe(asid, vpn)
        if probed is None:
            return None
        key, entry = probed
        paddr = (entry.ppn_for(vpn) << PAGE_SHIFT) | (vaddr & 0xFFF)
        # A block-granular read, clipped at the block boundary — the same
        # size mem_op computes for a read.
        size = BLOCK_SIZE - (paddr & (BLOCK_SIZE - 1))
        cache = self.l1_caches[cu_index]
        line = cache.probe_read_hit(paddr, size)
        if line is None:
            return None
        tlb.commit_hit(key)
        cache.commit_read_hit(line)
        return line

    def batch_context(self):
        """The structures the vectorized tier classifies against.

        Returns ``(l1_tlbs, l1_caches, table, bcc)`` where ``table`` is
        the authoritative Protection Table guarding this path's border
        port (``None`` when the configured safety mode has none — e.g.
        ATS-only) and ``bcc`` the Border Control Cache, if any. Path
        adapters without per-CU structures simply do not define this
        method, which disables the vector tier.
        """
        port = getattr(self.l2_cache, "downstream", None)
        bc = getattr(port, "bc", None)
        table = getattr(bc, "table", None)
        if not hasattr(table, "base_paddr"):
            table = None
        return self.l1_tlbs, self.l1_caches, table, getattr(bc, "bcc", None)

    # -- maintenance ------------------------------------------------------

    def shootdown(self, asid: int, vpn: Optional[int] = None) -> None:
        for tlb in self.l1_tlbs:
            if vpn is None:
                tlb.invalidate_asid(asid)
            else:
                tlb.invalidate(asid, vpn)

    def flush_caches(self) -> Generator:
        """Flush L1s then the L2; L2 writebacks cross the border."""
        written = 0
        for l1 in self.l1_caches:
            written += yield from l1.flush_all()
        written += yield from self.l2_cache.flush_all()
        return written

    def flush_pages(self, ppns: Iterable[int]) -> Generator:
        written = 0
        for ppn in ppns:
            for l1 in self.l1_caches:
                written += yield from l1.flush_page(ppn)
            written += yield from self.l2_cache.flush_page(ppn)
        return written


class FullIOMMUPathAdapter:
    """Table 2's full-IOMMU row: no accelerator TLBs or caches at all."""

    def __init__(self, accel_id: str, iommu: FullIOMMUPath) -> None:
        self.accel_id = accel_id
        self.iommu = iommu

    def mem_op(
        self,
        cu_index: int,
        asid: int,
        vaddr: int,
        write: bool,
        data: Optional[bytes] = None,
    ) -> Generator:
        return (
            yield from self.iommu.mem_op(self.accel_id, asid, vaddr, write, data)
        )

    def shootdown(self, asid: int, vpn: Optional[int] = None) -> None:
        """Nothing to invalidate on the accelerator side (the IOMMU's own
        L2 TLB is shot down by the kernel through the ATS listener)."""

    def flush_caches(self) -> Generator:
        return 0
        yield  # pragma: no cover

    def flush_pages(self, ppns: Iterable[int]) -> Generator:
        return 0
        yield  # pragma: no cover


class CAPIPathAdapter:
    """Table 2's CAPI-like row: trusted TLB and shared L2 only."""

    def __init__(self, accel_id: str, capi: CAPILikePath) -> None:
        self.accel_id = accel_id
        self.capi = capi

    def mem_op(
        self,
        cu_index: int,
        asid: int,
        vaddr: int,
        write: bool,
        data: Optional[bytes] = None,
    ) -> Generator:
        return (
            yield from self.capi.mem_op(self.accel_id, asid, vaddr, write, data)
        )

    def shootdown(self, asid: int, vpn: Optional[int] = None) -> None:
        """Translations live in the trusted ATS TLB; nothing private here."""

    def flush_caches(self) -> Generator:
        """The trusted L2 is flushed on process completion; its writebacks
        are trusted and need no border check."""
        written = yield from self.capi.flush()
        return written

    def flush_pages(self, ppns: Iterable[int]) -> Generator:
        written = 0
        for ppn in ppns:
            written += yield from self.capi.trusted_l2.flush_page(ppn)
        return written
