"""Buggy and malicious accelerators — the threat model made executable.

These are the adversaries of paper §2.1: accelerators that are formally
attached to a process (so they hold a legitimate sandbox) but misbehave
in the ways the paper enumerates:

* :class:`MaliciousEngine` — a hardware trojan with "arbitrary logic and
  direct access to physical memory": it fabricates physical addresses
  (never obtained from the ATS) and tries to read secrets or corrupt OS
  state.
* :class:`StaleTLBAccelerator` — the TLB-shootdown bug: it keeps and uses
  translations after the OS invalidated them (the AMD Phenom TLB
  erratum class of bugs, §1).
* :class:`FlushIgnoringGPU` — a GPU that ignores the OS's cache-flush
  request on downgrades; the paper argues this is safe because the dirty
  writebacks are caught at the border later (§3.2.4).
"""

from __future__ import annotations

from typing import Dict, Generator, Iterable, Optional, Tuple

from repro.accel.base import AcceleratorBase
from repro.accel.gpu import GPU
from repro.mem.address import BLOCK_SIZE, PAGE_SHIFT
from repro.mem.port import MemoryPort
from repro.sim.engine import Engine
from repro.vm.tlb import TLBEntry

__all__ = [
    "MaliciousEngine",
    "StaleTLBAccelerator",
    "FlushIgnoringGPU",
    "WildWriteAccelerator",
]


class MaliciousEngine(AcceleratorBase):
    """A trojaned accelerator issuing raw physical-address requests.

    It is wired directly to whatever sits at the border (a
    BorderControlPort in a protected system, or the bare memory
    controller in an unprotected one) — exactly the Fig. 1b topology the
    paper warns about.
    """

    def __init__(self, engine: Engine, border: MemoryPort, accel_id: str = "trojan0") -> None:
        super().__init__(accel_id)
        self.engine = engine
        self.border = border
        self.attempts = 0
        self.successes = 0

    def read_phys(self, paddr: int, size: int = BLOCK_SIZE) -> Optional[bytes]:
        """Attempt to read an arbitrary physical address."""
        self.attempts += 1
        result = self.engine.run_process(
            self.border.access(paddr, size, False), name="trojan-read"
        )
        if result is not None:
            self.successes += 1
        return result

    def write_phys(self, paddr: int, data: bytes) -> bool:
        """Attempt to write an arbitrary physical address."""
        self.attempts += 1
        result = self.engine.run_process(
            self.border.access(paddr, len(data), True, data), name="trojan-write"
        )
        ok = result is not None
        if ok:
            self.successes += 1
        return ok

    def scan_for_nonzero(
        self, start_paddr: int, end_paddr: int, step: int = BLOCK_SIZE
    ) -> Dict[int, bytes]:
        """Exfiltration sweep: read every block in a physical range."""
        found: Dict[int, bytes] = {}
        for paddr in range(start_paddr, end_paddr, step):
            data = self.read_phys(paddr, min(step, end_paddr - paddr))
            if data and any(data):
                found[paddr] = data
        return found


class StaleTLBAccelerator(AcceleratorBase):
    """An accelerator whose TLB-shootdown implementation is broken.

    It translates legitimately through the ATS, but *ignores* shootdowns:
    after the OS remaps or unmaps a page, it keeps issuing requests with
    the stale physical address. Border Control must block those requests
    once the downgrade has revoked the page.
    """

    def __init__(
        self,
        engine: Engine,
        ats,
        border: MemoryPort,
        accel_id: str = "buggy0",
    ) -> None:
        super().__init__(accel_id)
        self.engine = engine
        self.ats = ats
        self.border = border
        self._stale_tlb: Dict[Tuple[int, int], TLBEntry] = {}
        self.ignored_shootdowns = 0

    def shootdown(self, asid: int, vpn: Optional[int] = None) -> None:
        # The bug: do nothing. Stale entries live on.
        self.ignored_shootdowns += 1

    def access_virtual(
        self, asid: int, vaddr: int, write: bool, data: Optional[bytes] = None
    ) -> Optional[bytes]:
        """Translate (caching forever) and access via physical address."""
        vpn = vaddr >> PAGE_SHIFT
        entry = self._stale_tlb.get((asid, vpn))
        if entry is None:
            result = self.engine.run_process(
                self.ats.translate(self.accel_id, asid, vpn), name="buggy-xlate"
            )
            if result is None:
                return None
            entry = TLBEntry(asid=asid, vpn=vpn, ppn=result.ppn, perms=result.perms)
            self._stale_tlb[(asid, vpn)] = entry
        paddr = (entry.ppn << PAGE_SHIFT) | (vaddr & 0xFFF)
        size = len(data) if (write and data is not None) else BLOCK_SIZE
        return self.engine.run_process(
            self.border.access(paddr, size, write, data), name="buggy-access"
        )


class WildWriteAccelerator(AcceleratorBase):
    """An accelerator with an address-calculation bug.

    It translates legitimately through the ATS, but a fraction of its
    stores land at a *perturbed* physical page — the classic "wild write"
    that corrupts OS structures or other processes' data and crashes
    systems (paper §2.1). Under Border Control the wild stores hit pages
    the Protection Table never granted and are blocked.
    """

    def __init__(
        self,
        engine: Engine,
        ats,
        border: MemoryPort,
        wild_period: int = 3,  # every Nth store goes wild
        wild_page_delta: int = 17,
        accel_id: str = "wild0",
    ) -> None:
        super().__init__(accel_id)
        self.engine = engine
        self.ats = ats
        self.border = border
        self.wild_period = max(1, wild_period)
        self.wild_page_delta = wild_page_delta
        self._store_count = 0
        self.wild_stores = 0
        self.wild_stores_landed = 0

    def store_virtual(self, asid: int, vaddr: int, data: bytes) -> Optional[bool]:
        """Issue one store; returns True if it committed, None if blocked."""
        vpn = vaddr >> PAGE_SHIFT
        result = self.engine.run_process(
            self.ats.translate(self.accel_id, asid, vpn), name="wild-xlate"
        )
        if result is None:
            return None
        paddr = (result.ppn << PAGE_SHIFT) | (vaddr & 0xFFF)
        self._store_count += 1
        if self._store_count % self.wild_period == 0:
            # The bug: a corrupted physical page number.
            paddr += self.wild_page_delta << PAGE_SHIFT
            self.wild_stores += 1
            committed = self.engine.run_process(
                self.border.access(paddr, len(data), True, data), name="wild-store"
            )
            if committed is not None:
                self.wild_stores_landed += 1
            return committed is not None
        committed = self.engine.run_process(
            self.border.access(paddr, len(data), True, data), name="store"
        )
        return committed is not None


class FlushIgnoringGPU(GPU):
    """A GPU that silently drops the OS's flush requests.

    Safety consequence (paper §3.2.4): dirty blocks survive the downgrade
    inside the accelerator, but their eventual writebacks are checked at
    the border and blocked — memory integrity is preserved, the stale
    data is simply lost inside the sandbox.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.ignored_flushes = 0

    def flush_caches(self) -> Generator:
        self.ignored_flushes += 1
        return 0
        yield  # pragma: no cover

    def flush_pages(self, ppns: Iterable[int]) -> Generator:
        self.ignored_flushes += 1
        return 0
        yield  # pragma: no cover
