"""The GPGPU model — the paper's stress-test accelerator (§5.1).

The GPU executes *kernel traces*: per-compute-unit, per-wavefront streams
of coalesced, block-granular memory operations separated by compute
gaps. Each wavefront is a simulation process; a compute unit issues at
most one memory instruction per cycle. Latency tolerance is emergent:
the highly threaded configuration (8 CUs, many wavefronts) overlaps
memory latency across contexts, while the moderately threaded one (1 CU,
few wavefronts) cannot — reproducing the sensitivity split in Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Iterable, List, Optional, Sequence, Tuple

from repro.accel.base import AcceleratorBase
from repro.mem.address import BLOCK_SIZE
from repro.sim.clock import Clock
from repro.sim.engine import BandwidthServer, Engine, Process
from repro.sim.clock import TICKS_PER_SECOND
from repro.sim.stats import StatDomain

__all__ = ["GPU", "GPUGeometry", "KernelTrace", "Op"]

# One wavefront operation: (compute-gap cycles, vaddr or None, is_write).
# vaddr None means a pure compute segment.
Op = Tuple[int, Optional[int], bool]


@dataclass(frozen=True)
class GPUGeometry:
    """Structural parameters (Table 3)."""

    num_cus: int = 8
    l1_tlb_entries: int = 64
    # Outstanding memory operations per wavefront: GPU loads are
    # non-blocking until first use, giving each context a little
    # memory-level parallelism on top of wavefront interleaving.
    mlp: int = 2
    # Coalesced memory instructions a CU's load/store pipes accept per
    # cycle (GCN-class CUs have multiple vector memory pipes).
    issue_per_cycle: int = 2

    @classmethod
    def highly_threaded(cls) -> "GPUGeometry":
        return cls(num_cus=8)

    @classmethod
    def moderately_threaded(cls) -> "GPUGeometry":
        return cls(num_cus=1)


@dataclass
class KernelTrace:
    """A workload's memory behavior, already coalesced to 128 B blocks."""

    name: str
    cu_wavefronts: List[List[List[Op]]]  # [cu][wavefront][op]
    footprint_pages: int = 0

    @property
    def num_cus(self) -> int:
        return len(self.cu_wavefronts)

    @property
    def total_mem_ops(self) -> int:
        return sum(
            sum(1 for op in wf if op[1] is not None)
            for cu in self.cu_wavefronts
            for wf in cu
        )

    @property
    def total_compute_cycles(self) -> int:
        return sum(
            op[0] for cu in self.cu_wavefronts for wf in cu for op in wf
        )


def _payload_for(vaddr: int) -> bytes:
    """Deterministic 128 B store payload derived from the address."""
    return (vaddr & (2**64 - 1)).to_bytes(8, "little") * (BLOCK_SIZE // 8)


class GPU(AcceleratorBase):
    """A GPGPU replaying kernel traces through a memory path."""

    def __init__(
        self,
        engine: Engine,
        clock: Clock,
        geometry: GPUGeometry,
        path,
        stats: Optional[StatDomain] = None,
        accel_id: str = "gpu0",
    ) -> None:
        super().__init__(accel_id)
        self.engine = engine
        self.clock = clock
        self.geometry = geometry
        self.path = path
        self.stats = stats or StatDomain(accel_id)
        self._issue_ports = [
            BandwidthServer(
                engine,
                # One "op byte" per issue slot per cycle.
                bytes_per_second=clock.freq_hz * geometry.issue_per_cycle,
                ticks_per_second=TICKS_PER_SECOND,
            )
            for _ in range(geometry.num_cus)
        ]
        self._ops = self.stats.counter("mem_ops")
        self._loads = self.stats.counter("loads")
        self._stores = self.stats.counter("stores")
        self._blocked = self.stats.counter("blocked_ops")
        self._kernels = self.stats.counter("kernels")
        self.last_kernel_ticks: int = 0
        self._stall_until: int = 0
        self._inflight: int = 0
        self._quiesce_depth: int = 0
        self._resume_event = engine.event()

    # -- execution --------------------------------------------------------

    def launch(self, asid: int, trace: KernelTrace) -> Process:
        """Start a kernel; returns a process that completes when all
        wavefronts have finished."""
        if not self.enabled:
            from repro.errors import AcceleratorDisabledError

            raise AcceleratorDisabledError(f"{self.accel_id} is disabled")
        if asid not in self.asids:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"asid {asid} is not attached to {self.accel_id}"
            )
        if trace.num_cus > self.geometry.num_cus:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"trace uses {trace.num_cus} CUs; GPU has {self.geometry.num_cus}"
            )
        self._kernels.inc()
        wavefront_procs = []
        for cu_index, wavefronts in enumerate(trace.cu_wavefronts):
            for wf_ops in wavefronts:
                wavefront_procs.append(
                    self.engine.process(
                        self._run_wavefront(asid, cu_index, wf_ops),
                        name=f"{self.accel_id}-cu{cu_index}-wf",
                    )
                )

        def _barrier() -> Generator:
            yield self.engine.all_of(wavefront_procs)
            return None

        return self.engine.process(_barrier(), name=f"{self.accel_id}-kernel")

    def run_kernel(self, asid: int, trace: KernelTrace) -> int:
        """Synchronous convenience: run to completion, return elapsed ticks."""
        start = self.engine.now
        done = self.launch(asid, trace)
        self.engine.run()
        if not done.triggered:
            from repro.sim.engine import SimulationError

            raise SimulationError("kernel did not complete (deadlock?)")
        self.last_kernel_ticks = self.engine.now - start
        return self.last_kernel_ticks

    def _run_wavefront(
        self, asid: int, cu_index: int, ops: Sequence[Op]
    ) -> Generator:
        issue = self._issue_ports[cu_index]
        clock = self.clock
        mlp = max(1, self.geometry.mlp)
        outstanding: List[Process] = []
        for gap, vaddr, write in ops:
            if gap:
                yield clock.cycles_to_ticks(gap)
            if vaddr is None:
                continue
            if not self.enabled:
                break  # the OS pulled the plug mid-kernel
            if len(outstanding) >= mlp:
                oldest = outstanding.pop(0)
                if not oldest.triggered:
                    yield oldest
            while self._quiesce_depth > 0:
                # Held for a permission downgrade: wait for the resume.
                yield self._resume_event
            if self._stall_until > self.engine.now:
                # Post-resume pipeline restart delay.
                yield self._stall_until - self.engine.now
            delay = issue.request(1)  # one memory instruction per CU cycle
            if delay:
                yield delay
            while self._quiesce_depth > 0:
                # The downgrade began while we waited for an issue slot;
                # re-gate so the op translates after the shootdown.
                yield self._resume_event
            self._ops.inc()
            (self._stores if write else self._loads).inc()
            outstanding.append(
                self.engine.process(
                    self._do_op(cu_index, asid, vaddr, write),
                    name=f"{self.accel_id}-op",
                )
            )
        for pending in outstanding:
            if not pending.triggered:
                yield pending

    def _do_op(self, cu_index: int, asid: int, vaddr: int, write: bool) -> Generator:
        self._inflight += 1
        try:
            if write:
                result = yield from self.path.mem_op(
                    cu_index, asid, vaddr, True, _payload_for(vaddr)
                )
            else:
                result = yield from self.path.mem_op(cu_index, asid, vaddr, False)
        finally:
            self._inflight -= 1
        if result is None:
            self._blocked.inc()
        return result

    # -- kernel-facing maintenance (AcceleratorBase protocol) -----------------

    def shootdown(self, asid: int, vpn: Optional[int] = None) -> None:
        self.path.shootdown(asid, vpn)

    def drain(self, ticks: int) -> None:
        self._stall_until = max(self._stall_until, self.engine.now + ticks)

    def quiesce_g(self, drain_ticks: int) -> Generator:
        """Hold issue, wait for outstanding requests, stay held (§3.2.4)."""
        self._quiesce_depth += 1
        poll = max(1, drain_ticks // 4) if drain_ticks else 1000
        while self._inflight > 0:
            yield poll
        if drain_ticks:
            yield drain_ticks  # pipeline quiesce on top of the drain
        return None

    def resume(self) -> None:
        if self._quiesce_depth == 0:
            return
        self._quiesce_depth -= 1
        if self._quiesce_depth == 0:
            event, self._resume_event = self._resume_event, self.engine.event()
            event.succeed()

    def flush_caches(self) -> Generator:
        written = yield from self.path.flush_caches()
        return written

    def flush_pages(self, ppns: Iterable[int]) -> Generator:
        written = yield from self.path.flush_pages(ppns)
        return written

    def reset(self, epoch: int) -> None:
        """A hardware reset loses the device's volatile state: cached
        lines (dirty data included) are discarded, not written back —
        whatever the pre-reset device had queued outbound replays under
        the old epoch and dies at the border fence."""
        for cache in getattr(self.path, "l1_caches", []):
            cache.invalidate_all()
        l2 = getattr(self.path, "l2_cache", None)
        if l2 is not None:
            l2.invalidate_all()
        super().reset(epoch)

    # -- reporting ---------------------------------------------------------

    @property
    def mem_ops(self) -> int:
        return self._ops.value

    @property
    def blocked_ops(self) -> int:
        return self._blocked.value

    def last_kernel_cycles(self) -> float:
        return self.clock.ticks_to_cycles(self.last_kernel_ticks)
