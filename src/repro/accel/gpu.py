"""The GPGPU model — the paper's stress-test accelerator (§5.1).

The GPU executes *kernel traces*: per-compute-unit, per-wavefront streams
of coalesced, block-granular memory operations separated by compute
gaps. Each wavefront is a simulation process; a compute unit issues at
most one memory instruction per cycle. Latency tolerance is emergent:
the highly threaded configuration (8 CUs, many wavefronts) overlaps
memory latency across contexts, while the moderately threaded one (1 CU,
few wavefronts) cannot — reproducing the sensitivity split in Fig. 4.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Generator, Iterable, List, Optional, Sequence, Tuple

from repro.accel.base import AcceleratorBase
from repro.mem.address import BLOCK_MASK, BLOCK_SIZE, PAGE_SHIFT
from repro.sim import batch as _batch
from repro.sim.clock import Clock
from repro.sim.engine import (
    _KIND_CALL_VALUE,
    BandwidthServer,
    Engine,
    Event,
    Process,
)
from repro.sim.clock import TICKS_PER_SECOND
from repro.sim.stats import StatDomain

__all__ = ["GPU", "GPUGeometry", "KernelTrace", "Op"]

# One wavefront operation: (compute-gap cycles, vaddr or None, is_write).
# vaddr None means a pure compute segment.
Op = Tuple[int, Optional[int], bool]


@dataclass(frozen=True)
class GPUGeometry:
    """Structural parameters (Table 3)."""

    num_cus: int = 8
    l1_tlb_entries: int = 64
    # Outstanding memory operations per wavefront: GPU loads are
    # non-blocking until first use, giving each context a little
    # memory-level parallelism on top of wavefront interleaving.
    mlp: int = 2
    # Coalesced memory instructions a CU's load/store pipes accept per
    # cycle (GCN-class CUs have multiple vector memory pipes).
    issue_per_cycle: int = 2

    @classmethod
    def highly_threaded(cls) -> "GPUGeometry":
        return cls(num_cus=8)

    @classmethod
    def moderately_threaded(cls) -> "GPUGeometry":
        return cls(num_cus=1)


@dataclass
class KernelTrace:
    """A workload's memory behavior, already coalesced to 128 B blocks."""

    name: str
    cu_wavefronts: List[List[List[Op]]]  # [cu][wavefront][op]
    footprint_pages: int = 0
    # Structure-of-arrays mirror of ``cu_wavefronts`` for the vector
    # execution tier (``repro.sim.batch.TraceSoA`` per wavefront), built
    # lazily from — and therefore bit-identical to — the tuple streams.
    # ``None`` until requested, or when numpy is unavailable.
    soa: Optional[list] = field(default=None, repr=False, compare=False)

    def ensure_soa(self) -> Optional[list]:
        """Materialize (once) the SoA mirror of the op streams."""
        if self.soa is None:
            self.soa = _batch.build_trace_soa(self.cu_wavefronts)
        return self.soa

    @property
    def num_cus(self) -> int:
        return len(self.cu_wavefronts)

    @property
    def total_mem_ops(self) -> int:
        return sum(
            sum(1 for op in wf if op[1] is not None)
            for cu in self.cu_wavefronts
            for wf in cu
        )

    @property
    def total_compute_cycles(self) -> int:
        return sum(
            op[0] for cu in self.cu_wavefronts for wf in cu for op in wf
        )


def _payload_for(vaddr: int) -> bytes:
    """Deterministic 128 B store payload derived from the address."""
    return (vaddr & (2**64 - 1)).to_bytes(8, "little") * (BLOCK_SIZE // 8)


class GPU(AcceleratorBase):
    """A GPGPU replaying kernel traces through a memory path."""

    def __init__(
        self,
        engine: Engine,
        clock: Clock,
        geometry: GPUGeometry,
        path,
        stats: Optional[StatDomain] = None,
        accel_id: str = "gpu0",
    ) -> None:
        super().__init__(accel_id)
        self.engine = engine
        self.clock = clock
        self.geometry = geometry
        self.path = path
        self.stats = stats or StatDomain(accel_id)
        self._issue_ports = [
            BandwidthServer(
                engine,
                # One "op byte" per issue slot per cycle.
                bytes_per_second=clock.freq_hz * geometry.issue_per_cycle,
                ticks_per_second=TICKS_PER_SECOND,
            )
            for _ in range(geometry.num_cus)
        ]
        self._ops = self.stats.counter("mem_ops")
        self._loads = self.stats.counter("loads")
        self._stores = self.stats.counter("stores")
        self._blocked = self.stats.counter("blocked_ops")
        self._kernels = self.stats.counter("kernels")
        self.last_kernel_ticks: int = 0
        self._stall_until: int = 0
        self._inflight: int = 0
        self._quiesce_depth: int = 0
        self._resume_event = engine.event()
        # Vector-tier state (rebound on every launch; see launch()).
        self._vec_on: bool = False
        self._vec_tlbs = None
        self._vec_caches = None
        self._vec_table = None
        self._vec_bcc = None
        self._vec_dispatchers = None

    # -- execution --------------------------------------------------------

    def launch(self, asid: int, trace: KernelTrace) -> Process:
        """Start a kernel; returns a process that completes when all
        wavefronts have finished."""
        if not self.enabled:
            from repro.errors import AcceleratorDisabledError

            raise AcceleratorDisabledError(f"{self.accel_id} is disabled")
        if asid not in self.asids:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"asid {asid} is not attached to {self.accel_id}"
            )
        if trace.num_cus > self.geometry.num_cus:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"trace uses {trace.num_cus} CUs; GPU has {self.geometry.num_cus}"
            )
        self._kernels.inc()
        # The REPRO_VECTOR gate is re-read on every launch so a warm-reused
        # System honors mode flips between runs. The flattened read path
        # and the batch drain both need the per-CU L1 structures.
        batch_context = getattr(self.path, "batch_context", None)
        self._vec_on = (
            _batch.vector_enabled()
            # Subclasses that customize per-op semantics (e.g. the chaos
            # harness's HangingAccelerator counts ops toward a wedge in
            # _do_op) must see every op; the flattened hit path would
            # bypass their hook. Such devices run the scalar oracle.
            and type(self)._do_op is GPU._do_op
            and batch_context is not None
            and getattr(self.path, "fast_read", None) is not None
        )
        soa = None
        if self._vec_on:
            # The table is the defense-in-depth permission gate for the
            # batch drain (None when the safety mode carries none).
            (
                self._vec_tlbs,
                self._vec_caches,
                self._vec_table,
                self._vec_bcc,
            ) = batch_context()
            soa = trace.ensure_soa()
            self._vec_dispatchers = [
                self._make_vec_dispatch(cu, asid)
                for cu in range(min(trace.num_cus, self.geometry.num_cus))
            ]
        else:
            self._vec_dispatchers = None
        wavefront_procs = []
        for cu_index, wavefronts in enumerate(trace.cu_wavefronts):
            for wf_index, wf_ops in enumerate(wavefronts):
                wavefront_procs.append(
                    self.engine.process(
                        self._run_wavefront(
                            asid,
                            cu_index,
                            wf_ops,
                            soa[cu_index][wf_index] if soa is not None else None,
                        ),
                        name=f"{self.accel_id}-cu{cu_index}-wf",
                    )
                )

        def _barrier() -> Generator:
            yield self.engine.all_of(wavefront_procs)
            return None

        return self.engine.process(_barrier(), name=f"{self.accel_id}-kernel")

    def run_kernel(self, asid: int, trace: KernelTrace) -> int:
        """Synchronous convenience: run to completion, return elapsed ticks."""
        start = self.engine.now
        done = self.launch(asid, trace)
        self.engine.run()
        if not done.triggered:
            from repro.sim.engine import SimulationError

            raise SimulationError("kernel did not complete (deadlock?)")
        self.last_kernel_ticks = self.engine.now - start
        return self.last_kernel_ticks

    def _run_wavefront(
        self,
        asid: int,
        cu_index: int,
        ops: Sequence[Op],
        soa=None,
    ) -> Generator:
        issue = self._issue_ports[cu_index]
        clock = self.clock
        engine = self.engine
        queue = engine._queue
        ready = engine._ready
        ready_append = ready.append
        period = clock.period_ticks
        mlp = max(1, self.geometry.mlp)
        # Mixed FIFO of in-flight work: live op Processes (or flattened op
        # Events) plus integer completion-time tokens left behind by
        # batched fast-forwarding. A token ``t`` stands for an op that is
        # known to complete at tick ``t``; waiting on it is a plain timer
        # sleep to ``t``.
        outstanding: deque = deque()
        fast_read = getattr(self.path, "fast_read", None)
        hit_latency = (
            self.path.fast_read_latency(cu_index) if fast_read is not None else 0
        )
        vec_on = (
            self._vec_on
            and fast_read is not None
            and self._vec_dispatchers is not None
        )
        vec_dispatch = self._vec_dispatchers[cu_index] if vec_on else None
        ops_counter = self._ops
        loads = self._loads
        stores = self._stores
        spawn = engine.process
        op_name = f"{self.accel_id}-op"
        can_batch = fast_read is not None
        # Inlined issue-port constants (BandwidthServer.request(1) — keep
        # in lockstep with that method). ``iss_den == 1`` covers every
        # integral ticks-per-byte rate (the GPU clock configs), where the
        # half-even rounding collapses to identity.
        iss_den = issue._tick_den
        iss_cost = issue._tick_num
        iss_simple = iss_den == 1
        iss_inv_bpt = 1.0 / issue.bytes_per_tick
        n = len(ops)
        i = 0
        while i < n:
            # A batch attempt is doomed unless the earliest foreign entry
            # lies beyond the cheapest possible op completion (now +
            # hit latency) — skip the preview/probe work entirely when
            # another actor is due first (the common case under high
            # wavefront concurrency). ``not ready`` + the heap-head check
            # is exactly next_event_time() > now + hit_latency: the guard
            # covers *all* ready actors at the current tick, not just this
            # wavefront. Conditions ordered cheapest-reject-first.
            if (
                not ready
                and can_batch
                and (not queue or queue[0][0] > engine.now + hit_latency)
                and self.enabled
                and self._quiesce_depth == 0
            ):
                if vec_on and soa is not None:
                    i, target = self._batch_drain(
                        ops, soa, i, asid, cu_index, issue, clock,
                        outstanding, mlp, hit_latency,
                    )
                else:
                    i, target = self._fast_forward(
                        ops, i, asid, cu_index, issue, clock, outstanding,
                        mlp, fast_read, hit_latency,
                    )
                if target > engine.now:
                    yield target - engine.now
                if i >= n:
                    break
            gap, vaddr, write = ops[i]
            i += 1
            if gap:
                # Trace gaps are integer cycles; gap * period is exactly
                # cycles_to_ticks(gap) then (int(round()) is identity on
                # ints). Non-int gaps from hand-built traces take the
                # rounding call.
                yield gap * period if gap.__class__ is int else clock.cycles_to_ticks(gap)
            if vaddr is None:
                continue
            if not self.enabled:
                break  # the OS pulled the plug mid-kernel
            if len(outstanding) >= mlp:
                oldest = outstanding.popleft()
                if oldest.__class__ is int:
                    if oldest > engine.now:
                        yield oldest - engine.now
                elif not oldest.triggered:
                    yield oldest
            while self._quiesce_depth > 0:
                # Held for a permission downgrade: wait for the resume.
                yield self._resume_event
            if self._stall_until > engine.now:
                # Post-resume pipeline restart delay.
                yield self._stall_until - engine.now
            # Inlined issue.request(1) — one memory instruction per CU
            # cycle. Keep in lockstep with BandwidthServer.request; the
            # ``iss_simple`` arm is the den == 1 specialization where
            # rounding is the identity and the delay is always positive.
            if iss_simple:
                now = engine.now
                free = issue._free_num
                free = (free if free > now else now) + iss_cost
                issue._free_num = free
                issue.bytes_served += 1
                issue.busy_ticks += iss_inv_bpt
                yield free - now
            else:
                delay = issue.request(1)
                if delay:
                    yield delay
            while self._quiesce_depth > 0:
                # The downgrade began while we waited for an issue slot;
                # re-gate so the op translates after the shootdown.
                yield self._resume_event
            ops_counter.value += 1
            if write:
                stores.value += 1
                outstanding.append(
                    spawn(self._do_op(cu_index, asid, vaddr, True), name=op_name)
                )
            else:
                loads.value += 1
                if vec_on:
                    # Flattened read: no Process, no generator chain. The
                    # dispatch entry lands at the exact ready position the
                    # spawned op's first step would take, and every later
                    # push happens at the same global (when, seq) rank —
                    # see _make_vec_dispatch for the step-by-step mapping.
                    evt = Event.__new__(Event)
                    evt._engine = engine
                    evt._waiters = None
                    evt.triggered = False
                    evt.value = None
                    ready_append((_KIND_CALL_VALUE, vec_dispatch, (vaddr, evt)))
                    outstanding.append(evt)
                else:
                    outstanding.append(
                        spawn(self._do_op(cu_index, asid, vaddr, False), name=op_name)
                    )
        for pending in outstanding:
            if pending.__class__ is int:
                if pending > engine.now:
                    yield pending - engine.now
            elif not pending.triggered:
                yield pending

    def _fast_forward(
        self,
        ops: Sequence[Op],
        i: int,
        asid: int,
        cu_index: int,
        issue: BandwidthServer,
        clock: Clock,
        outstanding: deque,
        mlp: int,
        fast_read,
        hit_latency: int,
    ) -> Tuple[int, int]:
        """Batch-replay a run of pure-hit reads in zero engine wakeups.

        Consumes ops starting at ``i`` for as long as each is either a
        pure compute gap or a read that hits both the L1 TLB and the L1
        cache, committing the exact side effects the per-op path would
        (issue-port reservations, TLB/L1 recency + hit counters, op
        counters) at their exact projected times, and recording each op's
        completion as an integer token in ``outstanding``. Returns
        ``(next_unconsumed_index, wavefront_time)``; the caller sleeps to
        ``wavefront_time`` in a single yield.

        Exactness proof sketch — batching never reorders border-visible
        events:

        * **Horizon.** ``guard`` is the earliest entry in the engine queue
          when the batch starts. While the batch runs, no other actor
          executes, so the queue gains nothing earlier. Every committed
          effect is timestamped strictly *before* ``guard`` (checked per
          op via its completion time ``t3 >= guard`` → stop), so no other
          actor could have observed, or interleaved with, the skipped
          intermediate states: committing them eagerly is observationally
          equivalent to the per-op interleaving.
        * **Program order.** Within the batch, per-op commit times are
          monotonic per structure (issue reservations at ``t1``, TLB
          touches at ``t2``, L1 touches at ``t3``), matching per-op
          execution; commits to *different* structures commute.
        * **Border invisibility.** A batched op is, by construction, an
          L1 read hit — it never leaves the CU, so no border-visible
          event is generated at all; the first op that would cross (any
          write — the L1s are write-through — or any miss) ends the batch
          *before* committing anything and replays through the normal
          generator path.
        * **State gates.** ``enabled``/``_quiesce_depth``/``_stall_until``
          can only change from other actors' entries, all ``>= guard``,
          so checking them once at batch entry is exact; mlp gating that
          would wait on a *live* op process ends the batch (the normal
          path performs that wait), while waits on completion tokens are
          pure ``max`` arithmetic.
        """
        engine = self.engine
        guard = engine.next_event_time()
        t = engine.now
        n = len(ops)
        stall = self._stall_until
        ops_counter = self._ops
        loads = self._loads
        period = clock.period_ticks
        while i < n:
            gap, vaddr, write = ops[i]
            if gap:
                # Same int fast path as the generator loop — identical ticks.
                t1 = t + (
                    gap * period
                    if gap.__class__ is int
                    else clock.cycles_to_ticks(gap)
                )
            else:
                t1 = t
            if vaddr is None:
                # Pure compute: only time advances. Past the horizon another
                # actor could change the issue gates before the next op, so
                # hand back to the generator path without consuming it.
                if guard is not None and t1 >= guard:
                    break
                t = t1
                i += 1
                continue
            if write:
                break  # write-through L1s: stores always cross downstream
            if len(outstanding) >= mlp:
                head = outstanding[0]
                if head.__class__ is int:
                    if head > t1:
                        t1 = head  # wait for the token's known completion
                elif not head.triggered:
                    break  # live op still in flight: the real wait happens
                # a triggered live process is popped with no wait (below)
            if stall > t1:
                t1 = stall
            delay, free = issue.preview(t1, 1)
            t2 = t1 + delay
            t3 = t2 + hit_latency
            if guard is not None and t3 >= guard:
                break
            if fast_read(cu_index, asid, vaddr) is None:
                break  # TLB or L1 miss — nothing committed, full path runs
            # -- commit: from here the op is taken, exactly as the per-op
            # path would have taken it at these times.
            if len(outstanding) >= mlp:
                outstanding.popleft()
            issue.commit(free, 1)
            ops_counter.value += 1
            loads.value += 1
            outstanding.append(t3)
            t = t2
            i += 1
        return i, t

    # -- flattened vector-tier read path ----------------------------------
    #
    # Under REPRO_VECTOR=1 a read op does not spawn a Process at all. The
    # scalar pipeline for an L1-hit read is:
    #
    #   t2 (ready drain): _do_op first step — TLB lookup, paddr/size,
    #       cache.access prologue, ``yield hit_latency`` (one heap push);
    #   t3 (heap pop): hit/miss decision — on a hit, recency + counter
    #       commit, StopIteration, Process.succeed wakes the wavefront.
    #
    # The flattened path replays that schedule with bare engine entries:
    # a dispatch entry at the same ready position (t2) does the TLB work
    # and pushes a commit entry at the same heap position (t3); the commit
    # entry makes the hit/miss decision *at t3*, exactly where the scalar
    # oracle makes it, so interleaved evictions/fills between t2 and t3
    # are observed identically. Every push happens at the same global
    # (when, seq) rank as its scalar counterpart, so same-tick tie-breaks
    # cannot flip. Misses (TLB at t2, cache at t3) fall back to the scalar
    # generators *from the same queue position*, reusing the very code
    # objects of the oracle path.

    def _make_vec_dispatch(self, cu_index: int, asid: int):
        """Build this CU's flattened-op dispatch entry point.

        All per-op state — TLB entry dict, cache sets, counters, engine
        queue internals — is bound into the closure once per launch, so
        the per-op path is pure local-variable work.
        """
        tlb = self._vec_tlbs[cu_index]
        cache = self._vec_caches[cu_index]
        entries = tlb._entries
        entries_get = entries.get
        entries_move = entries.move_to_end
        tlb_hits = tlb._hits
        engine = self.engine
        queue = engine._queue
        ready_append = engine._ready.append
        seqnext = engine._seq.__next__
        push = heapq.heappush
        sets = cache._sets
        cache_hits = cache._hits
        block_mask_inv = ~cache._block_mask
        block_size = cache._block_size
        shift = cache._block_shift
        nsets = cache._num_sets
        lat = cache._hit_latency
        stats = _batch.STATS
        gpu = self

        def commit(payload) -> None:
            # At t3, the exact heap-pop position of the scalar op's
            # post-latency resume: the hit/miss decision happens HERE,
            # exactly where Cache._after_latency makes it.
            block_addr, offset, size, evt = payload
            cache_set = sets[(block_addr >> shift) % nsets]
            line = cache_set.get(block_addr)
            if line is not None:
                # The hit path of Cache._after_latency, inlined.
                cache_set.move_to_end(block_addr)
                cache_hits.value += 1
                gpu._inflight -= 1
                evt.succeed(line)
                return
            # The line left the cache between dispatch and the
            # hit-latency boundary (eviction, flush, downgrade, reset).
            # Run the scalar post-latency path — the same code object the
            # oracle runs — from this exact queue position.
            gpu._vec_spawn_inline(
                gpu._vec_late(cache, block_addr, offset, size, evt)
            )

        def dispatch(payload) -> None:
            # At t2, the exact ready-drain position of the scalar op's
            # first step (_do_op): TLB work + the t3 heap push.
            vaddr, evt = payload
            vpn = vaddr >> PAGE_SHIFT
            key = (asid, vpn, False)
            entry = entries_get(key)
            if entry is None:
                key = (asid, vpn & ~0x1FF, True)
                entry = entries_get(key)
                if entry is None:
                    # TLB miss: the full scalar op runs from this exact
                    # queue position (its lookup() counts the miss once).
                    gpu._vec_spawn_inline(
                        gpu._vec_full(cu_index, asid, vaddr, evt)
                    )
                    return
            paddr = ((entry.ppn + vpn - entry.vpn) << PAGE_SHIFT) | (vaddr & 0xFFF)
            size = BLOCK_SIZE - (paddr & BLOCK_MASK)
            block_addr = paddr & block_mask_inv
            offset = paddr - block_addr
            if offset + size > block_size:
                # Block-geometry mismatch: the scalar path raises (or
                # handles) it exactly as the oracle would.
                gpu._vec_spawn_inline(gpu._vec_full(cu_index, asid, vaddr, evt))
                return
            # Commit the TLB hit (recency + counter), exactly lookup()'s
            # hit path, at the same instant the scalar op commits it.
            entries_move(key)
            tlb_hits.value += 1
            gpu._inflight += 1
            stats.ops_flattened += 1
            if lat:
                push(
                    queue,
                    (
                        engine.now + lat,
                        seqnext(),
                        _KIND_CALL_VALUE,
                        commit,
                        (block_addr, offset, size, evt),
                    ),
                )
            else:
                # hit_latency 0 == the scalar ``yield 0``: a ready entry.
                ready_append(
                    (_KIND_CALL_VALUE, commit, (block_addr, offset, size, evt))
                )

        return dispatch

    def _vec_spawn_inline(self, gen: Generator) -> None:
        """Start ``gen`` as a process and run its first step *now*.

        The scalar path's first step runs at the current dispatch
        position (its spawn entry is what the flattened entry replaced),
        so stepping synchronously preserves the global entry order.
        """
        proc = Process.__new__(Process)
        proc._engine = self.engine
        proc._waiters = None
        proc.triggered = False
        proc.value = None
        proc._gen = gen
        proc.name = f"{self.accel_id}-op"
        proc._step(None)

    def _vec_full(self, cu_index: int, asid: int, vaddr: int, evt: Event) -> Generator:
        result = yield from self._do_op(cu_index, asid, vaddr, False)
        evt.succeed(result)

    def _vec_late(self, cache, block_addr, offset, size, evt) -> Generator:
        try:
            result = yield from cache._after_latency(
                block_addr, offset, size, False, None
            )
        finally:
            self._inflight -= 1
        if result is None:
            self._blocked.inc()
        evt.succeed(result)

    # -- vectorized batch drain -------------------------------------------

    _BATCH_WINDOW = 512

    def _batch_drain(
        self,
        ops: Sequence[Op],
        soa,
        i: int,
        asid: int,
        cu_index: int,
        issue: BandwidthServer,
        clock: Clock,
        outstanding: deque,
        mlp: int,
        hit_latency: int,
    ) -> Tuple[int, int]:
        """Vectorized :meth:`_fast_forward`: one classification pass, then
        an exact integer-arithmetic commit loop.

        Instead of probing TLB and L1 per op, a whole window of upcoming
        ops is classified in single numpy passes over memoized residency
        snapshots (see :mod:`repro.sim.batch`). This is observation-safe
        under the same horizon guard as the scalar fast path, with one
        addition: because a batch consists only of L1 read hits, residency
        cannot change mid-batch, so a snapshot taken at batch entry is
        valid for the whole run. Recency touches and hit counters are
        committed in bulk (last-touch order — equivalent to the per-op
        sequence); per-op *timing* stays exact scalar integer arithmetic
        (issue-port previews, completion tokens, the guard check).
        """
        engine = self.engine
        guard = engine.next_event_time()
        stats = _batch.STATS
        stats.batches_attempted += 1
        fallbacks = stats.fallbacks
        n = len(ops)
        end = i + self._BATCH_WINDOW
        if end > n:
            end = n
        window_vaddrs = soa.vaddrs[i:end]
        window_writes = soa.is_write[i:end]
        tlb = self._vec_tlbs[cu_index]
        cache = self._vec_caches[cu_index]
        batchable, blocks, small_hit, perm_ok = _batch.classify_window(
            tlb,
            cache,
            asid,
            window_vaddrs,
            bcc=self._vec_bcc,
            table=self._vec_table,
        )
        run = _batch.batchable_run_length(batchable, window_writes)
        if run < len(window_vaddrs):
            # Attribute the abort before (maybe) committing the prefix.
            if window_writes[run]:
                fallbacks["write"] += 1
            elif not perm_ok[run]:
                fallbacks["perm"] += 1
            else:
                fallbacks["miss"] += 1
        t = engine.now
        stall = self._stall_until
        period = clock.period_ticks
        j = 0
        while j < run:
            gap, vaddr, _write = ops[i + j]
            if gap:
                t1 = t + (
                    gap * period
                    if gap.__class__ is int
                    else clock.cycles_to_ticks(gap)
                )
            else:
                t1 = t
            if vaddr is None:
                if guard is not None and t1 >= guard:
                    fallbacks["horizon"] += 1
                    break
                t = t1
                j += 1
                continue
            if len(outstanding) >= mlp:
                head = outstanding[0]
                if head.__class__ is int:
                    if head > t1:
                        t1 = head
                elif not head.triggered:
                    fallbacks["mlp"] += 1
                    break  # live op still in flight: the real wait happens
            if stall > t1:
                t1 = stall
            delay, free = issue.preview(t1, 1)
            t2 = t1 + delay
            t3 = t2 + hit_latency
            if guard is not None and t3 >= guard:
                fallbacks["horizon"] += 1
                break
            # The op is taken (classification proved the hit): commit the
            # timing side exactly as the per-op path would.
            if len(outstanding) >= mlp:
                outstanding.popleft()
            issue.commit(free, 1)
            outstanding.append(t3)
            t = t2
            j += 1
        if j:
            consumed = window_vaddrs[:j]
            mem_mask = consumed >= 0
            m = int(mem_mask.sum())
            if m:
                vpns = (consumed >> PAGE_SHIFT)[mem_mask]
                _batch.commit_tlb_hits(tlb, asid, vpns, small_hit[:j][mem_mask], m)
                _batch.commit_cache_hits(cache, blocks[:j][mem_mask], m)
                self._ops.value += m
                self._loads.value += m
                stats.ops_batched += m
            stats.batches_committed += 1
        return i + j, t

    def _do_op(self, cu_index: int, asid: int, vaddr: int, write: bool) -> Generator:
        self._inflight += 1
        try:
            if write:
                result = yield from self.path.mem_op(
                    cu_index, asid, vaddr, True, _payload_for(vaddr)
                )
            else:
                result = yield from self.path.mem_op(cu_index, asid, vaddr, False)
        finally:
            self._inflight -= 1
        if result is None:
            self._blocked.inc()
        return result

    # -- kernel-facing maintenance (AcceleratorBase protocol) -----------------

    def shootdown(self, asid: int, vpn: Optional[int] = None) -> None:
        self.path.shootdown(asid, vpn)

    def drain(self, ticks: int) -> None:
        self._stall_until = max(self._stall_until, self.engine.now + ticks)

    def quiesce_g(self, drain_ticks: int) -> Generator:
        """Hold issue, wait for outstanding requests, stay held (§3.2.4)."""
        self._quiesce_depth += 1
        poll = max(1, drain_ticks // 4) if drain_ticks else 1000
        while self._inflight > 0:
            yield poll
        if drain_ticks:
            yield drain_ticks  # pipeline quiesce on top of the drain
        return None

    def resume(self) -> None:
        if self._quiesce_depth == 0:
            return
        self._quiesce_depth -= 1
        if self._quiesce_depth == 0:
            event, self._resume_event = self._resume_event, self.engine.event()
            event.succeed()

    def flush_caches(self) -> Generator:
        written = yield from self.path.flush_caches()
        return written

    def flush_pages(self, ppns: Iterable[int]) -> Generator:
        written = yield from self.path.flush_pages(ppns)
        return written

    def reset(self, epoch: int) -> None:
        """A hardware reset loses the device's volatile state: cached
        lines (dirty data included) are discarded, not written back —
        whatever the pre-reset device had queued outbound replays under
        the old epoch and dies at the border fence."""
        for cache in getattr(self.path, "l1_caches", []):
            cache.invalidate_all()
        l2 = getattr(self.path, "l2_cache", None)
        if l2 is not None:
            l2.invalidate_all()
        super().reset(epoch)

    def reset_for_reuse(self) -> None:
        """Warm-reuse reset (not the modeled hardware reset): restore the
        device to its post-construction state. The engine queue was reset
        by the owning System, so in-flight wavefronts are already gone."""
        for port in self._issue_ports:
            port.reset()
        self.last_kernel_ticks = 0
        self._stall_until = 0
        self._inflight = 0
        self._quiesce_depth = 0
        self._resume_event = self.engine.event()
        self.enabled = True
        self.epoch = 0
        self.asids.clear()
        self.sandboxes.clear()
        # Vector-tier bindings are per-launch; a warm-reused GPU must not
        # carry batch state (snapshots die with their structures' reset()).
        self._vec_on = False
        self._vec_tlbs = None
        self._vec_caches = None
        self._vec_table = None
        self._vec_bcc = None
        self._vec_dispatchers = None

    # -- reporting ---------------------------------------------------------

    @property
    def mem_ops(self) -> int:
        return self._ops.value

    @property
    def blocked_ops(self) -> int:
        return self._blocked.value

    def last_kernel_cycles(self) -> float:
        return self.clock.ticks_to_cycles(self.last_kernel_ticks)
