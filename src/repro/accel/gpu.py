"""The GPGPU model — the paper's stress-test accelerator (§5.1).

The GPU executes *kernel traces*: per-compute-unit, per-wavefront streams
of coalesced, block-granular memory operations separated by compute
gaps. Each wavefront is a simulation process; a compute unit issues at
most one memory instruction per cycle. Latency tolerance is emergent:
the highly threaded configuration (8 CUs, many wavefronts) overlaps
memory latency across contexts, while the moderately threaded one (1 CU,
few wavefronts) cannot — reproducing the sensitivity split in Fig. 4.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Generator, Iterable, List, Optional, Sequence, Tuple

from repro.accel.base import AcceleratorBase
from repro.mem.address import BLOCK_SIZE
from repro.sim.clock import Clock
from repro.sim.engine import BandwidthServer, Engine, Process
from repro.sim.clock import TICKS_PER_SECOND
from repro.sim.stats import StatDomain

__all__ = ["GPU", "GPUGeometry", "KernelTrace", "Op"]

# One wavefront operation: (compute-gap cycles, vaddr or None, is_write).
# vaddr None means a pure compute segment.
Op = Tuple[int, Optional[int], bool]


@dataclass(frozen=True)
class GPUGeometry:
    """Structural parameters (Table 3)."""

    num_cus: int = 8
    l1_tlb_entries: int = 64
    # Outstanding memory operations per wavefront: GPU loads are
    # non-blocking until first use, giving each context a little
    # memory-level parallelism on top of wavefront interleaving.
    mlp: int = 2
    # Coalesced memory instructions a CU's load/store pipes accept per
    # cycle (GCN-class CUs have multiple vector memory pipes).
    issue_per_cycle: int = 2

    @classmethod
    def highly_threaded(cls) -> "GPUGeometry":
        return cls(num_cus=8)

    @classmethod
    def moderately_threaded(cls) -> "GPUGeometry":
        return cls(num_cus=1)


@dataclass
class KernelTrace:
    """A workload's memory behavior, already coalesced to 128 B blocks."""

    name: str
    cu_wavefronts: List[List[List[Op]]]  # [cu][wavefront][op]
    footprint_pages: int = 0

    @property
    def num_cus(self) -> int:
        return len(self.cu_wavefronts)

    @property
    def total_mem_ops(self) -> int:
        return sum(
            sum(1 for op in wf if op[1] is not None)
            for cu in self.cu_wavefronts
            for wf in cu
        )

    @property
    def total_compute_cycles(self) -> int:
        return sum(
            op[0] for cu in self.cu_wavefronts for wf in cu for op in wf
        )


def _payload_for(vaddr: int) -> bytes:
    """Deterministic 128 B store payload derived from the address."""
    return (vaddr & (2**64 - 1)).to_bytes(8, "little") * (BLOCK_SIZE // 8)


class GPU(AcceleratorBase):
    """A GPGPU replaying kernel traces through a memory path."""

    def __init__(
        self,
        engine: Engine,
        clock: Clock,
        geometry: GPUGeometry,
        path,
        stats: Optional[StatDomain] = None,
        accel_id: str = "gpu0",
    ) -> None:
        super().__init__(accel_id)
        self.engine = engine
        self.clock = clock
        self.geometry = geometry
        self.path = path
        self.stats = stats or StatDomain(accel_id)
        self._issue_ports = [
            BandwidthServer(
                engine,
                # One "op byte" per issue slot per cycle.
                bytes_per_second=clock.freq_hz * geometry.issue_per_cycle,
                ticks_per_second=TICKS_PER_SECOND,
            )
            for _ in range(geometry.num_cus)
        ]
        self._ops = self.stats.counter("mem_ops")
        self._loads = self.stats.counter("loads")
        self._stores = self.stats.counter("stores")
        self._blocked = self.stats.counter("blocked_ops")
        self._kernels = self.stats.counter("kernels")
        self.last_kernel_ticks: int = 0
        self._stall_until: int = 0
        self._inflight: int = 0
        self._quiesce_depth: int = 0
        self._resume_event = engine.event()

    # -- execution --------------------------------------------------------

    def launch(self, asid: int, trace: KernelTrace) -> Process:
        """Start a kernel; returns a process that completes when all
        wavefronts have finished."""
        if not self.enabled:
            from repro.errors import AcceleratorDisabledError

            raise AcceleratorDisabledError(f"{self.accel_id} is disabled")
        if asid not in self.asids:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"asid {asid} is not attached to {self.accel_id}"
            )
        if trace.num_cus > self.geometry.num_cus:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"trace uses {trace.num_cus} CUs; GPU has {self.geometry.num_cus}"
            )
        self._kernels.inc()
        wavefront_procs = []
        for cu_index, wavefronts in enumerate(trace.cu_wavefronts):
            for wf_ops in wavefronts:
                wavefront_procs.append(
                    self.engine.process(
                        self._run_wavefront(asid, cu_index, wf_ops),
                        name=f"{self.accel_id}-cu{cu_index}-wf",
                    )
                )

        def _barrier() -> Generator:
            yield self.engine.all_of(wavefront_procs)
            return None

        return self.engine.process(_barrier(), name=f"{self.accel_id}-kernel")

    def run_kernel(self, asid: int, trace: KernelTrace) -> int:
        """Synchronous convenience: run to completion, return elapsed ticks."""
        start = self.engine.now
        done = self.launch(asid, trace)
        self.engine.run()
        if not done.triggered:
            from repro.sim.engine import SimulationError

            raise SimulationError("kernel did not complete (deadlock?)")
        self.last_kernel_ticks = self.engine.now - start
        return self.last_kernel_ticks

    def _run_wavefront(
        self, asid: int, cu_index: int, ops: Sequence[Op]
    ) -> Generator:
        issue = self._issue_ports[cu_index]
        clock = self.clock
        engine = self.engine
        queue = engine._queue
        ready = engine._ready
        period = clock.period_ticks
        mlp = max(1, self.geometry.mlp)
        # Mixed FIFO of in-flight work: live op Processes plus integer
        # completion-time tokens left behind by batched fast-forwarding.
        # A token ``t`` stands for an op that is known to complete at tick
        # ``t``; waiting on it is a plain timer sleep to ``t``.
        outstanding: deque = deque()
        fast_read = getattr(self.path, "fast_read", None)
        hit_latency = (
            self.path.fast_read_latency(cu_index) if fast_read is not None else 0
        )
        ops_counter = self._ops
        loads = self._loads
        stores = self._stores
        spawn = engine.process
        op_name = f"{self.accel_id}-op"
        n = len(ops)
        i = 0
        while i < n:
            # A batch attempt is doomed unless the earliest foreign entry
            # lies beyond the cheapest possible op completion (now +
            # hit latency) — skip the preview/probe work entirely when
            # another actor is due first (the common case under high
            # wavefront concurrency).
            if (
                fast_read is not None
                and self.enabled
                and self._quiesce_depth == 0
                and not ready
                and (not queue or queue[0][0] > engine.now + hit_latency)
            ):
                i, target = self._fast_forward(
                    ops, i, asid, cu_index, issue, clock, outstanding, mlp,
                    fast_read, hit_latency,
                )
                if target > engine.now:
                    yield target - engine.now
                if i >= n:
                    break
            gap, vaddr, write = ops[i]
            i += 1
            if gap:
                # Trace gaps are integer cycles; gap * period is exactly
                # cycles_to_ticks(gap) then (int(round()) is identity on
                # ints). Non-int gaps from hand-built traces take the
                # rounding call.
                yield gap * period if gap.__class__ is int else clock.cycles_to_ticks(gap)
            if vaddr is None:
                continue
            if not self.enabled:
                break  # the OS pulled the plug mid-kernel
            if len(outstanding) >= mlp:
                oldest = outstanding.popleft()
                if oldest.__class__ is int:
                    if oldest > engine.now:
                        yield oldest - engine.now
                elif not oldest.triggered:
                    yield oldest
            while self._quiesce_depth > 0:
                # Held for a permission downgrade: wait for the resume.
                yield self._resume_event
            if self._stall_until > engine.now:
                # Post-resume pipeline restart delay.
                yield self._stall_until - engine.now
            delay = issue.request(1)  # one memory instruction per CU cycle
            if delay:
                yield delay
            while self._quiesce_depth > 0:
                # The downgrade began while we waited for an issue slot;
                # re-gate so the op translates after the shootdown.
                yield self._resume_event
            ops_counter.value += 1
            if write:
                stores.value += 1
            else:
                loads.value += 1
            outstanding.append(
                spawn(self._do_op(cu_index, asid, vaddr, write), name=op_name)
            )
        for pending in outstanding:
            if pending.__class__ is int:
                if pending > engine.now:
                    yield pending - engine.now
            elif not pending.triggered:
                yield pending

    def _fast_forward(
        self,
        ops: Sequence[Op],
        i: int,
        asid: int,
        cu_index: int,
        issue: BandwidthServer,
        clock: Clock,
        outstanding: deque,
        mlp: int,
        fast_read,
        hit_latency: int,
    ) -> Tuple[int, int]:
        """Batch-replay a run of pure-hit reads in zero engine wakeups.

        Consumes ops starting at ``i`` for as long as each is either a
        pure compute gap or a read that hits both the L1 TLB and the L1
        cache, committing the exact side effects the per-op path would
        (issue-port reservations, TLB/L1 recency + hit counters, op
        counters) at their exact projected times, and recording each op's
        completion as an integer token in ``outstanding``. Returns
        ``(next_unconsumed_index, wavefront_time)``; the caller sleeps to
        ``wavefront_time`` in a single yield.

        Exactness proof sketch — batching never reorders border-visible
        events:

        * **Horizon.** ``guard`` is the earliest entry in the engine queue
          when the batch starts. While the batch runs, no other actor
          executes, so the queue gains nothing earlier. Every committed
          effect is timestamped strictly *before* ``guard`` (checked per
          op via its completion time ``t3 >= guard`` → stop), so no other
          actor could have observed, or interleaved with, the skipped
          intermediate states: committing them eagerly is observationally
          equivalent to the per-op interleaving.
        * **Program order.** Within the batch, per-op commit times are
          monotonic per structure (issue reservations at ``t1``, TLB
          touches at ``t2``, L1 touches at ``t3``), matching per-op
          execution; commits to *different* structures commute.
        * **Border invisibility.** A batched op is, by construction, an
          L1 read hit — it never leaves the CU, so no border-visible
          event is generated at all; the first op that would cross (any
          write — the L1s are write-through — or any miss) ends the batch
          *before* committing anything and replays through the normal
          generator path.
        * **State gates.** ``enabled``/``_quiesce_depth``/``_stall_until``
          can only change from other actors' entries, all ``>= guard``,
          so checking them once at batch entry is exact; mlp gating that
          would wait on a *live* op process ends the batch (the normal
          path performs that wait), while waits on completion tokens are
          pure ``max`` arithmetic.
        """
        engine = self.engine
        guard = engine.next_event_time()
        t = engine.now
        n = len(ops)
        stall = self._stall_until
        ops_counter = self._ops
        loads = self._loads
        period = clock.period_ticks
        while i < n:
            gap, vaddr, write = ops[i]
            if gap:
                # Same int fast path as the generator loop — identical ticks.
                t1 = t + (
                    gap * period
                    if gap.__class__ is int
                    else clock.cycles_to_ticks(gap)
                )
            else:
                t1 = t
            if vaddr is None:
                # Pure compute: only time advances. Past the horizon another
                # actor could change the issue gates before the next op, so
                # hand back to the generator path without consuming it.
                if guard is not None and t1 >= guard:
                    break
                t = t1
                i += 1
                continue
            if write:
                break  # write-through L1s: stores always cross downstream
            if len(outstanding) >= mlp:
                head = outstanding[0]
                if head.__class__ is int:
                    if head > t1:
                        t1 = head  # wait for the token's known completion
                elif not head.triggered:
                    break  # live op still in flight: the real wait happens
                # a triggered live process is popped with no wait (below)
            if stall > t1:
                t1 = stall
            delay, free = issue.preview(t1, 1)
            t2 = t1 + delay
            t3 = t2 + hit_latency
            if guard is not None and t3 >= guard:
                break
            if fast_read(cu_index, asid, vaddr) is None:
                break  # TLB or L1 miss — nothing committed, full path runs
            # -- commit: from here the op is taken, exactly as the per-op
            # path would have taken it at these times.
            if len(outstanding) >= mlp:
                outstanding.popleft()
            issue.commit(free, 1)
            ops_counter.value += 1
            loads.value += 1
            outstanding.append(t3)
            t = t2
            i += 1
        return i, t

    def _do_op(self, cu_index: int, asid: int, vaddr: int, write: bool) -> Generator:
        self._inflight += 1
        try:
            if write:
                result = yield from self.path.mem_op(
                    cu_index, asid, vaddr, True, _payload_for(vaddr)
                )
            else:
                result = yield from self.path.mem_op(cu_index, asid, vaddr, False)
        finally:
            self._inflight -= 1
        if result is None:
            self._blocked.inc()
        return result

    # -- kernel-facing maintenance (AcceleratorBase protocol) -----------------

    def shootdown(self, asid: int, vpn: Optional[int] = None) -> None:
        self.path.shootdown(asid, vpn)

    def drain(self, ticks: int) -> None:
        self._stall_until = max(self._stall_until, self.engine.now + ticks)

    def quiesce_g(self, drain_ticks: int) -> Generator:
        """Hold issue, wait for outstanding requests, stay held (§3.2.4)."""
        self._quiesce_depth += 1
        poll = max(1, drain_ticks // 4) if drain_ticks else 1000
        while self._inflight > 0:
            yield poll
        if drain_ticks:
            yield drain_ticks  # pipeline quiesce on top of the drain
        return None

    def resume(self) -> None:
        if self._quiesce_depth == 0:
            return
        self._quiesce_depth -= 1
        if self._quiesce_depth == 0:
            event, self._resume_event = self._resume_event, self.engine.event()
            event.succeed()

    def flush_caches(self) -> Generator:
        written = yield from self.path.flush_caches()
        return written

    def flush_pages(self, ppns: Iterable[int]) -> Generator:
        written = yield from self.path.flush_pages(ppns)
        return written

    def reset(self, epoch: int) -> None:
        """A hardware reset loses the device's volatile state: cached
        lines (dirty data included) are discarded, not written back —
        whatever the pre-reset device had queued outbound replays under
        the old epoch and dies at the border fence."""
        for cache in getattr(self.path, "l1_caches", []):
            cache.invalidate_all()
        l2 = getattr(self.path, "l2_cache", None)
        if l2 is not None:
            l2.invalidate_all()
        super().reset(epoch)

    def reset_for_reuse(self) -> None:
        """Warm-reuse reset (not the modeled hardware reset): restore the
        device to its post-construction state. The engine queue was reset
        by the owning System, so in-flight wavefronts are already gone."""
        for port in self._issue_ports:
            port.reset()
        self.last_kernel_ticks = 0
        self._stall_until = 0
        self._inflight = 0
        self._quiesce_depth = 0
        self._resume_event = self.engine.event()
        self.enabled = True
        self.epoch = 0
        self.asids.clear()
        self.sandboxes.clear()

    # -- reporting ---------------------------------------------------------

    @property
    def mem_ops(self) -> int:
        return self._ops.value

    @property
    def blocked_ops(self) -> int:
        return self._blocked.value

    def last_kernel_cycles(self) -> float:
        return self.clock.ticks_to_cycles(self.last_kernel_ticks)
