"""A fixed-function streaming accelerator (DMA-style offload engine).

The paper's intro lists cryptographic, database, and media accelerators
alongside GPUs; §2.3 and §6 note that devices with *regular, predictable*
access patterns (ring buffers, sequential streams) are the ones for which
IOMMU-based checking is tolerable — it is the GPU-class irregular,
high-rate accelerators that need Border Control to keep their caches.

:class:`StreamAccelerator` models the regular class: it reads a source
buffer sequentially, applies a fixed-function transform (a toy XOR
"cipher" — the functional payload is real, so tests can verify the data
path end to end), and streams the result to a destination buffer. It has
a tiny TLB and no caches; every block crosses the border.

Being an :class:`~repro.accel.base.AcceleratorBase`, it attaches to the
kernel like any accelerator and gets its own Protection Table — one per
accelerator, as §3.1.1 requires — which the multi-accelerator tests and
the crypto-offload example exercise.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.accel.base import AcceleratorBase
from repro.mem.address import BLOCK_SIZE, PAGE_SHIFT
from repro.mem.port import MemoryPort
from repro.sim.clock import Clock
from repro.sim.engine import Engine, Process
from repro.sim.stats import StatDomain
from repro.vm.tlb import TLB, TLBEntry

__all__ = ["StreamAccelerator"]


def xor_transform(data: bytes, key: int = 0x5A) -> bytes:
    """The engine's fixed function: a toy stream cipher."""
    return bytes(b ^ key for b in data)


class StreamAccelerator(AcceleratorBase):
    """Sequential read-transform-write engine behind a border port."""

    def __init__(
        self,
        engine: Engine,
        clock: Clock,
        ats,
        border: MemoryPort,
        accel_id: str = "crypto0",
        tlb_entries: int = 8,
        block_latency_cycles: float = 4.0,
        stats: Optional[StatDomain] = None,
    ) -> None:
        super().__init__(accel_id)
        self.engine = engine
        self.clock = clock
        self.ats = ats
        self.border = border
        self.tlb = TLB(f"{accel_id}-tlb", tlb_entries)
        self.block_latency_ticks = clock.cycles_to_ticks(block_latency_cycles)
        self.stats = stats or StatDomain(accel_id)
        self._blocks = self.stats.counter("blocks_processed")
        self._blocked = self.stats.counter("blocked_accesses")
        self._faults = self.stats.counter("translation_faults")

    # -- translation -------------------------------------------------------

    def _translate(self, asid: int, vaddr: int) -> Generator:
        vpn = vaddr >> PAGE_SHIFT
        entry = self.tlb.lookup(asid, vpn)
        if entry is None:
            result = yield from self.ats.translate(self.accel_id, asid, vpn)
            if result is None:
                self._faults.inc()
                return None
            entry = TLBEntry(
                asid=asid,
                vpn=result.vpn,
                ppn=result.ppn,
                perms=result.perms,
                pages=result.pages_covered,
            )
            self.tlb.insert(entry)
        return (entry.ppn_for(vpn) << PAGE_SHIFT) | (vaddr & 0xFFF)

    # -- the offload operation -------------------------------------------------

    def run_transform(
        self, asid: int, src_vaddr: int, dst_vaddr: int, nbytes: int, key: int = 0x5A
    ) -> Generator:
        """Stream ``nbytes`` from src to dst, XOR-transforming each block.

        Returns the number of blocks successfully processed; blocks whose
        reads or writes are refused at the border are skipped (and
        counted), mirroring hardware that drops failed transactions.
        """
        if not self.enabled:
            return 0
        done = 0
        for offset in range(0, nbytes, BLOCK_SIZE):
            if not self.enabled:
                break
            chunk = min(BLOCK_SIZE, nbytes - offset)
            src_paddr = yield from self._translate(asid, src_vaddr + offset)
            if src_paddr is None:
                self._blocked.inc()
                continue
            data = yield from self.border.access(src_paddr, chunk, False)
            if data is None:
                self._blocked.inc()
                continue
            yield self.block_latency_ticks  # the fixed-function pipeline
            out = xor_transform(data[:chunk], key)
            dst_paddr = yield from self._translate(asid, dst_vaddr + offset)
            if dst_paddr is None:
                self._blocked.inc()
                continue
            result = yield from self.border.access(dst_paddr, chunk, True, out)
            if result is None:
                self._blocked.inc()
                continue
            self._blocks.inc()
            done += 1
        return done

    def transform(
        self, asid: int, src_vaddr: int, dst_vaddr: int, nbytes: int, key: int = 0x5A
    ) -> int:
        """Synchronous facade; returns blocks processed."""
        return self.engine.run_process(
            self.run_transform(asid, src_vaddr, dst_vaddr, nbytes, key),
            name=f"{self.accel_id}-xform",
        )

    def launch(
        self, asid: int, src_vaddr: int, dst_vaddr: int, nbytes: int
    ) -> Process:
        """Asynchronous launch (runs concurrently with other engines)."""
        return self.engine.process(
            self.run_transform(asid, src_vaddr, dst_vaddr, nbytes),
            name=f"{self.accel_id}-xform",
        )

    # -- kernel-facing protocol ---------------------------------------------

    def shootdown(self, asid: int, vpn: Optional[int] = None) -> None:
        if vpn is None:
            self.tlb.invalidate_asid(asid)
        else:
            self.tlb.invalidate(asid, vpn)

    @property
    def blocks_processed(self) -> int:
        return self._blocks.value

    @property
    def blocked_accesses(self) -> int:
        return self._blocked.value
