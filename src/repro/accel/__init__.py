"""Accelerator models.

* :class:`~repro.accel.base.AcceleratorBase` — the kernel-facing protocol
  every accelerator implements (attach/detach, shootdown, cache flush,
  disable).
* :class:`~repro.accel.gpu.GPU` — the paper's evaluation vehicle: a
  GPGPU with compute units and wavefronts replaying workload traces
  (highly threaded: 8 CUs; moderately threaded: 1 CU — Table 3).
* :mod:`~repro.accel.paths` — the memory-path strategies that realize the
  five configurations of Table 2 (cached hierarchy with or without Border
  Control, full IOMMU, CAPI-like).
* :mod:`~repro.accel.faulty` — buggy and malicious accelerators used to
  demonstrate the threat model: hardware trojans scanning physical
  memory, stale-TLB bugs, wild writes, and flush-ignoring caches.
"""

from repro.accel.base import AcceleratorBase
from repro.accel.gpu import GPU, GPUGeometry, KernelTrace
from repro.accel.paths import CachedHierarchyPath, CAPIPathAdapter, FullIOMMUPathAdapter
from repro.accel.stream import StreamAccelerator
from repro.accel.faulty import (
    FlushIgnoringGPU,
    MaliciousEngine,
    StaleTLBAccelerator,
    WildWriteAccelerator,
)

__all__ = [
    "AcceleratorBase",
    "CachedHierarchyPath",
    "CAPIPathAdapter",
    "FullIOMMUPathAdapter",
    "FlushIgnoringGPU",
    "GPU",
    "GPUGeometry",
    "KernelTrace",
    "MaliciousEngine",
    "StaleTLBAccelerator",
    "StreamAccelerator",
    "WildWriteAccelerator",
]
