"""The kernel-facing accelerator protocol.

The OS treats accelerators as black boxes (paper §2.2) but still *asks*
them to invalidate TLB entries on shootdowns and to flush their caches on
permission downgrades and process completion. A correct accelerator
complies; a buggy or malicious one may not — and Border Control's safety
explicitly does not depend on compliance (§3.2.4: ignored flushes just
produce blocked writebacks later).
"""

from __future__ import annotations

from typing import Dict, Generator, Iterable, Optional, Set

from repro.core.border_control import BorderControl

__all__ = ["AcceleratorBase"]


class AcceleratorBase:
    """Base class implementing bookkeeping; subclasses add behavior."""

    def __init__(self, accel_id: str) -> None:
        self.accel_id = accel_id
        self.enabled = True
        # Epoch fence (recovery subsystem): the attach epoch this device
        # believes it is operating in. The authoritative epoch lives in
        # the accelerator's Border Control instance; the border rejects
        # traffic stamped with an older epoch, so a pre-reset device
        # replaying in-flight requests cannot corrupt or leak.
        self.epoch = 0
        self.asids: Set[int] = set()
        self.sandboxes: Dict[int, Optional[BorderControl]] = {}

    # -- process lifecycle (driven by the kernel) ----------------------------

    def attach_process(self, proc, sandbox: Optional[BorderControl]) -> None:
        self.asids.add(proc.asid)
        self.sandboxes[proc.asid] = sandbox

    def detach_process(self, proc) -> None:
        self.asids.discard(proc.asid)
        self.sandboxes.pop(proc.asid, None)

    # -- shootdown / flush (overridden by real models) --------------------------

    def shootdown(self, asid: int, vpn: Optional[int] = None) -> None:
        """Invalidate cached translations for (asid, vpn) or all of asid."""

    def drain(self, ticks: int) -> None:
        """Stop issuing new requests for ``ticks`` (simple fixed stall)."""

    def quiesce_g(self, drain_ticks: int) -> Generator:
        """Downgrade protocol (§3.2.4/§5.2.4): stop issuing, wait until
        every outstanding request has finished, then hold the accelerator
        stalled until :meth:`resume` is called. Simulation generator.

        The hold matters: permissions are revoked only after the flush,
        and a request translated in between would race the revocation —
        hardware keeps the engine quiesced for the whole window.
        """
        if drain_ticks:
            yield drain_ticks
        return None

    def resume(self) -> None:
        """Release a :meth:`quiesce_g` hold (the downgrade completed)."""

    def flush_caches(self) -> Generator:
        """Write back all dirty state; returns the number of writebacks."""
        return 0
        yield  # pragma: no cover - empty generator

    def flush_pages(self, ppns: Iterable[int]) -> Generator:
        """Selective flush of the given physical pages (§3.2.4 option)."""
        return 0
        yield  # pragma: no cover - empty generator

    # -- OS sanctions -------------------------------------------------------

    def disable(self) -> None:
        """The OS cuts the accelerator off after a violation (§3.2.3)."""
        self.enabled = False

    def enable(self) -> None:
        """Re-admission after a quarantine ends (counterpart of
        :meth:`disable`). Subclasses and fault-injection wrappers override
        this to observe re-admission — the kernel calls it instead of
        poking ``enabled`` directly."""
        self.enabled = True

    def set_epoch(self, epoch: int) -> None:
        """Adopt a new attach epoch (stamped on all outbound requests)."""
        self.epoch = int(epoch)

    def reset(self, epoch: int) -> None:
        """Epoch-fenced hardware reset: drop whatever the device was
        doing, rejoin the system at ``epoch``, and accept work again.
        Volatile translation state is lost — post-reset accesses must
        re-translate through the ATS, which re-inserts their permissions
        into the (downgraded) Border Control table. Anything the
        *pre*-reset device still replays carries the old epoch and is
        rejected at the border."""
        for asid in list(self.asids):
            self.shootdown(asid)
        self.set_epoch(epoch)
        self.enable()

    def __repr__(self) -> str:  # pragma: no cover
        state = "enabled" if self.enabled else "DISABLED"
        return f"{type(self).__name__}({self.accel_id!r}, {state})"
