"""``repro.service.retention`` — garbage collection for job journals.

Every service job checkpoints its cells under a content-keyed run
journal (``job-<key>.jsonl``), and every fleet worker that helped
leaves a shard (``job-<key>.shard-<worker>.jsonl``) next to it. Those
files are the resume substrate while the job can still be re-run
cheaply — and dead weight forever after. :func:`sweep_retention`
reclaims them:

* a **terminal** job older than the retention window loses its run
  journal, lock sidecar, and shards — unless a *live* job shares the
  same run id (an idempotent resubmission mid-flight), which protects
  it;
* an **orphaned shard** — one whose authoritative journal is gone
  (deleted by an earlier sweep, or the run was removed by hand) — is
  deleted once it is itself older than the window, so a worker still
  appending to it during a coordinator restart is never raced.

The service journal (``service-<id>.jsonl``) holds the job *records*
and is never touched: terminal jobs stay queryable; only their cell
checkpoints are reclaimed. Re-submitting an expired job key simply
recomputes — retention trades resume speed for disk, never
correctness.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, Iterable, Optional

from repro.journal import journal_dir, list_shards

__all__ = ["sweep_retention"]


def _unlink(path: Path, counters: Dict[str, int], what: str) -> None:
    try:
        size = path.stat().st_size
        path.unlink()
    except OSError:
        return
    counters[what] += 1
    counters["bytes_reclaimed"] += size


def sweep_retention(
    jobs: Iterable,
    retention_seconds: float,
    directory: Optional[Path] = None,
    now: Optional[float] = None,
    log=None,
) -> Dict[str, int]:
    """One GC pass; returns the counters ``/metrics`` accumulates.

    ``jobs`` is the store's job records (anything with ``terminal``,
    ``finished``, and ``run_id`` attributes). Idempotent and crash-safe:
    a pass interrupted half-way just leaves work for the next pass.
    """
    directory = Path(directory) if directory is not None else journal_dir()
    now = time.time() if now is None else now
    counters = {
        "journals_deleted": 0,
        "shards_deleted": 0,
        "orphan_shards_deleted": 0,
        "bytes_reclaimed": 0,
    }
    protected = set()
    expired = set()
    for job in jobs:
        if not job.terminal:
            protected.add(job.run_id)
        elif job.finished is not None and now - job.finished >= retention_seconds:
            expired.add(job.run_id)
        else:
            protected.add(job.run_id)
    for run_id in sorted(expired - protected):
        journal_path = directory / f"{run_id}.jsonl"
        if journal_path.exists():
            _unlink(journal_path, counters, "journals_deleted")
            try:
                Path(str(journal_path) + ".lock").unlink()
            except OSError:
                pass
            if log is not None:
                log(f"retention: reclaimed journal {run_id}")
        for shard in list_shards(run_id, directory):
            _unlink(shard, counters, "shards_deleted")
    # Shards whose authoritative journal no longer exists. The age guard
    # keeps a live fleet worker's shard safe while its (restarting)
    # coordinator has yet to recreate the journal.
    for shard in sorted(directory.glob("*.shard-*.jsonl")):
        run_id = shard.name.split(".shard-")[0]
        if run_id in protected or (directory / f"{run_id}.jsonl").exists():
            continue
        try:
            age = now - shard.stat().st_mtime
        except OSError:
            continue
        if age >= retention_seconds:
            _unlink(shard, counters, "orphan_shards_deleted")
            if log is not None:
                log(f"retention: reclaimed orphan shard {shard.name}")
    return counters
