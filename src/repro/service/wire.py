"""``repro.service.wire`` — minimal HTTP/1.1 framing over asyncio streams.

The job server deliberately avoids ``http.server`` (synchronous, one
thread per connection) and any third-party framework: the whole wire
layer is a few hand-rolled, individually testable functions on top of
``asyncio``'s stream reader/writer pair.

Scope (all the server needs, nothing more):

* request parsing — request line, headers, ``Content-Length`` bodies,
  with hard limits on line/header/body sizes so a misbehaving tenant
  cannot balloon server memory;
* response encoding — fixed-length JSON/text responses
  (``Connection: close``, one request per connection keeps the state
  machine trivial and is plenty for a job-submission API);
* chunked transfer encoding — :class:`JsonlStream` streams job progress
  as one JSON document per chunk (`application/jsonl`), the format the
  ``/v1/jobs/<id>/events`` endpoint serves;
* length-prefixed JSON frames — :func:`encode_frame` /
  :func:`read_frame`, the symmetric framing :mod:`repro.fleet` speaks
  between coordinator and workers (a persistent bidirectional stream,
  where HTTP's one-request-per-connection shape would fight the
  heartbeat/assignment traffic).

Anything malformed raises :class:`WireError` carrying the HTTP status
the connection handler should answer with before closing.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, Optional
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "MAX_BODY_BYTES",
    "MAX_FRAME_BYTES",
    "MAX_HEADER_BYTES",
    "MAX_REQUEST_LINE",
    "HttpRequest",
    "JsonlStream",
    "WireError",
    "encode_frame",
    "encode_response",
    "read_frame",
    "read_request",
    "send_json",
]

MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024
MAX_FRAME_BYTES = 16 * 1024 * 1024

_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class WireError(Exception):
    """A malformed or oversized request; ``status`` is the HTTP answer."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request: method, split target, headers, raw body."""

    method: str
    target: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The body parsed as JSON (``{}`` when empty)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise WireError(400, f"request body is not valid JSON: {exc}")


async def read_request(
    reader, max_body: int = MAX_BODY_BYTES
) -> Optional[HttpRequest]:
    """Read and parse one request; ``None`` on clean EOF (client closed).

    Raises :class:`WireError` on malformed framing or exceeded limits.
    Only ``Content-Length`` bodies are supported (no request chunking) —
    every client of a JSON job API sends fixed-length bodies.
    """
    try:
        line = await reader.readline()
    except (ConnectionError, ValueError) as exc:
        raise WireError(400, f"unreadable request line: {exc}")
    if not line:
        return None
    if len(line) > MAX_REQUEST_LINE:
        raise WireError(400, "request line too long")
    try:
        method, target, version = line.decode("latin-1").split(None, 2)
    except ValueError:
        raise WireError(400, f"malformed request line: {line!r}")
    if not version.strip().startswith("HTTP/1."):
        raise WireError(400, f"unsupported protocol {version.strip()!r}")

    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        raw = await reader.readline()
        if not raw or raw in (b"\r\n", b"\n"):
            break
        header_bytes += len(raw)
        if header_bytes > MAX_HEADER_BYTES:
            raise WireError(400, "headers too large")
        try:
            name, _, value = raw.decode("latin-1").partition(":")
        except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
            raise WireError(400, "undecodable header")
        if not _:
            raise WireError(400, f"malformed header line: {raw!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError:
            raise WireError(400, f"bad Content-Length {length_header!r}")
        if length < 0:
            raise WireError(400, "negative Content-Length")
        if length > max_body:
            raise WireError(413, f"body of {length} bytes exceeds {max_body}")
        try:
            body = await reader.readexactly(length)
        except Exception as exc:
            raise WireError(400, f"truncated body: {exc}")
    elif headers.get("transfer-encoding"):
        raise WireError(400, "chunked request bodies are not supported")

    split = urlsplit(target)
    query = {k: v for k, v in parse_qsl(split.query, keep_blank_values=True)}
    return HttpRequest(
        method=method.upper(),
        target=target,
        path=unquote(split.path) or "/",
        query=query,
        headers=headers,
        body=body,
    )


def encode_frame(payload: Any, max_frame: int = MAX_FRAME_BYTES) -> bytes:
    """One fleet frame: 4-byte big-endian length prefix + JSON body.

    Pure and symmetric with :func:`read_frame`, so both ends (and the
    fault-injecting transport between them) treat a frame as an opaque
    byte string — dropping, duplicating, or delaying one can never
    produce a *torn* frame, only a missing or repeated message.
    """
    body = json.dumps(payload, default=str).encode("utf-8")
    if len(body) > max_frame:
        raise WireError(413, f"frame of {len(body)} bytes exceeds {max_frame}")
    return struct.pack(">I", len(body)) + body


async def read_frame(reader, max_frame: int = MAX_FRAME_BYTES) -> Optional[Any]:
    """Read one length-prefixed JSON frame; ``None`` on clean EOF.

    A torn prefix or body (peer died mid-write) is EOF too — the frame
    never happened. An oversized or undecodable frame raises
    :class:`WireError`: the stream is now unframeable and the caller
    must drop the connection.
    """
    try:
        prefix = await reader.readexactly(4)
    except (EOFError, ConnectionError, OSError):
        return None
    except Exception:  # IncompleteReadError subclasses EOFError; belt+braces
        return None
    (length,) = struct.unpack(">I", prefix)
    if length > max_frame:
        raise WireError(413, f"frame of {length} bytes exceeds {max_frame}")
    try:
        body = await reader.readexactly(length)
    except (EOFError, ConnectionError, OSError):
        return None
    try:
        return json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise WireError(400, f"frame body is not valid JSON: {exc}")


def encode_response(
    status: int,
    body: bytes = b"",
    content_type: str = "application/json",
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """A complete fixed-length HTTP/1.1 response as bytes (testable, pure)."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


async def send_json(
    writer,
    status: int,
    payload: Any,
    extra_headers: Optional[Dict[str, str]] = None,
) -> None:
    """Serialize ``payload`` and send it as one fixed-length response."""
    body = (json.dumps(payload, indent=2, default=str) + "\n").encode("utf-8")
    writer.write(encode_response(status, body, extra_headers=extra_headers))
    await writer.drain()


class JsonlStream:
    """Chunked-transfer JSONL: one JSON document per chunk.

    The streaming counterpart of :func:`send_json` — the events endpoint
    opens one of these, replays the job's event log, then follows it
    until the job reaches a terminal state. Chunked framing means the
    client sees each event the moment it is flushed, with standard
    HTTP/1.1 semantics (curl, urllib, and every load balancer agree on
    it; no server-sent-events dialect needed).
    """

    def __init__(self, writer) -> None:
        self._writer = writer
        self._started = False

    async def start(self, status: int = 200) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/jsonl\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        self._writer.write(head)
        await self._writer.drain()
        self._started = True

    async def send(self, event: Any) -> None:
        assert self._started, "JsonlStream.start() not called"
        data = (json.dumps(event, default=str) + "\n").encode("utf-8")
        self._writer.write(f"{len(data):x}\r\n".encode("latin-1"))
        self._writer.write(data + b"\r\n")
        await self._writer.drain()

    async def close(self) -> None:
        if self._started:
            self._writer.write(b"0\r\n\r\n")
            await self._writer.drain()
