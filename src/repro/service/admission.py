"""``repro.service.admission`` — per-tenant quotas and rate limits.

Border Control's premise is that mutually untrusted clients share one
device and none may harm the others; the serving layer needs the same
discipline one level up. Admission control is the *detect/contain*
stage for tenant misbehavior: every submission is checked against

* a **token-bucket submit rate** (sustained rate + burst) so a tight
  submit loop is throttled before it costs anything,
* a **per-tenant queue quota** (``max_queued``) so a flood of accepted
  jobs from one tenant cannot occupy the whole queue,
* a **per-tenant running quota** (``max_running``, enforced by the
  fair-share scheduler at dispatch) so a tenant's jobs cannot occupy
  every executor slot, and
* a **global queue bound** (``max_total_queued``) so the server's
  memory stays bounded no matter how many tenants show up.

Rejections are always *explicit*: an :class:`AdmissionError` carries a
machine-readable ``code`` and maps to HTTP 429 (quota/rate) or 503
(draining) — never a silent drop, so a well-behaved client can back
off and retry. Every decision is counted per tenant for ``/metrics``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import ReproError

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "TenantQuota",
    "TokenBucket",
]

#: Rejection codes (stable API, asserted by tests and the smoke).
REJECT_RATE = "rate-limited"
REJECT_QUEUE_FULL = "tenant-queue-full"
REJECT_SERVER_FULL = "server-queue-full"
REJECT_DRAINING = "draining"


class AdmissionError(ReproError):
    """An explicitly rejected submission (HTTP 429/503, never a drop)."""

    def __init__(self, code: str, message: str, status: int = 429) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.status = status


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant limits (one shared policy; per-tenant state)."""

    max_queued: int = 8
    max_running: int = 2
    submit_rate: float = 5.0  # sustained submissions/second
    submit_burst: int = 10  # bucket capacity


class TokenBucket:
    """Classic token bucket with an injectable clock (deterministic tests)."""

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def try_take(self) -> bool:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._stamp) * self.rate
        )
        self._stamp = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    @property
    def tokens(self) -> float:
        return self._tokens


class _TenantAccounting:
    __slots__ = ("bucket", "admitted", "rejected")

    def __init__(self, quota: TenantQuota, clock: Callable[[], float]) -> None:
        self.bucket = TokenBucket(quota.submit_rate, quota.submit_burst, clock)
        self.admitted = 0
        self.rejected: Dict[str, int] = {}


class AdmissionController:
    """Admit-or-reject decisions plus the per-tenant counters behind them."""

    def __init__(
        self,
        quota: Optional[TenantQuota] = None,
        max_total_queued: int = 64,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.quota = quota or TenantQuota()
        self.max_total_queued = max_total_queued
        self._clock = clock
        self._tenants: Dict[str, _TenantAccounting] = {}

    def _tenant(self, tenant: str) -> _TenantAccounting:
        acct = self._tenants.get(tenant)
        if acct is None:
            acct = self._tenants[tenant] = _TenantAccounting(
                self.quota, self._clock
            )
        return acct

    def _reject(
        self, tenant: str, code: str, message: str, status: int = 429
    ) -> "AdmissionError":
        acct = self._tenant(tenant)
        acct.rejected[code] = acct.rejected.get(code, 0) + 1
        return AdmissionError(code, message, status=status)

    def admit(
        self,
        tenant: str,
        tenant_queued: int,
        total_queued: int,
        draining: bool = False,
    ) -> None:
        """Admit one submission or raise :class:`AdmissionError`.

        ``tenant_queued``/``total_queued`` are the live queue depths
        (submitted+queued jobs) from the job store; the controller
        itself is stateless about queue contents so the store stays the
        single source of truth.
        """
        if draining:
            raise self._reject(
                tenant,
                REJECT_DRAINING,
                "server is draining (SIGTERM received); no new jobs admitted",
                status=503,
            )
        acct = self._tenant(tenant)
        if not acct.bucket.try_take():
            raise self._reject(
                tenant,
                REJECT_RATE,
                f"tenant {tenant!r} exceeded its submit rate "
                f"({self.quota.submit_rate:g}/s, burst {self.quota.submit_burst})",
            )
        if tenant_queued >= self.quota.max_queued:
            raise self._reject(
                tenant,
                REJECT_QUEUE_FULL,
                f"tenant {tenant!r} already has {tenant_queued} queued job(s) "
                f"(quota {self.quota.max_queued})",
            )
        if total_queued >= self.max_total_queued:
            raise self._reject(
                tenant,
                REJECT_SERVER_FULL,
                f"server queue is full ({total_queued} jobs, "
                f"bound {self.max_total_queued})",
            )
        acct.admitted += 1

    def counters(self) -> Dict[str, Dict[str, object]]:
        """Per-tenant admission counters for ``/metrics``."""
        return {
            tenant: {
                "admitted": acct.admitted,
                "rejected": dict(acct.rejected),
            }
            for tenant, acct in sorted(self._tenants.items())
        }
