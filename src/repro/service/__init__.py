"""``repro.service`` — simulation-as-a-service: the crash-tolerant,
multi-tenant job server over the sandbox reproduction stack.

The package splits along testable seams:

* :mod:`repro.service.wire` — hand-rolled HTTP/1.1 framing on asyncio
  streams (no ``http.server``, no dependencies), including the chunked
  JSONL progress stream.
* :mod:`repro.service.jobs` — the durable job state machine
  (``submitted → queued → running → done|partial|failed|cancelled``)
  persisted through the append-only run journal, with content-hashed
  idempotent job keys.
* :mod:`repro.service.admission` — per-tenant quotas, token-bucket
  submit rates, bounded queues, explicit 429/503 rejections.
* :mod:`repro.service.scheduler` — fair-share + priority dispatch onto
  the supervised warm-worker pool, with deadlines and cooperative
  cancellation.
* :mod:`repro.service.server` — the asyncio front: routing, operational
  endpoints (``/healthz``, ``/readyz``, ``/metrics``), job CRUD,
  streaming, and SIGTERM graceful drain.

Start one with ``python -m repro serve`` (see ``docs/API.md``).
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionError,
    TenantQuota,
    TokenBucket,
)
from repro.service.jobs import (
    JOB_KINDS,
    TERMINAL_STATES,
    InvalidTransition,
    Job,
    JobSpec,
    JobStore,
)
from repro.service.scheduler import FairShareScheduler, execute_job
from repro.service.server import ServiceConfig, SimulationService, serve_until_complete

__all__ = [
    "JOB_KINDS",
    "TERMINAL_STATES",
    "AdmissionController",
    "AdmissionError",
    "FairShareScheduler",
    "InvalidTransition",
    "Job",
    "JobSpec",
    "JobStore",
    "ServiceConfig",
    "SimulationService",
    "TenantQuota",
    "TokenBucket",
    "execute_job",
    "serve_until_complete",
]
