"""``repro.service.jobs`` — the durable job model and state machine.

A *job* is one tenant's request to run a sweep / chaos / recovery /
verify campaign. Its lifecycle is an explicit state machine::

    submitted → queued → running → done
                   ↑         ├───→ partial      (allow_partial degradation)
                   │         ├───→ failed
                   │         └───→ cancelled
                   └─────────┘  (recovery: a job found `running` when the
                                 server restarts is re-queued, not lost)

Two durability layers make a SIGKILLed server resumable with **zero
re-execution**:

* **Job records** — every state transition is appended to a service
  journal (``service-<id>.jsonl`` via :class:`repro.journal.RunJournal`,
  one entry per transition, keyed by job id, last-wins). A restarted
  server replays the journal, re-queues every non-terminal job, and
  keeps the terminal ones queryable.
* **Cell results** — each job's campaign runs under its *own* run
  journal whose run id is derived from the job's idempotent
  :meth:`JobSpec.job_key` (a content hash of the work, not of the
  submission). Re-running the same job key — after a crash, or a tenant
  resubmitting the same spec — rehydrates every completed cell from that
  journal instead of recomputing it, exactly like ``--resume`` on the
  CLI. The cache-provenance plumbing (``cached_run_ex``) underneath is
  what proves "resumed" means *zero recompute*, not "recomputed fast".
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.journal import RunJournal, journal_dir

__all__ = [
    "JOB_KINDS",
    "TERMINAL_STATES",
    "InvalidTransition",
    "Job",
    "JobSpec",
    "JobStore",
]

JOB_KINDS = ("sweep", "chaos", "recovery", "verify")

#: States in the durable job machine.
STATE_SUBMITTED = "submitted"
STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_PARTIAL = "partial"
STATE_DONE = "done"
STATE_FAILED = "failed"
STATE_CANCELLED = "cancelled"

TERMINAL_STATES = frozenset({STATE_DONE, STATE_PARTIAL, STATE_FAILED, STATE_CANCELLED})

#: Legal transitions; anything else is a server bug, surfaced loudly.
_TRANSITIONS = {
    STATE_SUBMITTED: {STATE_QUEUED, STATE_CANCELLED},
    STATE_QUEUED: {STATE_RUNNING, STATE_CANCELLED},
    STATE_RUNNING: {
        STATE_DONE,
        STATE_PARTIAL,
        STATE_FAILED,
        STATE_CANCELLED,
        STATE_QUEUED,  # crash recovery: a restarted server re-queues it
    },
    STATE_PARTIAL: set(),
    STATE_DONE: set(),
    STATE_FAILED: set(),
    STATE_CANCELLED: set(),
}


class InvalidTransition(ReproError):
    """An illegal job state transition (a server bug, not tenant input)."""

    def __init__(self, job_id: str, old: str, new: str) -> None:
        super().__init__(f"job {job_id}: illegal transition {old} -> {new}")
        self.job_id = job_id
        self.old = old
        self.new = new


@dataclass(frozen=True)
class JobSpec:
    """What to run — the content-addressed half of a job.

    ``params`` mirrors the CLI flags of the matching subcommand (grids,
    workloads, seed, ops_scale, fault kinds, scenarios ...). The *work*
    is identified by :meth:`job_key`, a hash of kind+params only:
    priority, deadline, workers, and tenant affect scheduling and
    accounting, never the result, so they stay out of the key — a
    resubmission with different priority still resumes the same run
    journal.
    """

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)
    priority: int = 0
    deadline_seconds: Optional[float] = None
    allow_partial: bool = False
    workers: int = 1

    def validate(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {self.kind!r} (expected one of {JOB_KINDS})"
            )
        if not isinstance(self.params, dict):
            raise ValueError("params must be a JSON object")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")

    def canonical(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": self.params}

    def job_key(self) -> str:
        """Idempotency key: same work content → same key → same journal."""
        blob = json.dumps(self.canonical(), sort_keys=True, default=str)
        return hashlib.sha256(blob.encode()).hexdigest()[:24]

    def run_id(self) -> str:
        """The run-journal id this job's cells checkpoint under."""
        return f"job-{self.job_key()}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "params": self.params,
            "priority": self.priority,
            "deadline_seconds": self.deadline_seconds,
            "allow_partial": self.allow_partial,
            "workers": self.workers,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        return cls(
            kind=data["kind"],
            params=dict(data.get("params") or {}),
            priority=int(data.get("priority", 0)),
            deadline_seconds=data.get("deadline_seconds"),
            allow_partial=bool(data.get("allow_partial", False)),
            workers=int(data.get("workers", 1)),
        )


@dataclass
class Job:
    """One submission's full lifecycle record (durable via the store)."""

    id: str
    tenant: str
    spec: JobSpec
    state: str = STATE_SUBMITTED
    seq: int = 0  # monotonic submission order, the FIFO tie-breaker
    created: float = 0.0
    started: Optional[float] = None
    finished: Optional[float] = None
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None
    progress: Dict[str, int] = field(default_factory=lambda: {"done": 0, "total": 0})
    resumed_cells: int = 0
    cancel_requested: bool = False
    deadline_hit: bool = False
    recovered: bool = False  # re-queued by a restarted server

    @property
    def job_key(self) -> str:
        return self.spec.job_key()

    @property
    def run_id(self) -> str:
        return self.spec.run_id()

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def transition(self, new_state: str) -> None:
        if new_state not in _TRANSITIONS.get(self.state, set()):
            raise InvalidTransition(self.id, self.state, new_state)
        self.state = new_state
        if new_state == STATE_RUNNING and self.started is None:
            self.started = time.time()
        if new_state in TERMINAL_STATES:
            self.finished = time.time()

    def to_dict(self, include_result: bool = True) -> Dict[str, Any]:
        payload = {
            "id": self.id,
            "tenant": self.tenant,
            "kind": self.spec.kind,
            "job_key": self.job_key,
            "run_id": self.run_id,
            "spec": self.spec.to_dict(),
            "state": self.state,
            "seq": self.seq,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "error": self.error,
            "progress": dict(self.progress),
            "resumed_cells": self.resumed_cells,
            "cancel_requested": self.cancel_requested,
            "deadline_hit": self.deadline_hit,
            "recovered": self.recovered,
        }
        if include_result:
            payload["result"] = self.result
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Job":
        job = cls(
            id=data["id"],
            tenant=data["tenant"],
            spec=JobSpec.from_dict(data["spec"]),
            state=data.get("state", STATE_SUBMITTED),
            seq=int(data.get("seq", 0)),
            created=float(data.get("created", 0.0)),
            started=data.get("started"),
            finished=data.get("finished"),
            error=data.get("error"),
            result=data.get("result"),
            resumed_cells=int(data.get("resumed_cells", 0)),
            cancel_requested=bool(data.get("cancel_requested", False)),
            deadline_hit=bool(data.get("deadline_hit", False)),
            recovered=bool(data.get("recovered", False)),
        )
        job.progress = dict(data.get("progress") or {"done": 0, "total": 0})
        return job


class JobStore:
    """Durable job records over an append-only service journal.

    One journal entry per state transition, keyed by job id, replayed
    last-wins on restart — the same idempotent-replay machinery the
    cell journals use, applied one level up. The journal's advisory
    lock doubles as single-writer enforcement for the whole service id:
    a second replica pointed at the same service id fails fast with
    :class:`repro.journal.JournalLockedError` instead of corrupting job
    records.
    """

    def __init__(
        self, service_id: str, directory: Optional[Path] = None
    ) -> None:
        self.service_id = service_id
        self._journal = RunJournal.open(
            f"service-{service_id}", directory=directory, create=True
        )
        self.jobs: Dict[str, Job] = {}
        self._seq = 0
        for key, entry in sorted(
            self._journal.entries().items(),
            key=lambda item: item[1].get("job", {}).get("seq", 0),
        ):
            record = entry.get("job")
            if not record:
                continue
            try:
                job = Job.from_dict(record)
            except (KeyError, TypeError, ValueError):
                continue  # unreadable record: skip, never crash the server
            self.jobs[job.id] = job
            self._seq = max(self._seq, job.seq)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self._journal.close()

    def recover(self) -> List[Job]:
        """Re-queue every job the dead server left non-terminal.

        ``running`` jobs were mid-campaign when the server died; their
        cell journals hold everything they completed, so re-queueing
        them costs re-dispatch, never re-execution. Returns the
        recovered jobs in submission order.
        """
        recovered = []
        for job in sorted(self.jobs.values(), key=lambda j: j.seq):
            if job.terminal:
                continue
            if job.state == STATE_RUNNING:
                job.transition(STATE_QUEUED)
            elif job.state == STATE_SUBMITTED:
                job.transition(STATE_QUEUED)
            job.recovered = True
            self.persist(job)
            recovered.append(job)
        return recovered

    # -- creation and persistence -----------------------------------------

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def create(self, tenant: str, spec: JobSpec) -> Job:
        seq = self.next_seq()
        job = Job(
            id=f"j{seq:06d}-{spec.job_key()[:8]}",
            tenant=tenant,
            spec=spec,
            seq=seq,
            created=time.time(),
        )
        self.jobs[job.id] = job
        self.persist(job)
        return job

    def persist(self, job: Job) -> None:
        self._journal.record(
            job.id,
            {
                "ok": job.state in (STATE_DONE, STATE_PARTIAL),
                "state": job.state,
                "job": job.to_dict(),
            },
        )

    # -- queries -----------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    def active_by_key(self, job_key: str) -> Optional[Job]:
        """The live (non-terminal) job for an idempotency key, if any."""
        for job in self.jobs.values():
            if not job.terminal and job.job_key == job_key:
                return job
        return None

    def by_tenant(self, tenant: Optional[str] = None) -> List[Job]:
        jobs = [
            job
            for job in self.jobs.values()
            if tenant is None or job.tenant == tenant
        ]
        return sorted(jobs, key=lambda j: j.seq)

    def counts(self, tenant: str) -> Dict[str, int]:
        queued = running = 0
        for job in self.jobs.values():
            if job.tenant != tenant:
                continue
            if job.state in (STATE_SUBMITTED, STATE_QUEUED):
                queued += 1
            elif job.state == STATE_RUNNING:
                running += 1
        return {"queued": queued, "running": running}

    def totals(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for job in self.jobs.values():
            totals[job.state] = totals.get(job.state, 0) + 1
        return totals
