"""``repro.service.scheduler`` — fair-share dispatch onto the worker pool.

The scheduler owns the *run* half of a job's life: it picks which
queued job starts next, executes it on a bounded thread pool (each job
in turn drives the existing supervised process pool via
:func:`repro.sweep.run_sweep` and friends), enforces per-job deadlines,
and services cancellation — all cooperatively, through the
``should_abort`` hook PR'd into :mod:`repro.supervisor`, so an aborted
job's completed cells are already journaled and nothing is lost.

Scheduling discipline (admission already bounded the queues):

* **Fair share first** — among tenants with runnable jobs, the tenant
  with the fewest *running* jobs wins; a tenant at its ``max_running``
  quota is skipped entirely. One tenant saturating its quota therefore
  never delays another tenant's first job — the acceptance scenario.
* **Priority second** — within a tenant, higher ``priority`` runs
  earlier.
* **FIFO last** — ties break by submission sequence, so equal-priority
  jobs are served in arrival order.

Failure semantics mirror the sweep layer's graceful degradation: a job
whose campaign had failures lands in ``failed`` — unless it was
submitted with ``allow_partial``, in which case the surviving cells are
kept and the job lands in the ``partial`` state with an explicit gap
report, the service-level twin of ``--allow-partial``.
"""

from __future__ import annotations

import asyncio
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional

from repro.errors import JobCancelled, JournalLockedError, SweepError
from repro.journal import RunJournal
from repro.service.admission import TenantQuota
from repro.service.jobs import (
    STATE_CANCELLED,
    STATE_DONE,
    STATE_FAILED,
    STATE_PARTIAL,
    STATE_QUEUED,
    STATE_RUNNING,
    STATE_SUBMITTED,
    Job,
    JobStore,
)

__all__ = ["FairShareScheduler", "execute_job"]

#: How many in-memory events one job retains for late stream attachers.
MAX_EVENTS_PER_JOB = 1000


# ---------------------------------------------------------------------------
# job execution (runs inside a scheduler worker thread)
# ---------------------------------------------------------------------------


def _execute_sweep(
    job: Job,
    journal: RunJournal,
    should_abort: Callable[[], bool],
    progress: Optional[Callable[[int, int, str, Optional[str]], None]],
    fleet=None,
) -> Dict[str, Any]:
    from repro import sweep
    from repro.experiments import common

    params = job.spec.params
    cells: List[sweep.Cell]
    if params.get("cells"):
        cells = [sweep.Cell.from_dict(c) for c in params["cells"]]
    else:
        grids = list(params.get("grids") or ["fig4"])
        if "all" in grids:
            grids = list(sweep.GRID_NAMES)
        threading = params.get("threading")
        cells = []
        for grid_name in grids:
            cells.extend(
                sweep.grid_cells(
                    grid_name,
                    threading=threading,
                    workloads=params.get("workloads"),
                    seed=int(params.get("seed", 1234)),
                    ops_scale=float(params.get("ops_scale", 1.0)),
                )
            )
    cells = sweep.dedup_cells(cells)
    report = sweep.run_sweep(
        cells,
        workers=job.spec.workers,
        journal=journal,
        progress=progress,
        should_abort=should_abort,
        fleet=fleet,
    )
    return {
        "kind": "sweep",
        "cells": [
            {
                "label": out.cell.label,
                "key": out.cell.key(),
                "ok": out.ok,
                "error": out.error,
                "error_kind": out.error_kind,
                "cache_hit": out.cache_hit,
                "resumed": out.resumed,
                "attempts": out.attempts,
                "wall_seconds": round(out.wall_seconds, 6),
                "result": (
                    common._result_to_dict(out.result)
                    if out.result is not None
                    else None
                ),
            }
            for out in report.outcomes
        ],
        "completion_rate": report.completion_rate,
        "cache_hit_rate": report.cache_hit_rate,
        "resumed_cells": report.resumed_cells,
        "wall_seconds": round(report.wall_seconds, 6),
        "mode": report.mode,
        "workers": report.workers,
        "supervisor": report.stats.as_dict(),
        "fleet": report.fleet,
        "failures": report.failures(),
    }


def _execute_chaos(
    job: Job, journal: RunJournal, should_abort: Callable[[], bool]
) -> Dict[str, Any]:
    from repro.faults import FaultKind
    from repro.sim.runner import run_chaos_campaign

    params = job.spec.params
    kinds = None
    if params.get("fault_types"):
        kinds = [FaultKind(name) for name in params["fault_types"]]
    report = run_chaos_campaign(
        workloads=params.get("workloads"),
        kinds=kinds,
        seed=int(params.get("seed", 1234)),
        ops_scale=float(params.get("ops_scale", 1.0)),
        quick=bool(params.get("quick", False)),
        workers=job.spec.workers,
        journal=journal,
        should_abort=should_abort,
    )
    payload = report.to_dict()
    payload["kind"] = "chaos"
    payload["failures"] = report.invariant_failures()
    return payload


def _execute_recovery(
    job: Job, journal: RunJournal, should_abort: Callable[[], bool]
) -> Dict[str, Any]:
    from repro.recovery import run_recovery_campaign

    params = job.spec.params
    report = run_recovery_campaign(
        workloads=params.get("workloads"),
        scenarios=params.get("scenarios"),
        seed=int(params.get("seed", 1234)),
        ops_scale=float(params.get("ops_scale", 1.0)),
        quick=bool(params.get("quick", False)),
        workers=job.spec.workers,
        journal=journal,
        should_abort=should_abort,
    )
    payload = report.to_dict()
    payload["kind"] = "recovery"
    payload["failures"] = report.invariant_failures()
    return payload


def _execute_verify(job: Job) -> Dict[str, Any]:
    from pathlib import Path

    from repro.verify.campaign import run_verify_campaign

    params = job.spec.params
    report = run_verify_campaign(
        profile=params.get("profile", "ci"),
        max_examples=params.get("max_examples"),
        stateful_steps=params.get("steps"),
        smallmodel_depth=int(params.get("depth", 3)),
        run_machine=not params.get("skip_machine", False),
        run_smallmodel=not params.get("skip_smallmodel", False),
        bundle_dir=Path(params.get("bundle_dir", "verify-bundles")),
    )
    payload = report.to_dict()
    payload["kind"] = "verify"
    payload["failures"] = [] if report.passed else ["lockstep verification failed"]
    return payload


def execute_job(
    job: Job,
    should_abort: Callable[[], bool],
    progress: Optional[Callable[[int, int, str, Optional[str]], None]] = None,
    fleet=None,
) -> Dict[str, Any]:
    """Run one job to completion inside the calling (worker) thread.

    Opens the job's content-keyed run journal — taking its advisory
    lock, so a duplicate runner in another replica fails fast instead
    of interleaving — executes the campaign with cooperative abort, and
    returns the result payload. Verify jobs are stateless and skip the
    journal.
    """
    if job.spec.kind == "verify":
        return _execute_verify(job)
    journal = RunJournal.open(job.run_id, create=True)
    try:
        if job.spec.kind == "sweep":
            return _execute_sweep(job, journal, should_abort, progress, fleet=fleet)
        if job.spec.kind == "chaos":
            return _execute_chaos(job, journal, should_abort)
        if job.spec.kind == "recovery":
            return _execute_recovery(job, journal, should_abort)
        raise ValueError(f"unknown job kind {job.spec.kind!r}")
    finally:
        journal.close()


# ---------------------------------------------------------------------------
# the scheduler
# ---------------------------------------------------------------------------


class _RunningJob:
    """Loop-side handle for one executing job."""

    __slots__ = ("job", "abort", "deadline_handle", "future")

    def __init__(self, job: Job) -> None:
        import threading

        self.job = job
        self.abort = threading.Event()
        self.deadline_handle = None
        self.future = None


class FairShareScheduler:
    """Async dispatcher: fair share across tenants, priority within."""

    def __init__(
        self,
        store: JobStore,
        quota: Optional[TenantQuota] = None,
        max_concurrent: int = 1,
        fleet=None,
    ) -> None:
        self.store = store
        self.quota = quota or TenantQuota()
        self.max_concurrent = max(1, max_concurrent)
        self.fleet = fleet  # FleetCoordinator sweep jobs fan out through
        self.draining = False
        self._queue: List[str] = []  # job ids, unsorted (picker sorts)
        self._running: Dict[str, _RunningJob] = {}
        self._events: Dict[str, List[dict]] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_concurrent,
            thread_name_prefix="repro-job",
        )
        self._wake: Optional[asyncio.Event] = None
        self._changed: Optional[asyncio.Condition] = None
        self._task: Optional[asyncio.Task] = None
        self._stopped = False
        # Per-tenant terminal counters + merged supervisor stats, the
        # scheduler half of /metrics.
        self.tenant_stats: Dict[str, Dict[str, Any]] = {}

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._wake = asyncio.Event()
        self._changed = asyncio.Condition()
        self._task = asyncio.ensure_future(self._loop())

    async def stop(self) -> None:
        self._stopped = True
        if self._wake is not None:
            self._wake.set()
        if self._task is not None:
            await self._task
        self._executor.shutdown(wait=False)

    # -- events (for the streaming endpoint) -------------------------------

    @property
    def changed(self) -> asyncio.Condition:
        assert self._changed is not None, "scheduler not started"
        return self._changed

    def events_of(self, job_id: str) -> List[dict]:
        return self._events.get(job_id, [])

    def _emit(self, job: Job, event: Dict[str, Any]) -> None:
        event = {"ts": round(time.time(), 3), "job": job.id, **event}
        log = self._events.setdefault(job.id, [])
        log.append(event)
        del log[:-MAX_EVENTS_PER_JOB]
        cond = self._changed
        if cond is not None:
            # May be called from the loop only (thread callbacks hop via
            # call_soon_threadsafe), so notifying directly is safe.
            asyncio.ensure_future(self._notify())

    async def _notify(self) -> None:
        assert self._changed is not None
        async with self._changed:
            self._changed.notify_all()

    def _emit_state(self, job: Job, **extra: Any) -> None:
        self._emit(
            job,
            {
                "event": "state",
                "state": job.state,
                "error": job.error,
                **extra,
            },
        )

    # -- submission, cancellation, drain ------------------------------------

    def submit(self, job: Job) -> None:
        """Queue an admitted (or recovered) job and kick the dispatcher."""
        if job.state == STATE_SUBMITTED:
            job.transition(STATE_QUEUED)
        assert job.state == STATE_QUEUED, job.state
        self.store.persist(job)
        self._queue.append(job.id)
        self._emit_state(job, recovered=job.recovered)
        if self._wake is not None:
            self._wake.set()

    def cancel(self, job_id: str, reason: str = "cancelled by request") -> bool:
        """Cancel a queued or running job; False if terminal/unknown."""
        job = self.store.get(job_id)
        if job is None or job.terminal:
            return False
        job.cancel_requested = True
        if job.id in self._queue:
            self._queue.remove(job.id)
            job.error = reason
            job.transition(STATE_CANCELLED)
            self.store.persist(job)
            self._bump_tenant(job)
            self._emit_state(job)
            return True
        running = self._running.get(job_id)
        if running is not None:
            running.abort.set()  # observed at the next cell boundary
            self.store.persist(job)
            self._emit(job, {"event": "cancelling"})
            return True
        # Submitted but not yet queued (shouldn't happen; be safe).
        job.error = reason
        job.transition(STATE_CANCELLED)
        self.store.persist(job)
        self._emit_state(job)
        return True

    async def drain(self, grace_seconds: float = 30.0) -> None:
        """Stop dispatching, let running jobs finish, abort stragglers.

        Queued jobs stay queued (and durable): a restarted server
        recovers them. Running jobs get ``grace_seconds`` to finish
        naturally; past that they are cooperatively aborted, which
        journals every completed cell before the job lands terminal.
        """
        self.draining = True
        if self._wake is not None:
            self._wake.set()
        deadline = time.monotonic() + max(0.0, grace_seconds)
        while self._running and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        for running in list(self._running.values()):
            running.abort.set()
        while self._running:
            await asyncio.sleep(0.05)

    # -- fair-share picking --------------------------------------------------

    def _running_of(self, tenant: str) -> int:
        return sum(
            1 for r in self._running.values() if r.job.tenant == tenant
        )

    def _pick(self) -> Optional[Job]:
        """Fairest runnable job: least-loaded tenant, priority, FIFO."""
        best: Optional[Job] = None
        best_sort = None
        for job_id in self._queue:
            job = self.store.get(job_id)
            if job is None or job.state != STATE_QUEUED:
                continue
            tenant_running = self._running_of(job.tenant)
            if tenant_running >= self.quota.max_running:
                continue  # tenant at quota: its jobs wait, others don't
            if any(
                r.job.run_id == job.run_id for r in self._running.values()
            ):
                # Same work content already executing: starting a twin
                # would only trip the run journal's advisory lock. Let
                # it finish; the twin then resumes everything from the
                # journal at zero cost.
                continue
            sort = (tenant_running, -job.spec.priority, job.seq)
            if best_sort is None or sort < best_sort:
                best, best_sort = job, sort
        return best

    # -- the dispatch loop ---------------------------------------------------

    async def _loop(self) -> None:
        assert self._wake is not None
        while not self._stopped:
            started = True
            while started:
                started = False
                if self.draining or len(self._running) >= self.max_concurrent:
                    break
                job = self._pick()
                if job is not None:
                    self._start(job)
                    started = True
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=0.25)
            except asyncio.TimeoutError:
                pass
            self._wake.clear()

    def _start(self, job: Job) -> None:
        loop = asyncio.get_event_loop()
        self._queue.remove(job.id)
        running = _RunningJob(job)
        self._running[job.id] = running
        job.transition(STATE_RUNNING)
        self.store.persist(job)
        self._emit_state(job, resumed_run_id=job.run_id)

        if job.spec.deadline_seconds is not None:

            def on_deadline() -> None:
                if job.id in self._running:
                    job.deadline_hit = True
                    running.abort.set()
                    self._emit(
                        job,
                        {
                            "event": "deadline",
                            "deadline_seconds": job.spec.deadline_seconds,
                        },
                    )

            running.deadline_handle = loop.call_later(
                job.spec.deadline_seconds, on_deadline
            )

        def progress(done: int, total: int, label: str, error: Optional[str]) -> None:
            loop.call_soon_threadsafe(
                self._on_progress, job, done, total, label, error
            )

        running.future = loop.run_in_executor(
            self._executor,
            execute_job,
            job,
            running.abort.is_set,
            progress,
            self.fleet,
        )
        asyncio.ensure_future(self._finish(running))

    def _on_progress(
        self, job: Job, done: int, total: int, label: str, error: Optional[str]
    ) -> None:
        job.progress = {"done": done, "total": total}
        self._emit(
            job,
            {
                "event": "cell",
                "done": done,
                "total": total,
                "label": label,
                "ok": error is None,
            },
        )

    async def _finish(self, running: _RunningJob) -> None:
        job = running.job
        payload: Optional[Dict[str, Any]] = None
        error: Optional[str] = None
        state = STATE_DONE
        try:
            payload = await running.future
        except JobCancelled as exc:
            state = STATE_CANCELLED
            error = str(exc)
        except JournalLockedError as exc:
            state = STATE_FAILED
            error = f"JournalLockedError: {exc}"
        except SweepError as exc:
            state = STATE_FAILED
            error = str(exc)
        except Exception as exc:  # noqa: BLE001 - job must land terminal
            state = STATE_FAILED
            error = f"{type(exc).__name__}: {exc}\n" + traceback.format_exc(limit=8)
        finally:
            if running.deadline_handle is not None:
                running.deadline_handle.cancel()

        if payload is not None:
            failures = payload.get("failures") or []
            aborted = running.abort.is_set()
            if job.cancel_requested and (failures or aborted):
                state, error = STATE_CANCELLED, "cancelled by request"
            elif job.deadline_hit and (failures or aborted):
                if job.spec.allow_partial:
                    state = STATE_PARTIAL
                    error = (
                        f"deadline of {job.spec.deadline_seconds:g}s exceeded; "
                        f"kept {payload.get('completion_rate', 0):.0%} of cells"
                    )
                else:
                    state = STATE_FAILED
                    error = (
                        f"deadline of {job.spec.deadline_seconds:g}s exceeded"
                    )
            elif failures:
                if job.spec.allow_partial:
                    state = STATE_PARTIAL
                    error = f"{len(failures)} cell(s) failed (partial kept)"
                else:
                    state = STATE_FAILED
                    error = "; ".join(str(f) for f in failures[:3])
            job.resumed_cells = int(payload.get("resumed_cells", 0))
        elif state == STATE_CANCELLED and job.deadline_hit:
            # A campaign aborted by its deadline raises JobCancelled too;
            # the deadline flag tells the difference.
            if not job.cancel_requested:
                state = STATE_FAILED
                error = f"deadline of {job.spec.deadline_seconds:g}s exceeded"

        job.result = payload
        job.error = error
        job.transition(state)
        self.store.persist(job)
        self._bump_tenant(job, payload)
        del self._running[job.id]
        self._emit_state(job)
        if self._wake is not None:
            self._wake.set()
        await self._notify()

    # -- metrics -------------------------------------------------------------

    def _bump_tenant(self, job: Job, payload: Optional[Dict[str, Any]] = None) -> None:
        stats = self.tenant_stats.setdefault(
            job.tenant,
            {
                "done": 0,
                "partial": 0,
                "failed": 0,
                "cancelled": 0,
                "resumed_cells": 0,
                "cells_done": 0,
                "cache_hits": 0,
                "supervisor": {},
            },
        )
        if job.state in stats:
            stats[job.state] += 1
        if payload:
            stats["resumed_cells"] += int(payload.get("resumed_cells", 0))
            cells = payload.get("cells") or []
            stats["cells_done"] += sum(1 for c in cells if c.get("ok"))
            stats["cache_hits"] += sum(1 for c in cells if c.get("cache_hit"))
            supervisor = payload.get("supervisor") or {}
            merged = stats["supervisor"]
            for name, value in supervisor.items():
                if isinstance(value, (int, float)):
                    merged[name] = merged.get(name, 0) + value

    def snapshot(self) -> Dict[str, Any]:
        """Queue/running/derived counters for /healthz and /metrics."""
        return {
            "queued": len(self._queue),
            "running": len(self._running),
            "draining": self.draining,
            "max_concurrent": self.max_concurrent,
        }
