"""``repro.service.server`` — the asyncio HTTP front of the job server.

Ties the pieces together: :class:`~repro.service.jobs.JobStore` for
durability, :class:`~repro.service.admission.AdmissionController` for
tenant isolation, :class:`~repro.service.scheduler.FairShareScheduler`
for execution — behind a hand-rolled HTTP/1.1 API on
``asyncio.start_server`` (see :mod:`repro.service.wire`; no
``http.server``, no third-party frameworks).

Endpoints::

    GET  /healthz                liveness + state (ready|draining|...)
    GET  /readyz                 200 only while accepting jobs
    GET  /metrics                per-tenant counters, supervisor stats,
                                 warm-worker registry, queue depths
    POST /v1/jobs                submit (idempotent by job key)
    GET  /v1/jobs                list (filter: ?tenant=&state=)
    GET  /v1/jobs/<id>           full record incl. result
    DELETE /v1/jobs/<id>         cancel (also POST /v1/jobs/<id>/cancel)
    GET  /v1/jobs/<id>/events    chunked JSONL progress stream

Crash tolerance: on start the store replays its journal and re-queues
every job the previous incarnation left non-terminal; each job's cells
then rehydrate from the job's own run journal, so a SIGKILL mid-sweep
costs re-dispatch, never re-execution. On SIGTERM the server *drains*:
``/readyz`` flips to 503, new submissions are rejected with an explicit
503/``draining`` error, running jobs get a grace period, and only then
does the process exit.
"""

from __future__ import annotations

import asyncio
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from repro.service.admission import AdmissionController, AdmissionError, TenantQuota
from repro.service.jobs import JOB_KINDS, JobSpec, JobStore
from repro.service.retention import sweep_retention
from repro.service.scheduler import FairShareScheduler
from repro.service.wire import (
    HttpRequest,
    JsonlStream,
    WireError,
    read_request,
    send_json,
)

__all__ = ["ServiceConfig", "SimulationService", "serve_until_complete"]

#: How long a connection may take to deliver one request.
REQUEST_TIMEOUT = 30.0
DEFAULT_TENANT = "anonymous"


@dataclass
class ServiceConfig:
    """Everything the server needs; defaults suit tests and the smoke."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral (tests); CLI defaults to 7455
    service_id: str = "default"
    quota: TenantQuota = field(default_factory=TenantQuota)
    max_total_queued: int = 64
    max_concurrent: int = 1
    drain_grace_seconds: float = 30.0
    journal_directory: Optional[Path] = None
    #: Delete terminal jobs' run journals (and their fleet shards) this
    #: many hours after they finish; None disables the GC entirely.
    retention_hours: Optional[float] = None
    retention_interval_seconds: float = 60.0
    #: ``host:port`` to accept fleet workers on; sweep jobs then fan
    #: out across the fleet instead of (only) the local pool.
    fleet_listen: Optional[str] = None
    log: Any = None  # callable(str) or None


class SimulationService:
    """One job-server instance: store + admission + scheduler + HTTP."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.state = "starting"  # -> ready -> draining -> stopped
        self.started_at = time.time()
        self.store: Optional[JobStore] = None
        self.admission: Optional[AdmissionController] = None
        self.scheduler: Optional[FairShareScheduler] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._done: Optional[asyncio.Event] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._retention_task: Optional[asyncio.Task] = None
        self.fleet = None  # FleetCoordinator when fleet_listen is set
        self.retention_stats: Dict[str, int] = {}
        self.port: Optional[int] = None
        self.recovered_jobs = 0

    def _log(self, message: str) -> None:
        if self.config.log is not None:
            self.config.log(message)

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Open the journal, recover, bind the socket, go ready."""
        cfg = self.config
        self._done = asyncio.Event()
        # Journal lock inside: a second replica on the same service id
        # dies here with JournalLockedError instead of corrupting state.
        self.store = JobStore(cfg.service_id, directory=cfg.journal_directory)
        self.admission = AdmissionController(
            quota=cfg.quota, max_total_queued=cfg.max_total_queued
        )
        if cfg.fleet_listen:
            from repro.fleet import FleetCoordinator

            fleet_host, _, fleet_port = cfg.fleet_listen.rpartition(":")
            self.fleet = FleetCoordinator(
                host=fleet_host or "127.0.0.1",
                port=int(fleet_port or 0),
                log=self._log,
            ).start()
            self._log(
                f"fleet coordinator on "
                f"{self.fleet.host}:{self.fleet.port} — join with: "
                f"border-control worker --connect "
                f"{self.fleet.host}:{self.fleet.port}"
            )
        self.scheduler = FairShareScheduler(
            self.store,
            quota=cfg.quota,
            max_concurrent=cfg.max_concurrent,
            fleet=self.fleet,
        )
        await self.scheduler.start()
        recovered = self.store.recover()
        self.recovered_jobs = len(recovered)
        for job in recovered:
            self._log(
                f"recovered job {job.id} ({job.spec.kind}, "
                f"tenant {job.tenant}): re-queued, cells resume from "
                f"journal {job.run_id}"
            )
            self.scheduler.submit(job)

        self._server = await asyncio.start_server(
            self._handle_connection, host=cfg.host, port=cfg.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._install_signal_handlers()
        if cfg.retention_hours is not None:
            self._retention_task = asyncio.ensure_future(self._retention_loop())
        self.state = "ready"
        self._log(
            f"repro.service {cfg.service_id!r} ready on "
            f"http://{cfg.host}:{self.port} "
            f"(recovered {self.recovered_jobs} job(s))"
        )

    def _install_signal_handlers(self) -> None:
        loop = asyncio.get_event_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_drain, sig)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or non-unix: tests drive drain directly

    def request_drain(self, signum: int = signal.SIGTERM) -> None:
        """Begin graceful drain (idempotent; the SIGTERM entry point)."""
        if self._drain_task is None:
            self._log(f"signal {signum}: draining")
            self._drain_task = asyncio.ensure_future(self.drain())

    async def drain(self) -> None:
        """Reject new work, let running jobs finish, then stop."""
        if self.state in ("draining", "stopped"):
            return
        self.state = "draining"
        assert self.scheduler is not None
        await self.scheduler.drain(self.config.drain_grace_seconds)
        await self.stop()

    async def stop(self) -> None:
        """Tear everything down; idempotent."""
        if self.state == "stopped":
            return
        self.state = "stopped"
        if self._retention_task is not None:
            self._retention_task.cancel()
            self._retention_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.scheduler is not None:
            await self.scheduler.stop()
        if self.fleet is not None:
            self.fleet.stop()
            self.fleet = None
        if self.store is not None:
            self.store.close()
        if self._done is not None:
            self._done.set()

    async def serve_forever(self) -> None:
        assert self._done is not None, "start() not called"
        await self._done.wait()

    # -- retention GC --------------------------------------------------------

    def run_retention_pass(self, now: Optional[float] = None) -> Dict[str, int]:
        """One journal-GC pass; accumulated into :attr:`retention_stats`."""
        assert self.store is not None
        assert self.config.retention_hours is not None
        # Job run journals live in the default journal directory (the
        # service journal's ``journal_directory`` override is separate).
        counters = sweep_retention(
            list(self.store.jobs.values()),
            self.config.retention_hours * 3600.0,
            now=now,
            log=self._log,
        )
        self.retention_stats["passes"] = self.retention_stats.get("passes", 0) + 1
        for name, value in counters.items():
            self.retention_stats[name] = self.retention_stats.get(name, 0) + value
        return counters

    async def _retention_loop(self) -> None:
        interval = max(1.0, self.config.retention_interval_seconds)
        while True:
            try:
                self.run_retention_pass()
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - GC must not kill serving
                self._log(f"retention pass failed: {type(exc).__name__}: {exc}")
            await asyncio.sleep(interval)

    # -- connection handling ------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                request = await asyncio.wait_for(
                    read_request(reader), timeout=REQUEST_TIMEOUT
                )
            except asyncio.TimeoutError:
                await send_json(
                    writer, 400, {"error": "timeout", "message": "request timed out"}
                )
                return
            except WireError as exc:
                await send_json(
                    writer,
                    exc.status,
                    {"error": "bad-request", "message": exc.message},
                )
                return
            if request is None:
                return
            await self._route(request, writer)
        except (ConnectionError, BrokenPipeError):
            pass  # client went away mid-response; nothing to answer
        except Exception as exc:  # noqa: BLE001 - connection must not kill server
            try:
                await send_json(
                    writer,
                    500,
                    {"error": "internal", "message": f"{type(exc).__name__}: {exc}"},
                )
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _route(self, request: HttpRequest, writer) -> None:
        method, path = request.method, request.path
        if path == "/healthz" and method == "GET":
            await self._get_healthz(writer)
        elif path == "/readyz" and method == "GET":
            await self._get_readyz(writer)
        elif path == "/metrics" and method == "GET":
            await self._get_metrics(writer)
        elif path == "/v1/jobs" and method == "POST":
            await self._post_job(request, writer)
        elif path == "/v1/jobs" and method == "GET":
            await self._list_jobs(request, writer)
        elif path.startswith("/v1/jobs/"):
            await self._job_subresource(request, writer)
        else:
            await send_json(
                writer,
                404,
                {"error": "not-found", "message": f"no route for {method} {path}"},
            )

    # -- operational endpoints ----------------------------------------------

    async def _get_healthz(self, writer) -> None:
        assert self.store is not None and self.scheduler is not None
        await send_json(
            writer,
            200,
            {
                "status": self.state,
                "service_id": self.config.service_id,
                "uptime_seconds": round(time.time() - self.started_at, 3),
                "recovered_jobs": self.recovered_jobs,
                "scheduler": self.scheduler.snapshot(),
                "jobs": self.store.totals(),
            },
        )

    async def _get_readyz(self, writer) -> None:
        ready = self.state == "ready"
        await send_json(
            writer, 200 if ready else 503, {"ready": ready, "state": self.state}
        )

    async def _get_metrics(self, writer) -> None:
        assert self.store is not None
        assert self.admission is not None and self.scheduler is not None
        from repro.sim.runner import warm_registry_stats

        tenants: Dict[str, Dict[str, Any]] = {}
        names = set(self.admission.counters()) | set(self.scheduler.tenant_stats)
        names.update(job.tenant for job in self.store.jobs.values())
        admission = self.admission.counters()
        for name in sorted(names):
            tenants[name] = {
                "admission": admission.get(name, {"admitted": 0, "rejected": {}}),
                "depths": self.store.counts(name),
                "terminal": self.scheduler.tenant_stats.get(name, {}),
            }
        await send_json(
            writer,
            200,
            {
                "service_id": self.config.service_id,
                "state": self.state,
                "uptime_seconds": round(time.time() - self.started_at, 3),
                "jobs": self.store.totals(),
                "scheduler": self.scheduler.snapshot(),
                "tenants": tenants,
                "warm_workers": warm_registry_stats(),
                "retention": dict(self.retention_stats),
                "fleet": (
                    self.fleet.stats_snapshot() if self.fleet is not None else None
                ),
            },
        )

    # -- job CRUD ------------------------------------------------------------

    async def _post_job(self, request: HttpRequest, writer) -> None:
        assert self.store is not None
        assert self.admission is not None and self.scheduler is not None
        try:
            body = request.json()
        except WireError as exc:
            await send_json(
                writer, exc.status, {"error": "bad-request", "message": exc.message}
            )
            return
        if not isinstance(body, dict):
            await send_json(
                writer,
                400,
                {"error": "bad-request", "message": "body must be a JSON object"},
            )
            return
        tenant = str(
            body.get("tenant")
            or request.headers.get("x-tenant")
            or DEFAULT_TENANT
        )
        try:
            spec = JobSpec(
                kind=str(body.get("kind", "")),
                params=dict(body.get("params") or {}),
                priority=int(body.get("priority", 0)),
                deadline_seconds=body.get("deadline_seconds"),
                allow_partial=bool(body.get("allow_partial", False)),
                workers=int(body.get("workers", 1)),
            )
            spec.validate()
        except (TypeError, ValueError) as exc:
            await send_json(
                writer,
                400,
                {
                    "error": "bad-request",
                    "message": f"invalid job spec: {exc}",
                    "kinds": list(JOB_KINDS),
                },
            )
            return

        # Idempotent resubmission: an identical live job is *joined*,
        # not duplicated — same key, same run journal, same result.
        existing = self.store.active_by_key(spec.job_key())
        if existing is not None and existing.tenant == tenant:
            await send_json(
                writer,
                200,
                {"job": existing.to_dict(include_result=False), "deduplicated": True},
            )
            return

        queued_total = sum(
            1
            for job in self.store.jobs.values()
            if job.state in ("submitted", "queued")
        )
        try:
            self.admission.admit(
                tenant,
                tenant_queued=self.store.counts(tenant)["queued"],
                total_queued=queued_total,
                draining=self.state != "ready",
            )
        except AdmissionError as exc:
            await send_json(
                writer,
                exc.status,
                {"error": exc.code, "message": exc.message, "tenant": tenant},
                extra_headers={"Retry-After": "1"},
            )
            return

        job = self.store.create(tenant, spec)
        self.scheduler.submit(job)
        self._log(
            f"admitted job {job.id} ({spec.kind}, tenant {tenant}, "
            f"key {spec.job_key()[:8]})"
        )
        await send_json(
            writer, 201, {"job": job.to_dict(include_result=False)}
        )

    async def _list_jobs(self, request: HttpRequest, writer) -> None:
        assert self.store is not None
        tenant = request.query.get("tenant")
        state = request.query.get("state")
        jobs = [
            job.to_dict(include_result=False)
            for job in self.store.by_tenant(tenant)
            if state is None or job.state == state
        ]
        await send_json(writer, 200, {"jobs": jobs, "count": len(jobs)})

    async def _job_subresource(self, request: HttpRequest, writer) -> None:
        assert self.store is not None and self.scheduler is not None
        parts = request.path.strip("/").split("/")  # v1 jobs <id> [verb]
        job_id = parts[2] if len(parts) > 2 else ""
        verb = parts[3] if len(parts) > 3 else None
        job = self.store.get(job_id)
        if job is None:
            await send_json(
                writer,
                404,
                {"error": "not-found", "message": f"no job {job_id!r}"},
            )
            return

        if verb is None and request.method == "GET":
            include_result = request.query.get("result", "1") != "0"
            await send_json(
                writer, 200, {"job": job.to_dict(include_result=include_result)}
            )
        elif (verb is None and request.method == "DELETE") or (
            verb == "cancel" and request.method == "POST"
        ):
            if job.terminal:
                await send_json(
                    writer,
                    409,
                    {
                        "error": "terminal",
                        "message": f"job {job_id} already {job.state}",
                    },
                )
                return
            self.scheduler.cancel(job_id)
            await send_json(
                writer,
                202,
                {"job": self.store.get(job_id).to_dict(include_result=False)},
            )
        elif verb == "events" and request.method == "GET":
            await self._stream_events(job_id, writer)
        else:
            await send_json(
                writer,
                405,
                {
                    "error": "method-not-allowed",
                    "message": f"{request.method} not supported here",
                },
            )

    async def _stream_events(self, job_id: str, writer) -> None:
        """Replay the job's event log, then follow it to a terminal state."""
        assert self.store is not None and self.scheduler is not None
        stream = JsonlStream(writer)
        await stream.start(200)
        sent = 0
        while True:
            events = self.scheduler.events_of(job_id)
            while sent < len(events):
                await stream.send(events[sent])
                sent += 1
            job = self.store.get(job_id)
            if job is None or job.terminal or self.state == "stopped":
                break
            async with self.scheduler.changed:
                try:
                    await asyncio.wait_for(
                        self.scheduler.changed.wait(), timeout=1.0
                    )
                except asyncio.TimeoutError:
                    pass  # re-check terminality even without new events
        job = self.store.get(job_id)
        await stream.send(
            {
                "event": "end",
                "job": job_id,
                "state": job.state if job else "unknown",
            }
        )
        await stream.close()


async def serve_until_complete(config: ServiceConfig) -> int:
    """Run one server until SIGTERM/SIGINT drains it. Returns exit code."""
    service = SimulationService(config)
    await service.start()
    try:
        await service.serve_forever()
    finally:
        await service.stop()
    return 0
