"""The full-IOMMU safety configuration (paper §2.3, Table 2).

For the IOMMU to enforce safety, the accelerator must issue *every*
memory request as a virtual address to the IOMMU, which translates and
permission-checks it before forwarding to memory. The accelerator keeps
no TLB and no caches (the IOMMU's own L2 TLB remains, because the IOMMU
caches translations). Safe, but each request pays translation plus a full
DRAM round trip — the configuration whose overhead Fig. 4 shows at 374%
(highly threaded) / 85% (moderately threaded).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Optional

from repro.iommu.ats import ATS
from repro.mem.address import BLOCK_SIZE
from repro.mem.port import MemoryPort
from repro.sim.stats import StatDomain

__all__ = ["FullIOMMUPath", "IOMMUViolation"]


@dataclass(frozen=True)
class IOMMUViolation:
    """A request the IOMMU refused (bad ASID, unmapped, or insufficient perms)."""

    accel_id: str
    vaddr: int
    write: bool
    reason: str


class FullIOMMUPath:
    """Accelerator memory interface: translate + check every request."""

    def __init__(
        self,
        ats: ATS,
        memory: MemoryPort,
        processing_latency_ticks: int,
        stats: Optional[StatDomain] = None,
    ) -> None:
        self.ats = ats
        self.memory = memory
        self.processing_latency_ticks = processing_latency_ticks
        self.stats = stats or StatDomain("full_iommu")
        self._requests = self.stats.counter("requests")
        self._blocked = self.stats.counter("blocked")
        self.violations: List[IOMMUViolation] = []
        self._handlers: List[Callable[[IOMMUViolation], None]] = []

    def on_violation(self, handler: Callable[[IOMMUViolation], None]) -> None:
        self._handlers.append(handler)

    def mem_op(
        self,
        accel_id: str,
        asid: int,
        vaddr: int,
        write: bool,
        data: Optional[bytes] = None,
    ) -> Generator:
        """One accelerator request, block-granular. Returns bytes or None."""
        self._requests.inc()
        if self.processing_latency_ticks:
            yield self.processing_latency_ticks
        vpn = vaddr >> 12
        result = yield from self.ats.translate(accel_id, asid, vpn)
        if result is None:
            return self._block(accel_id, vaddr, write, "untranslatable request")
        if not result.perms.allows(write):
            return self._block(accel_id, vaddr, write, "insufficient permissions")
        ppn = result.ppn + ((vaddr >> 12) - result.vpn)  # large pages: offset
        paddr = (ppn << 12) | (vaddr & 0xFFF)
        block_paddr = paddr & ~(BLOCK_SIZE - 1)
        offset = paddr - block_paddr
        if write:
            if data is None:
                raise ValueError("write requires data")
            if offset == 0 and len(data) == BLOCK_SIZE:
                return (
                    yield from self.memory.access(block_paddr, BLOCK_SIZE, True, data)
                )
            # Sub-block store: read-modify-write at block granularity.
            current = yield from self.memory.access(block_paddr, BLOCK_SIZE, False)
            if current is None:
                return None
            merged = bytearray(current)
            merged[offset : offset + len(data)] = data
            return (
                yield from self.memory.access(block_paddr, BLOCK_SIZE, True, bytes(merged))
            )
        block = yield from self.memory.access(block_paddr, BLOCK_SIZE, False)
        if block is None:
            return None
        return block[offset : offset + BLOCK_SIZE - offset]

    def _block(self, accel_id: str, vaddr: int, write: bool, reason: str) -> None:
        self._blocked.inc()
        violation = IOMMUViolation(accel_id, vaddr, write, reason)
        self.violations.append(violation)
        for handler in self._handlers:
            handler(violation)
        return None
