"""IOMMU-side infrastructure: the ATS, full-IOMMU checking, CAPI front end.

Accelerators cannot walk page tables themselves; they rely on the Address
Translation Service (ATS), usually provided by the IOMMU (paper §2.3).
This package implements:

* :class:`~repro.iommu.ats.ATS` — translation requests from accelerator
  TLB misses: trusted shared L2 TLB, hardware page walks through the real
  page table in simulated memory, and the Protection Table insertion hook
  (paper Fig. 3b).
* :class:`~repro.iommu.iommu.FullIOMMUPath` — the safe-but-slow
  configuration where *every* accelerator request is translated and
  checked at the IOMMU and no accelerator caches exist (Table 2).
* :class:`~repro.iommu.capi.CAPILikePath` — trusted cache + TLB front end
  modeled on IBM CAPI: safety by keeping all physical addressing in
  trusted hardware, at the cost of cache proximity.
"""

from repro.iommu.ats import ATS, ATSConfig, TranslationResult
from repro.iommu.iommu import FullIOMMUPath, IOMMUViolation
from repro.iommu.capi import CAPILikePath

__all__ = [
    "ATS",
    "ATSConfig",
    "CAPILikePath",
    "FullIOMMUPath",
    "IOMMUViolation",
    "TranslationResult",
]
