"""The Address Translation Service (paper §2.3, §3.2.2).

The ATS takes a virtual address from an accelerator, walks the process
page table on the accelerator's behalf, and returns the physical address.
It is trusted hardware. Two details matter for Border Control:

* the ATS validates that the address-space ID the accelerator presents
  corresponds to a process actually running on that accelerator — a rogue
  accelerator cannot translate through someone else's page table;
* every completed translation is reported to the accelerator's Border
  Control instance, which ORs the translation's permissions into the
  Protection Table (Fig. 3b). This is what keeps the lazily populated
  table up to date for every *legitimate* physical address the
  accelerator can hold.

Timing: a trusted, shared L2 TLB (512 entries, Table 3) caches recent
translations; misses pay a hardware page walk charged one DRAM access per
radix level actually touched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, Optional, Set, Tuple

from repro.core.border_control import BorderControl
from repro.core.permissions import Perm
from repro.mem.address import PAGE_SHIFT, PAGE_SIZE, PAGES_PER_LARGE_PAGE
from repro.mem.dram import DRAM
from repro.sim.engine import Engine
from repro.sim.stats import StatDomain
from repro.vm.page_table import PageTable
from repro.vm.tlb import TLB, TLBEntry

__all__ = ["ATS", "ATSConfig", "TranslationResult"]


@dataclass(frozen=True)
class ATSConfig:
    """Timing and capacity parameters of the translation service."""

    l2_tlb_entries: int = 512  # Table 3: shared L2 TLB (trusted)
    request_latency_ticks: int = 0  # accel -> IOMMU round trip, set by builder
    l2_tlb_latency_ticks: int = 0
    walk_step_bytes: int = 8  # one PTE fetched per radix level
    # Resilience: how often a transiently faulted translation request is
    # replayed (exponential backoff) before the ATS reports failure. Only
    # exercised when a fault injector is installed — see ``ATS.fault_injector``.
    max_retries: int = 0
    retry_backoff_ticks: int = 0


@dataclass(frozen=True)
class TranslationResult:
    """What the ATS hands back to the accelerator (and Border Control)."""

    vpn: int
    ppn: int
    perms: Perm
    page_size: int = PAGE_SIZE

    @property
    def pages_covered(self) -> int:
        return self.page_size // PAGE_SIZE


class ATS:
    """Translation service shared by every accelerator in the system."""

    def __init__(
        self,
        engine: Engine,
        dram: DRAM,
        config: ATSConfig,
        stats: Optional[StatDomain] = None,
    ) -> None:
        self._engine = engine
        self._dram = dram
        self.config = config
        self.stats = stats or StatDomain("ats")
        self.l2_tlb = TLB("iommu-l2-tlb", config.l2_tlb_entries, self.stats.child("l2_tlb"))
        self._page_tables: Dict[int, PageTable] = {}  # asid -> table
        self._accel_asids: Dict[str, Set[int]] = {}  # accel -> asids it may use
        self._border_controls: Dict[str, BorderControl] = {}
        self._translations = self.stats.counter("translations")
        self._walks = self.stats.counter("page_walks")
        self._rejected = self.stats.counter("rejected_asids")
        self._failed = self.stats.counter("failed_walks")
        self._coalesced = self.stats.counter("coalesced_walks")
        self._injected_faults = self.stats.counter("injected_faults")
        self._retries = self.stats.counter("retries")
        # Chaos hook: when set, called once per translation attempt and
        # returning True makes that attempt fault transiently (a flaky
        # IOMMU link / lost completion). Retried per ``config.max_retries``.
        self.fault_injector: Optional[Callable[[], bool]] = None
        # Epoch fence (recovery): when set, called with the requesting
        # accelerator's id; returning False means the request was issued
        # under a stale attach epoch (a pre-reset device still draining
        # its queues) and the ATS refuses to translate for it.
        self.epoch_gate: Optional[Callable[[str], bool]] = None
        self._stale_epoch = self.stats.counter("stale_epoch_rejections")
        # In-flight page walks, keyed by (asid, vpn): concurrent requests
        # for the same translation ride the first walk instead of issuing
        # duplicates (page-walk coalescing, as hardware walkers do).
        self._pending_walks: Dict[Tuple[int, int], object] = {}

    # -- OS-side setup (Fig. 3a) -----------------------------------------------

    def register_address_space(self, asid: int, page_table: PageTable) -> None:
        self._page_tables[asid] = page_table

    def unregister_address_space(self, asid: int) -> None:
        self._page_tables.pop(asid, None)
        self.l2_tlb.invalidate_asid(asid)

    def allow(self, accel_id: str, asid: int) -> None:
        """Permit an accelerator to translate through an address space."""
        self._accel_asids.setdefault(accel_id, set()).add(asid)

    def disallow(self, accel_id: str, asid: int) -> None:
        self._accel_asids.get(accel_id, set()).discard(asid)

    def attach_border_control(self, accel_id: str, bc: Optional[BorderControl]) -> None:
        """Wire translation completions to a Border Control instance."""
        if bc is None:
            self._border_controls.pop(accel_id, None)
        else:
            self._border_controls[accel_id] = bc

    # -- shootdown listener ------------------------------------------------------

    def shootdown(self, asid: int, vpn: Optional[int]) -> None:
        if vpn is None:
            self.l2_tlb.invalidate_asid(asid)
        else:
            self.l2_tlb.invalidate(asid, vpn)

    # -- the translation service ----------------------------------------------------

    def translate(
        self, accel_id: str, asid: int, vpn: int, timed: bool = True
    ) -> Generator:
        """Service one translation request (simulation generator).

        Returns a :class:`TranslationResult` or ``None`` when the VPN is
        unmapped or the accelerator is not entitled to the address space.
        An injected transient fault (see ``fault_injector``) is replayed
        up to ``config.max_retries`` times with exponential backoff
        before it surfaces as a failed (``None``) translation.
        """
        attempt = 0
        while self.fault_injector is not None and self.fault_injector():
            self._injected_faults.inc()
            if attempt >= self.config.max_retries:
                self._failed.inc()
                return None
            attempt += 1
            self._retries.inc()
            if timed:
                backoff = self.config.retry_backoff_ticks * (1 << (attempt - 1))
                if backoff:
                    yield backoff
        return (yield from self._translate_once(accel_id, asid, vpn, timed))

    def _translate_once(
        self, accel_id: str, asid: int, vpn: int, timed: bool
    ) -> Generator:
        """One translation attempt (the pre-resilience service path)."""
        self._translations.inc()
        if timed and self.config.request_latency_ticks:
            yield self.config.request_latency_ticks
        if asid not in self._accel_asids.get(accel_id, set()):
            # §3.2.2: the ATS checks the ASID corresponds to a process
            # running on the requesting accelerator.
            self._rejected.inc()
            return None
        if self.epoch_gate is not None and not self.epoch_gate(accel_id):
            # Stale attach epoch: the device asking is pre-reset replayed
            # state; granting it a translation would repopulate the
            # Protection Table on its behalf mid-recovery.
            self._stale_epoch.inc()
            return None

        entry = self.l2_tlb.lookup(asid, vpn)
        if entry is not None:
            if timed and self.config.l2_tlb_latency_ticks:
                yield self.config.l2_tlb_latency_ticks
            result = TranslationResult(
                entry.vpn, entry.ppn, entry.perms, entry.pages * PAGE_SIZE
            )
            self._insert_into_border_control(accel_id, result)
            return result

        table = self._page_tables.get(asid)
        if table is None:
            self._failed.inc()
            return None

        # Coalesce with an identical in-flight walk, then re-check the TLB
        # (the finished walk inserted its — possibly large — entry).
        walk_key = (asid, vpn)
        pending = self._pending_walks.get(walk_key)
        if pending is not None and timed:
            self._coalesced.inc()
            yield pending
            entry = self.l2_tlb.lookup(asid, vpn)
            if entry is None:
                self._failed.inc()
                return None
            result = TranslationResult(
                entry.vpn, entry.ppn, entry.perms, entry.pages * PAGE_SIZE
            )
            self._insert_into_border_control(accel_id, result)
            return result

        walk_done = self._engine.event() if timed else None
        if timed:
            self._pending_walks[walk_key] = walk_done
        try:
            self._walks.inc()
            translation, footprint = table.walk(vpn)
            if timed:
                for _pte_addr in footprint:
                    yield self._dram.access(self.config.walk_step_bytes, write=False)
        finally:
            if timed:
                self._pending_walks.pop(walk_key, None)
                walk_done.succeed()
        if translation is None:
            self._failed.inc()
            return None

        # Cache the mapping at its native granularity: one TLB entry
        # covers a whole 2 MB page (§3.4.4).
        self.l2_tlb.insert(
            TLBEntry(
                asid=asid,
                vpn=translation.vpn,
                ppn=translation.ppn,
                perms=translation.perms,
                pages=translation.page_size // PAGE_SIZE,
            )
        )
        result = TranslationResult(
            translation.vpn, translation.ppn, translation.perms, translation.page_size
        )
        self._insert_into_border_control(accel_id, result)
        return result

    def _insert_into_border_control(self, accel_id: str, result: TranslationResult) -> None:
        bc = self._border_controls.get(accel_id)
        if bc is not None and bc.active:
            changed = bc.insert_translation(
                result.ppn, result.perms, result.pages_covered
            )
            if changed:
                # The BCC write-through to the in-memory Protection Table
                # consumes DRAM bandwidth (asynchronously; no stall).
                self._dram.access(8, write=True)

    # -- warm reuse -------------------------------------------------------------------

    def reset(self) -> None:
        """Return the ATS to its post-construction state.

        Address spaces, accelerator entitlements, and Border Control
        wiring are re-established by the next run's attach path; the
        ``epoch_gate`` is *kept* (it is system wiring installed once at
        construction and reads live state)."""
        self.l2_tlb.reset()
        self._page_tables.clear()
        self._accel_asids.clear()
        self._border_controls.clear()
        self._pending_walks.clear()
        self.fault_injector = None

    # -- introspection ---------------------------------------------------------------

    @property
    def translations(self) -> int:
        return self._translations.value

    @property
    def walks(self) -> int:
        return self._walks.value
