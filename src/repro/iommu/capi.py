"""The CAPI-like safety configuration (paper §2.3, §5.1, Table 2).

Modeled on IBM CAPI's philosophy: the accelerator's TLB and caches are
implemented in *trusted* hardware, so all physical addressing stays on
the trusted side and safety is inherent. The cost is coupling: the
trusted cache is more distant than a private accelerator L1 would be, so
we model only a shared L2 with added interconnect latency and no
accelerator L1s (the "longer TLB and cache access times" of §2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Optional

from repro.iommu.ats import ATS
from repro.iommu.iommu import IOMMUViolation
from repro.mem.address import BLOCK_SIZE
from repro.mem.cache import Cache
from repro.sim.stats import StatDomain

__all__ = ["CAPILikePath"]


class CAPILikePath:
    """Accelerator memory interface through a trusted cache + TLB."""

    def __init__(
        self,
        ats: ATS,
        trusted_l2: Cache,
        link_latency_ticks: int,
        stats: Optional[StatDomain] = None,
    ) -> None:
        self.ats = ats
        self.trusted_l2 = trusted_l2
        self.link_latency_ticks = link_latency_ticks
        self.stats = stats or StatDomain("capi")
        self._requests = self.stats.counter("requests")
        self._blocked = self.stats.counter("blocked")
        self.violations: List[IOMMUViolation] = []
        self._handlers: List[Callable[[IOMMUViolation], None]] = []

    def on_violation(self, handler: Callable[[IOMMUViolation], None]) -> None:
        self._handlers.append(handler)

    def mem_op(
        self,
        accel_id: str,
        asid: int,
        vaddr: int,
        write: bool,
        data: Optional[bytes] = None,
    ) -> Generator:
        """One accelerator request through the trusted front end."""
        self._requests.inc()
        # Cross the accelerator <-> trusted-unit link.
        if self.link_latency_ticks:
            yield self.link_latency_ticks
        vpn = vaddr >> 12
        result = yield from self.ats.translate(accel_id, asid, vpn)
        if result is None:
            return self._block(accel_id, vaddr, write, "untranslatable request")
        if not result.perms.allows(write):
            return self._block(accel_id, vaddr, write, "insufficient permissions")
        ppn = result.ppn + ((vaddr >> 12) - result.vpn)  # large pages: offset
        paddr = (ppn << 12) | (vaddr & 0xFFF)
        block_paddr = paddr & ~(BLOCK_SIZE - 1)
        offset = paddr - block_paddr
        if write:
            if data is None:
                raise ValueError("write requires data")
            return (
                yield from self.trusted_l2.access(
                    block_paddr + offset, len(data), True, data
                )
            )
        block = yield from self.trusted_l2.access(
            block_paddr + offset, BLOCK_SIZE - offset, False
        )
        return block

    def flush(self) -> Generator:
        """Flush the trusted cache (process completion path)."""
        written = yield from self.trusted_l2.flush_all()
        return written

    def _block(self, accel_id: str, vaddr: int, write: bool, reason: str) -> None:
        self._blocked.inc()
        violation = IOMMUViolation(accel_id, vaddr, write, reason)
        self.violations.append(violation)
        for handler in self._handlers:
            handler(violation)
        return None
