"""A simple in-order CPU core with a two-level cache hierarchy.

The core executes :class:`CPUProgram` streams — (compute-gap, vaddr,
is_write) triples like the GPU's wavefront traces, but through the CPU's
MMU (hardware page walks, permission checks, OS-serviced faults) and its
trusted write-back caches. It shares the DRAM bandwidth server with the
rest of the system, so heavy CPU phases visibly pressure accelerator
memory traffic and vice versa.

Coherence note: the CPU caches are trusted and, in the timing model, the
CPU and accelerator phases of a run don't overlap on shared data (the
Rodinia pattern: init on CPU, flush, launch kernel, read results after
completion). :meth:`CPUCore.flush_caches` publishes CPU writes before a
kernel launch; the functional MOESI model in :mod:`repro.mem.coherence`
covers the fine-grained-sharing case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional, Sequence, Tuple

from repro.errors import PageFault, ProtectionFault
from repro.mem.address import BLOCK_SIZE, PAGE_SHIFT
from repro.mem.cache import Cache, CacheConfig
from repro.mem.port import MemoryPort
from repro.osmodel.kernel import Kernel
from repro.osmodel.process import Process
from repro.sim.clock import Clock
from repro.sim.engine import Engine
from repro.sim.stats import StatDomain
from repro.vm.tlb import TLB, TLBEntry

__all__ = ["CPUCore", "CPUProgram"]

# One CPU operation: (compute-gap cycles, vaddr or None, is_write).
CPUOp = Tuple[int, Optional[int], bool]


@dataclass
class CPUProgram:
    """An instruction stream for the core."""

    name: str
    ops: List[CPUOp] = field(default_factory=list)

    @classmethod
    def memset(cls, vaddr: int, nbytes: int, gap: int = 2) -> "CPUProgram":
        """Streaming stores over ``[vaddr, vaddr+nbytes)`` (data init)."""
        ops = [
            (gap, vaddr + off, True) for off in range(0, nbytes, BLOCK_SIZE)
        ]
        return cls(name=f"memset@{vaddr:#x}", ops=ops)

    @classmethod
    def memscan(cls, vaddr: int, nbytes: int, gap: int = 2) -> "CPUProgram":
        """Streaming loads (result readback / checksum pass)."""
        ops = [
            (gap, vaddr + off, False) for off in range(0, nbytes, BLOCK_SIZE)
        ]
        return cls(name=f"memscan@{vaddr:#x}", ops=ops)

    @property
    def total_mem_ops(self) -> int:
        return sum(1 for op in self.ops if op[1] is not None)


class CPUCore:
    """One in-order core: TLB + L1 + L2 over the shared memory controller."""

    def __init__(
        self,
        engine: Engine,
        clock: Clock,
        kernel: Kernel,
        memory: MemoryPort,
        l1_bytes: int = 64 * 1024,
        l2_bytes: int = 2 * 1024 * 1024,
        tlb_entries: int = 64,
        stats: Optional[StatDomain] = None,
    ) -> None:
        self.engine = engine
        self.clock = clock
        self.kernel = kernel
        self.stats = stats or StatDomain("cpu")
        self.l2 = Cache(
            engine,
            CacheConfig(
                name="cpu-l2",
                size_bytes=l2_bytes,
                associativity=8,
                hit_latency_ticks=clock.cycles_to_ticks(12),
            ),
            memory,
            self.stats.child("l2"),
        )
        self.l1 = Cache(
            engine,
            CacheConfig(
                name="cpu-l1",
                size_bytes=l1_bytes,
                associativity=8,
                hit_latency_ticks=clock.cycles_to_ticks(4),
            ),
            self.l2,
            self.stats.child("l1"),
        )
        self.tlb = TLB("cpu-core-tlb", tlb_entries, self.stats.child("tlb"))
        self._ops = self.stats.counter("mem_ops")
        self._faults = self.stats.counter("faults_serviced")
        self._walk_penalty_ticks = clock.cycles_to_ticks(80)

    # -- translation (trusted: the core walks the page table itself) ---------

    def _translate(self, proc: Process, vaddr: int, write: bool) -> int:
        vpn = vaddr >> PAGE_SHIFT
        entry = self.tlb.lookup(proc.asid, vpn)
        if entry is None:
            translation = proc.page_table.translate_vpn(vpn)
            if translation is None:
                # OS services the fault (lazy allocation, CoW, swap-in).
                self._faults.inc()
                self.kernel.handle_page_fault(proc, vaddr, write)
                translation = proc.page_table.translate_vpn(vpn)
                if translation is None:  # pragma: no cover - defensive
                    raise PageFault(vaddr, write)
            offset = vpn - translation.vpn
            entry = TLBEntry(
                asid=proc.asid,
                vpn=vpn,
                ppn=translation.ppn + offset,
                perms=translation.perms,
            )
            self.tlb.insert(entry)
        if not entry.perms.allows(write):
            if write and proc.area_for_vpn(vpn) is not None:
                # Possible CoW: let the OS try before faulting for real.
                try:
                    self.kernel.handle_page_fault(proc, vaddr, write)
                except PageFault:
                    raise ProtectionFault(vaddr, write) from None
                self._faults.inc()
                self.tlb.invalidate(proc.asid, vpn)
                return self._translate(proc, vaddr, write)
            raise ProtectionFault(vaddr, write)
        return (entry.ppn << PAGE_SHIFT) | (vaddr & 0xFFF)

    # -- execution ------------------------------------------------------------

    def run_program(self, proc: Process, program: CPUProgram) -> Generator:
        """Simulation process executing the stream in order."""
        clock = self.clock
        for gap, vaddr, write in program.ops:
            if gap:
                yield clock.cycles_to_ticks(gap)
            if vaddr is None:
                continue
            paddr = self._translate(proc, vaddr, write)
            self._ops.inc()
            size = min(BLOCK_SIZE, BLOCK_SIZE - (paddr & (BLOCK_SIZE - 1)))
            if write:
                payload = (vaddr & (2**64 - 1)).to_bytes(8, "little") * (size // 8 or 1)
                yield from self.l1.access(paddr, size, True, payload[:size])
            else:
                yield from self.l1.access(paddr, size, False)
        return program.total_mem_ops

    def execute(self, proc: Process, program: CPUProgram) -> int:
        """Synchronous facade: run to completion, return elapsed ticks."""
        start = self.engine.now
        self.engine.run_process(
            self.run_program(proc, program), name=f"cpu-{program.name}"
        )
        return self.engine.now - start

    # -- maintenance ------------------------------------------------------------

    def flush_caches(self) -> int:
        """Publish dirty CPU data to memory (before a kernel launch)."""
        written = self.engine.run_process(self.l1.flush_all())
        written += self.engine.run_process(self.l2.flush_all())
        return written

    def context_switch(self) -> None:
        self.tlb.invalidate_all()

    # -- shootdown listener protocol ----------------------------------------------

    def shootdown(self, asid: int, vpn: Optional[int] = None) -> None:
        if vpn is None:
            self.tlb.invalidate_asid(asid)
        else:
            self.tlb.invalidate(asid, vpn)

    @property
    def mem_ops(self) -> int:
        return self._ops.value
