"""The trusted CPU core (Table 3: 1 core, 64 KB L1, 2 MB L2, 3 GHz).

The CPU is first-party, trusted hardware: its MMU walks page tables
itself and enforces permissions before any access leaves the core, so no
Border Control applies to it. In the paper's evaluation the CPU mostly
initializes workload data and launches kernels (Rodinia's structure);
the model here does exactly that, with its own cache hierarchy sharing
the DRAM channel with the accelerator.
"""

from repro.cpu.core import CPUCore, CPUProgram

__all__ = ["CPUCore", "CPUProgram"]
