"""MOESI coherence with the Border Control cache-organization invariant.

The paper integrates Border Control into a MOESI CPU-GPU protocol with a
null directory (§5.1) and requires one invariant of any coherent system
containing untrusted caches (§3.4.3):

    *an untrusted cache must never be the supplier of data for a block for
    which it does not have write permission.*

Concretely: ownership (M or O) of non-writable blocks stays with the
directory or trusted caches; a read-only request from an untrusted cache
is never answered with an owned/exclusive state; and — the exclusive-cache
corner case — a dirty block requested read-only by an untrusted cache is
first written back to memory, so the untrusted copy is clean.

This module is a *functional* protocol model: it moves real bytes between
agent caches and physical memory and asserts protocol legality on every
transition. The timing path of the evaluation uses the simpler
write-through-L1 / write-back-L2 accelerator hierarchy of §5.1, with
Border Control checking the L2's fills and writebacks; this model backs
the unit/property tests of the invariant and the CPU-side substrate.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.mem.address import BLOCK_SIZE, block_of, ppn_of
from repro.mem.phys_memory import PhysicalMemory

__all__ = ["State", "CoherenceError", "CoherentAgent", "CoherenceController"]

# (agent, ppn) -> bool: does the agent currently have write permission?
WritePermCheck = Callable[["CoherentAgent", int], bool]


class State(enum.Enum):
    """MOESI stable states."""

    MODIFIED = "M"
    OWNED = "O"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    @property
    def is_owner(self) -> bool:
        return self in (State.MODIFIED, State.OWNED, State.EXCLUSIVE)

    @property
    def is_dirty(self) -> bool:
        return self in (State.MODIFIED, State.OWNED)


class CoherenceError(RuntimeError):
    """An illegal protocol transition or invariant violation."""


class CoherentAgent:
    """One cache participating in the protocol.

    ``untrusted`` marks accelerator caches that sit beyond the Border
    Control boundary; the controller applies the §3.4.3 restrictions to
    them.
    """

    def __init__(self, name: str, untrusted: bool = False) -> None:
        self.name = name
        self.untrusted = untrusted
        self.blocks: Dict[int, Tuple[State, bytearray]] = {}
        self._controller: Optional["CoherenceController"] = None

    # -- state inspection ----------------------------------------------------

    def state_of(self, block_addr: int) -> State:
        block_addr = block_of(block_addr)
        entry = self.blocks.get(block_addr)
        return entry[0] if entry else State.INVALID

    def data_of(self, block_addr: int) -> Optional[bytes]:
        entry = self.blocks.get(block_of(block_addr))
        return bytes(entry[1]) if entry else None

    # -- requests (delegate to the controller) -------------------------------

    def load(self, block_addr: int) -> bytes:
        """Read a whole block, acquiring it if necessary (GetS)."""
        block_addr = block_of(block_addr)
        entry = self.blocks.get(block_addr)
        if entry is not None:
            return bytes(entry[1])
        return self._ctrl.get_shared(self, block_addr)

    def store(self, block_addr: int, data: bytes) -> None:
        """Write a whole block, acquiring ownership if necessary (GetM)."""
        block_addr = block_of(block_addr)
        if len(data) != BLOCK_SIZE:
            raise CoherenceError("stores are block-granular")
        entry = self.blocks.get(block_addr)
        if entry is None or entry[0] not in (State.MODIFIED, State.EXCLUSIVE):
            self._ctrl.get_modified(self, block_addr)
        state, buf = self.blocks[block_addr]
        buf[:] = data
        self.blocks[block_addr] = (State.MODIFIED, buf)

    def evict(self, block_addr: int) -> None:
        """Evict a block (PutM writeback if dirty, silent otherwise)."""
        block_addr = block_of(block_addr)
        entry = self.blocks.pop(block_addr, None)
        if entry is None:
            return
        state, buf = entry
        self._ctrl.handle_eviction(self, block_addr, state, bytes(buf))

    @property
    def _ctrl(self) -> "CoherenceController":
        if self._controller is None:
            raise CoherenceError(f"agent {self.name} not attached to a controller")
        return self._controller


class CoherenceController:
    """Null-directory MOESI controller over physical memory.

    A "null" directory tracks no sharer bits persistently in DRAM; this
    model keeps the sharer/owner sets in controller state, which is what
    the gem5 null-directory protocol effectively does at a functional
    level.
    """

    def __init__(
        self,
        memory: PhysicalMemory,
        write_perm_check: Optional[WritePermCheck] = None,
    ) -> None:
        self.memory = memory
        self.agents: List[CoherentAgent] = []
        # For untrusted agents: may they write this page right now? The
        # Border Control engine installs its Protection Table lookup here.
        self.write_perm_check = write_perm_check or (lambda agent, ppn: True)
        self.stats = {
            "gets": 0,
            "getm": 0,
            "writebacks": 0,
            "forced_writebacks": 0,
            "blocked_writebacks": 0,
        }

    def attach(self, agent: CoherentAgent) -> CoherentAgent:
        if agent._controller is not None:
            raise CoherenceError(f"agent {agent.name} already attached")
        agent._controller = self
        self.agents.append(agent)
        return agent

    # -- directory views -------------------------------------------------------

    def holders(self, block_addr: int) -> List[Tuple[CoherentAgent, State]]:
        out = []
        for agent in self.agents:
            state = agent.state_of(block_addr)
            if state is not State.INVALID:
                out.append((agent, state))
        return out

    def owner(self, block_addr: int) -> Optional[Tuple[CoherentAgent, State]]:
        for agent, state in self.holders(block_addr):
            if state.is_owner:
                return agent, state
        return None

    # -- transactions ------------------------------------------------------------

    def get_shared(self, requester: CoherentAgent, block_addr: int) -> bytes:
        """GetS: acquire a readable copy for ``requester``."""
        self.stats["gets"] += 1
        owner_entry = self.owner(block_addr)
        if owner_entry is None:
            data = self.memory.read(block_addr, BLOCK_SIZE)
            others = self.holders(block_addr)
            if not others and not requester.untrusted:
                # Sole trusted holder may take E. Untrusted caches never
                # receive E for a GetS: E permits a silent upgrade to M,
                # which would let a read-only block become a data supplier
                # (paper §3.4.3).
                requester.blocks[block_addr] = (State.EXCLUSIVE, bytearray(data))
            else:
                requester.blocks[block_addr] = (State.SHARED, bytearray(data))
            return data

        owner, owner_state = owner_entry
        data = bytes(owner.blocks[block_addr][1])
        if owner_state is State.EXCLUSIVE:
            owner.blocks[block_addr] = (State.SHARED, owner.blocks[block_addr][1])
        elif owner_state in (State.MODIFIED, State.OWNED):
            if requester.untrusted and not self._may_write(requester, block_addr):
                # Exclusive-cache corner case (§3.4.3): write the dirty
                # data back so the untrusted copy is clean and ownership
                # returns to memory.
                self.memory.write(block_addr, data)
                self.stats["forced_writebacks"] += 1
                owner.blocks[block_addr] = (State.SHARED, owner.blocks[block_addr][1])
            else:
                owner.blocks[block_addr] = (State.OWNED, owner.blocks[block_addr][1])
        requester.blocks[block_addr] = (State.SHARED, bytearray(data))
        self._assert_invariant(block_addr)
        return data

    def get_modified(self, requester: CoherentAgent, block_addr: int) -> None:
        """GetM: acquire an exclusive writable copy for ``requester``."""
        self.stats["getm"] += 1
        if requester.untrusted and not self._may_write(requester, block_addr):
            raise CoherenceError(
                f"untrusted agent {requester.name} requested ownership of "
                f"non-writable block {block_addr:#x}"
            )
        owner_entry = self.owner(block_addr)
        if owner_entry is not None:
            owner, _state = owner_entry
            data = bytearray(owner.blocks[block_addr][1])
        else:
            existing = requester.blocks.get(block_addr)
            if existing is not None:
                data = existing[1]
            else:
                data = bytearray(self.memory.read(block_addr, BLOCK_SIZE))
        for agent in self.agents:
            if agent is not requester:
                agent.blocks.pop(block_addr, None)
        requester.blocks[block_addr] = (State.MODIFIED, data)
        self._assert_invariant(block_addr)

    def handle_eviction(
        self, agent: CoherentAgent, block_addr: int, state: State, data: bytes
    ) -> bool:
        """PutM/PutO writeback on eviction; returns True if memory updated."""
        if not state.is_dirty:
            return False
        if agent.untrusted and not self._may_write(agent, block_addr):
            # The border blocks the writeback; the dirty data is dropped
            # (this is the "accelerator ignored the flush" path, §3.2.4).
            self.stats["blocked_writebacks"] += 1
            return False
        self.memory.write(block_addr, data)
        self.stats["writebacks"] += 1
        return True

    # -- the §3.4.3 invariant ------------------------------------------------------

    def _may_write(self, agent: CoherentAgent, block_addr: int) -> bool:
        return self.write_perm_check(agent, ppn_of(block_addr))

    def _assert_invariant(self, block_addr: int) -> None:
        states = [s for _a, s in self.holders(block_addr)]
        owners = [s for s in states if s.is_owner]
        if len(owners) > 1:
            raise CoherenceError(f"multiple owners for block {block_addr:#x}")
        if State.MODIFIED in states or State.EXCLUSIVE in states:
            if len(states) != 1:
                raise CoherenceError(
                    f"M/E coexists with other copies for block {block_addr:#x}"
                )
        for agent, state in self.holders(block_addr):
            if agent.untrusted and state.is_owner:
                if not self._may_write(agent, block_addr):
                    raise CoherenceError(
                        f"untrusted agent {agent.name} owns non-writable "
                        f"block {block_addr:#x} (Border Control invariant)"
                    )

    def check_all_invariants(self) -> None:
        """Verify the ownership invariant for every resident block."""
        blocks: Set[int] = set()
        for agent in self.agents:
            blocks.update(agent.blocks)
        for block_addr in blocks:
            self._assert_invariant(block_addr)
