"""Byte-addressable physical memory with real backing data.

The functional model stores actual bytes so that safety properties are
observable end to end: a secret written by one process is *really there*
in physical memory, and a blocked border crossing *really* fails to read
it. Storage is allocated lazily at frame (4 KB) granularity so a 16 GB
simulated address space costs only what is touched.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.errors import UnmappedAddressError
from repro.mem.address import PAGE_SHIFT, PAGE_SIZE, ppn_of

__all__ = ["PhysicalMemory"]


class PhysicalMemory:
    """Lazily backed simulated physical memory.

    Reads of never-written frames return zeros (DRAM content after the OS
    scrubs a frame); writes allocate the frame's backing store on demand.
    Accesses beyond ``size`` raise :class:`UnmappedAddressError` — physical
    memory has a hard top, which is what Border Control's bounds register
    checks against.
    """

    def __init__(self, size: int) -> None:
        if size <= 0 or size % PAGE_SIZE:
            raise ValueError("physical memory size must be a positive multiple of 4 KB")
        self.size = size
        self.num_frames = size >> PAGE_SHIFT
        self._frames: Dict[int, bytearray] = {}

    # -- bounds ------------------------------------------------------------

    def contains(self, paddr: int, length: int = 1) -> bool:
        return 0 <= paddr and paddr + length <= self.size

    def _check(self, paddr: int, length: int) -> None:
        if length < 0:
            raise ValueError("negative access length")
        if not self.contains(paddr, max(1, length)):
            raise UnmappedAddressError(
                f"physical access [{paddr:#x}, +{length}) beyond top of memory "
                f"({self.size:#x})"
            )

    # -- data access ---------------------------------------------------------

    def read(self, paddr: int, length: int) -> bytes:
        """Read ``length`` bytes starting at physical address ``paddr``."""
        self._check(paddr, length)
        out = bytearray(length)
        pos = 0
        addr = paddr
        while pos < length:
            frame = ppn_of(addr)
            offset = addr & (PAGE_SIZE - 1)
            chunk = min(length - pos, PAGE_SIZE - offset)
            backing = self._frames.get(frame)
            if backing is not None:
                out[pos : pos + chunk] = backing[offset : offset + chunk]
            pos += chunk
            addr += chunk
        return bytes(out)

    def write(self, paddr: int, data: bytes) -> None:
        """Write ``data`` starting at physical address ``paddr``."""
        self._check(paddr, len(data))
        pos = 0
        addr = paddr
        length = len(data)
        while pos < length:
            frame = ppn_of(addr)
            offset = addr & (PAGE_SIZE - 1)
            chunk = min(length - pos, PAGE_SIZE - offset)
            backing = self._frames.get(frame)
            if backing is None:
                backing = bytearray(PAGE_SIZE)
                self._frames[frame] = backing
            backing[offset : offset + chunk] = data[pos : pos + chunk]
            pos += chunk
            addr += chunk

    # -- word helpers ---------------------------------------------------------

    def read_u64(self, paddr: int) -> int:
        return int.from_bytes(self.read(paddr, 8), "little")

    def write_u64(self, paddr: int, value: int) -> None:
        self.write(paddr, (value & (2**64 - 1)).to_bytes(8, "little"))

    # -- frame management -------------------------------------------------------

    def zero_range(self, paddr: int, length: int) -> None:
        """Zero ``[paddr, paddr+length)``, dropping fully covered frames."""
        self._check(paddr, length)
        end = paddr + length
        addr = paddr
        while addr < end:
            frame = ppn_of(addr)
            offset = addr & (PAGE_SIZE - 1)
            chunk = min(end - addr, PAGE_SIZE - offset)
            if chunk == PAGE_SIZE:
                self._frames.pop(frame, None)
            else:
                backing = self._frames.get(frame)
                if backing is not None:
                    backing[offset : offset + chunk] = bytes(chunk)
            addr += chunk

    def reset(self) -> None:
        """Warm-reuse reset: drop all backing store (all-zero memory)."""
        self._frames.clear()

    def touched_frames(self) -> Iterator[Tuple[int, bytearray]]:
        """Iterate over (frame number, backing) for frames ever written."""
        return iter(sorted(self._frames.items()))

    @property
    def resident_bytes(self) -> int:
        """Host-side memory actually allocated for backing store."""
        return len(self._frames) * PAGE_SIZE

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"PhysicalMemory(size={self.size / 2**20:g} MiB, "
            f"resident={self.resident_bytes / 2**20:g} MiB)"
        )
