"""DRAM timing model: fixed access latency plus a shared bandwidth server.

The paper's memory system provides 180 GB/s of peak bandwidth (Table 3).
We model DRAM as a fixed per-access latency in series with a FIFO
bandwidth channel; when the accelerator's offered load approaches the
channel's capacity — as it does for the cache-less full-IOMMU
configuration — queueing delay dominates and runtime scales with total
bytes moved, reproducing the saturation behavior behind Fig. 4a.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.clock import TICKS_PER_SECOND, Clock
from repro.sim.engine import BandwidthServer, Engine
from repro.sim.stats import StatDomain

__all__ = ["DRAM", "DRAMConfig"]


@dataclass(frozen=True)
class DRAMConfig:
    """Timing parameters for the memory system."""

    peak_bandwidth_bytes_per_s: float = 180e9  # Table 3
    access_latency_ns: float = 60.0  # row access + controller
    block_size: int = 128
    # Channel occupancy charged per access on top of the transfer itself
    # (activate/precharge, command overhead). 128 B means a random block
    # access achieves ~50% of peak bandwidth, which is what lets the
    # cache-less full-IOMMU configuration overwhelm DRAM (paper §5.2).
    access_overhead_bytes: int = 128


class DRAM:
    """The timing side of main memory (data lives in PhysicalMemory)."""

    def __init__(self, engine: Engine, config: DRAMConfig, stats: StatDomain) -> None:
        self._engine = engine
        self.config = config
        self._channel = BandwidthServer(
            engine, config.peak_bandwidth_bytes_per_s, TICKS_PER_SECOND
        )
        self.latency_ticks = int(round(config.access_latency_ns * 1_000))  # ns -> ps
        self._stats = stats
        self._reads = stats.counter("reads")
        self._writes = stats.counter("writes")
        self._bytes = stats.counter("bytes")

    def access(self, nbytes: int, write: bool) -> int:
        """Account one DRAM access; returns its total latency in ticks.

        The returned delay is queueing + transfer + fixed access latency.
        Callers (caches, the IOMMU, Border Control's Protection Table
        reads) yield this delay in their simulation processes.
        """
        (self._writes if write else self._reads).value += 1
        self._bytes.value += nbytes
        queue_and_transfer = self._channel.request(
            nbytes + self.config.access_overhead_bytes
        )
        return queue_and_transfer + self.latency_ticks

    def utilization(self, elapsed_ticks: int) -> float:
        return self._channel.utilization(elapsed_ticks)

    def reset(self) -> None:
        """Warm-reuse reset: idle channel, as freshly constructed."""
        self._channel.reset()

    @property
    def bytes_served(self) -> int:
        """Data bytes moved (excluding the per-access overhead charge)."""
        return self._bytes.value

    def gpu_cycles(self, clock: Clock, elapsed_ticks: int) -> float:  # pragma: no cover
        """Convenience for reporting: elapsed time in a clock's cycles."""
        return clock.ticks_to_cycles(elapsed_ticks)
