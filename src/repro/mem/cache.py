"""Set-associative cache model (functional data + transaction-level timing).

Caches store real block data so that the safety story is end-to-end: a
dirty line in an accelerator cache holds bytes that have *not* reached
physical memory, and if Border Control later blocks the writeback those
bytes are provably lost rather than leaked (paper §3.2.4).

Features used by the evaluation:

* write-back or write-through policies (the paper's GPU uses write-through
  L1s and a write-back L2 under a MOESI CPU-GPU protocol);
* MSHR-style coalescing of concurrent misses to the same block;
* whole-cache and per-page flush/invalidate (permission downgrades and
  process completion, paper §3.2.4-3.2.5);
* hit/miss/writeback statistics consumed by the experiment harness.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.mem.address import BLOCK_SIZE, PAGE_SHIFT
from repro.mem.port import MemoryPort
from repro.sim.engine import Engine, Event
from repro.sim.stats import StatDomain

__all__ = ["Cache", "CacheConfig", "Line"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy for one cache level."""

    name: str
    size_bytes: int
    associativity: int
    hit_latency_ticks: int
    block_size: int = BLOCK_SIZE
    write_back: bool = True
    write_allocate: bool = True
    mshrs: int = 32

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.size_bytes % (self.block_size * self.associativity):
            raise ConfigurationError(
                f"{self.name}: size {self.size_bytes} not divisible into "
                f"{self.associativity}-way sets of {self.block_size} B blocks"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.block_size * self.associativity)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.block_size


class Line:
    """One cache line: tag state plus the block's actual bytes."""

    __slots__ = ("block_addr", "data", "dirty")

    def __init__(self, block_addr: int, data: bytes, dirty: bool = False) -> None:
        self.block_addr = block_addr
        self.data = bytearray(data)
        self.dirty = dirty


class Cache(MemoryPort):
    """A single cache level backed by a downstream :class:`MemoryPort`."""

    def __init__(
        self,
        engine: Engine,
        config: CacheConfig,
        downstream: MemoryPort,
        stats: StatDomain,
    ) -> None:
        self._engine = engine
        self.config = config
        self.name = config.name
        self.downstream = downstream
        # Memoized geometry: block size is a power of two throughout (the
        # tag math below relies on it), so set selection is a shift plus a
        # modulo instead of two attribute loads and a division per access.
        block_size = config.block_size
        if block_size & (block_size - 1):
            raise ConfigurationError(
                f"{config.name}: block size {block_size} is not a power of two"
            )
        self._block_size = block_size
        self._block_mask = block_size - 1
        self._block_shift = block_size.bit_length() - 1
        self._num_sets = config.num_sets
        self._hit_latency = config.hit_latency_ticks
        # Each set is an OrderedDict keyed by block address; the order is
        # recency (last item = most recently used).
        self._sets: List["OrderedDict[int, Line]"] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        self._pending: Dict[int, Event] = {}  # block addr -> fill completion
        # Residency version for the vector tier's memoized snapshots
        # (repro.sim.batch): bumped whenever the set of resident blocks
        # changes. Recency-only touches (hits) do not bump it — snapshot
        # consumers only classify hit/miss, never recency order.
        self.version = 0
        self._vec_snap = None
        self._stats = stats
        self._hits = stats.counter("hits")
        self._misses = stats.counter("misses")
        self._writebacks = stats.counter("writebacks")
        self._blocked_fills = stats.counter("blocked_fills")
        self._blocked_writebacks = stats.counter("blocked_writebacks")
        self._flushes = stats.counter("flushes")

    # -- geometry -----------------------------------------------------------

    def _set_for(self, block_addr: int) -> "OrderedDict[int, Line]":
        index = (block_addr >> self._block_shift) % self._num_sets
        return self._sets[index]

    def lookup(self, addr: int) -> Optional[Line]:
        """Probe without any side effects (no recency update, no timing)."""
        block_addr = addr & ~self._block_mask
        return self._set_for(block_addr).get(block_addr)

    # -- batched-replay fast path -------------------------------------------

    def probe_read_hit(self, addr: int, size: int) -> Optional[Line]:
        """Pure probe for the batched-replay fast path.

        Returns the resident line when a read of ``size`` bytes at ``addr``
        would be a plain hit, with *no* side effects — no recency touch, no
        counters. A ``None`` return (miss, or a block-straddling access the
        generator path must reject) leaves the cache untouched, so the
        caller can fall back to :meth:`access` without double counting.
        """
        block_addr = addr & ~self._block_mask
        if (addr - block_addr) + size > self._block_size:
            return None
        return self._sets[(block_addr >> self._block_shift) % self._num_sets].get(
            block_addr
        )

    def commit_read_hit(self, line: Line) -> None:
        """Commit the side effects of a probed read hit.

        Applies exactly what the hit path of :meth:`access` applies — the
        LRU recency touch and the hit counter — so a batched replay that
        probed with :meth:`probe_read_hit` leaves the cache in the same
        state the generator path would have.
        """
        block_addr = line.block_addr
        self._sets[(block_addr >> self._block_shift) % self._num_sets].move_to_end(
            block_addr
        )
        self._hits.value += 1

    # -- the port protocol -------------------------------------------------

    def access(
        self, addr: int, size: int, write: bool, data: Optional[bytes] = None
    ) -> Generator:
        block_addr = addr & ~self._block_mask
        offset = addr - block_addr
        if offset + size > self._block_size:
            raise ConfigurationError(
                f"{self.name}: access [{addr:#x}, +{size}) straddles a block"
            )
        yield self._hit_latency
        return (
            yield from self._after_latency(block_addr, offset, size, write, data)
        )

    def _after_latency(
        self,
        block_addr: int,
        offset: int,
        size: int,
        write: bool,
        data: Optional[bytes],
    ) -> Generator:
        """The post-hit-latency half of :meth:`access`.

        Split out so the vector tier's flattened read path — which probes
        at dispatch time and re-validates at the hit-latency boundary —
        can replay exactly this code when the line turned out not to be
        resident: the hit/miss decision is made *here*, at the same
        simulated instant the scalar path makes it.
        """
        cache_set = self._sets[(block_addr >> self._block_shift) % self._num_sets]
        line = cache_set.get(block_addr)
        if line is not None:
            cache_set.move_to_end(block_addr)
            self._hits.value += 1
        elif write and not self.config.write_allocate:
            # Write-no-allocate (the GPU's write-through L1s): forward the
            # store downstream without filling the line here.
            self._misses.value += 1
            if data is None:
                raise ValueError("write access requires data")
            result = yield from self.downstream.access(
                block_addr + offset, size, True, data[:size]
            )
            return b"" if result is not None else None
        else:
            # Coalesce with an in-flight fill of the same block if any.
            pending = self._pending.get(block_addr)
            if pending is not None:
                yield pending
                line = self._set_for(block_addr).get(block_addr)
                if line is None:
                    # The fill was blocked at a border downstream.
                    return None
                self._hits.value += 1
            else:
                line = yield from self._fill(block_addr)
                if line is None:
                    return None

        if not write:
            return bytes(line.data[offset : offset + size])

        if data is None:
            raise ValueError("write access requires data")
        line.data[offset : offset + size] = data[:size]
        if self.config.write_back:
            line.dirty = True
            return b""
        # Write-through: propagate the written bytes downstream now.
        result = yield from self.downstream.access(
            block_addr + offset, size, True, data[:size]
        )
        if result is None:
            # The downstream border blocked the write: the line must not
            # keep bytes that memory never received as if they were clean.
            self._invalidate_line(block_addr)
            return None
        return b""

    # -- fills and evictions ---------------------------------------------------

    def _fill(self, block_addr: int) -> Generator:
        """Miss path: fetch the block downstream and insert it."""
        self._misses.value += 1
        done = self._engine.event()
        self._pending[block_addr] = done
        try:
            fetched = yield from self.downstream.access(
                block_addr, self.config.block_size, False
            )
        finally:
            self._pending.pop(block_addr, None)
        if fetched is None:
            self._blocked_fills.inc()
            done.succeed(None)
            return None
        line = Line(block_addr, fetched)
        victim = self._insert(line)
        done.succeed(line)
        if victim is not None and victim.dirty:
            # Evicted dirty data drains through a writeback buffer; it does
            # not stall the access that triggered the eviction.
            self._engine.process(
                self._write_back(victim), name=f"{self.name}-writeback"
            )
        return line

    def _insert(self, line: Line) -> Optional[Line]:
        """Insert a line, returning the evicted victim (if any)."""
        cache_set = self._set_for(line.block_addr)
        victim: Optional[Line] = None
        if len(cache_set) >= self.config.associativity:
            _addr, victim = cache_set.popitem(last=False)  # LRU
        cache_set[line.block_addr] = line
        self.version += 1
        return victim

    def _write_back(self, line: Line) -> Generator:
        self._writebacks.inc()
        result = yield from self.downstream.access(
            line.block_addr, self.config.block_size, True, bytes(line.data)
        )
        if result is None:
            self._blocked_writebacks.inc()

    def _invalidate_line(self, block_addr: int) -> None:
        self._set_for(block_addr).pop(block_addr, None)
        self.version += 1

    # -- maintenance operations --------------------------------------------------

    def flush_all(self) -> Generator:
        """Write back every dirty line and invalidate the whole cache.

        Used on permission downgrades and process completion (§3.2.4-5).
        Writebacks are pipelined (bandwidth-limited, as flush engines are)
        and the flush completes only when every writeback has finished —
        the caller must not revoke permissions before then. Returns the
        number of lines written back.
        """
        self._flushes.inc()
        self.version += 1
        pending = []
        for cache_set in self._sets:
            lines = list(cache_set.values())
            cache_set.clear()
            for line in lines:
                if line.dirty:
                    pending.append(
                        self._engine.process(
                            self._write_back(line), name=f"{self.name}-flush-wb"
                        )
                    )
        if pending:
            yield self._engine.all_of(pending)
        return len(pending)

    def flush_page(self, ppn: int) -> Generator:
        """Selective flush: write back and invalidate lines of one page."""
        self._flushes.inc()
        self.version += 1
        pending = []
        for cache_set in self._sets:
            doomed = [
                addr for addr in cache_set if (addr >> PAGE_SHIFT) == ppn
            ]
            for addr in doomed:
                line = cache_set.pop(addr)
                if line.dirty:
                    pending.append(
                        self._engine.process(
                            self._write_back(line), name=f"{self.name}-flush-wb"
                        )
                    )
        if pending:
            yield self._engine.all_of(pending)
        return len(pending)

    def invalidate_all(self) -> int:
        """Drop every line *without* writing anything back.

        This models a buggy/malicious accelerator discarding its state, or
        a clean invalidate when the caller knows nothing is dirty. Returns
        the number of dirty lines whose data was lost.
        """
        lost = 0
        for cache_set in self._sets:
            for line in cache_set.values():
                if line.dirty:
                    lost += 1
            cache_set.clear()
        self.version += 1
        return lost

    def reset(self) -> None:
        """Warm-reuse reset: drop every line and in-flight fill, silently.

        Unlike :meth:`invalidate_all` this is not a modeled hardware
        operation — it returns the cache to its post-construction state
        between simulations (counters are zeroed separately through the
        owning :class:`StatDomain`)."""
        for cache_set in self._sets:
            cache_set.clear()
        self._pending.clear()
        self.version += 1
        self._vec_snap = None  # warm reuse must carry no batch state

    # -- introspection ------------------------------------------------------

    def dirty_lines(self) -> List[Line]:
        return [
            line
            for cache_set in self._sets
            for line in cache_set.values()
            if line.dirty
        ]

    def resident_blocks(self) -> List[int]:
        return sorted(
            addr for cache_set in self._sets for addr in cache_set.keys()
        )

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def writebacks(self) -> int:
        return self._writebacks.value

    def __repr__(self) -> str:  # pragma: no cover
        cfg = self.config
        return (
            f"Cache({cfg.name}, {cfg.size_bytes // 1024} KiB, "
            f"{cfg.associativity}-way, {'WB' if cfg.write_back else 'WT'})"
        )
