"""The memory-port protocol every timing component speaks.

A *port* is anything that can service a block-granular memory access:
DRAM behind a memory controller, a cache level, the IOMMU, a CAPI-like
trusted front-end, or Border Control itself. Ports compose into a chain
(e.g. wavefront -> L1 -> L2 -> Border Control -> memory controller), and
each access is a simulation generator so latencies and queueing compose
naturally.

``access`` returns the block's bytes for reads, ``b""`` for completed
writes, and ``None`` when the access was *blocked* at a trusted/untrusted
border (the data is withheld and the write is dropped — paper §3.2.3).

The fault-injection layer reuses the same ``None`` convention for *lost*
accesses: a :class:`~repro.faults.port.FaultyPort` interposer that drops
or hangs a response makes it surface as ``None``, so upstream components
need no failure modes beyond the one the border already taught them.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.mem.phys_memory import PhysicalMemory
from repro.mem.dram import DRAM

__all__ = ["AccessResult", "MemoryPort", "MemoryController"]

#: What one serviced access yields back: bytes (read), ``b""`` (completed
#: write), or ``None`` (blocked at a border, or lost to an injected fault).
AccessResult = Optional[bytes]


class MemoryPort:
    """Abstract base: a component that services memory accesses."""

    name = "port"

    def access(
        self, addr: int, size: int, write: bool, data: Optional[bytes] = None
    ) -> Generator:
        """Service one access. Simulation generator; see module docstring."""
        raise NotImplementedError
        yield  # pragma: no cover


class MemoryController(MemoryPort):
    """The bottom of every chain: DRAM timing + physical memory data.

    This is trusted hardware. Every access that reaches it is applied to
    the functional :class:`PhysicalMemory` after the DRAM model's queueing
    and access latency have elapsed.
    """

    name = "memctl"

    def __init__(self, phys: PhysicalMemory, dram: DRAM) -> None:
        self.phys = phys
        self.dram = dram

    def access(
        self, addr: int, size: int, write: bool, data: Optional[bytes] = None
    ) -> Generator:
        delay = self.dram.access(size, write)
        if delay:
            yield delay
        if write:
            if data is None:
                raise ValueError("write access requires data")
            self.phys.write(addr, data[:size])
            return b""
        return self.phys.read(addr, size)
