"""Address arithmetic shared by every memory component.

The paper's system uses 4 KB base pages, optional 2 MB large pages, and a
128-byte memory block (cache line) size — a Protection Table block of
128 bytes therefore covers 512 pages (§3.1.2). These constants and helpers
are the single source of truth for that arithmetic.
"""

from __future__ import annotations

__all__ = [
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "LARGE_PAGE_SHIFT",
    "LARGE_PAGE_SIZE",
    "PAGES_PER_LARGE_PAGE",
    "BLOCK_SHIFT",
    "BLOCK_SIZE",
    "BLOCK_MASK",
    "PAGE_MASK",
    "LARGE_VPN_BASE_MASK",
    "align_down",
    "align_up",
    "block_of",
    "block_offset",
    "is_page_aligned",
    "page_base",
    "page_offset",
    "pages_spanned",
    "ppn_of",
    "vpn_of",
]

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT  # 4 KB, minimum page size (paper §3.1.1)

LARGE_PAGE_SHIFT = 21
LARGE_PAGE_SIZE = 1 << LARGE_PAGE_SHIFT  # 2 MB large pages (paper §3.4.4)
PAGES_PER_LARGE_PAGE = LARGE_PAGE_SIZE // PAGE_SIZE  # 512

BLOCK_SHIFT = 7
BLOCK_SIZE = 1 << BLOCK_SHIFT  # 128-byte memory blocks (paper §3.1.2)

# Masks precomputed for the hot paths (scalar fast-reads and the
# vectorized batch tier share this arithmetic).
BLOCK_MASK = BLOCK_SIZE - 1
PAGE_MASK = PAGE_SIZE - 1
# A 2 MB large-page TLB entry is 512-page aligned; ANDing a VPN with this
# mask yields the entry's base VPN.
LARGE_VPN_BASE_MASK = ~(PAGES_PER_LARGE_PAGE - 1)


def ppn_of(paddr: int) -> int:
    """Physical page number containing physical address ``paddr``."""
    return paddr >> PAGE_SHIFT


def vpn_of(vaddr: int) -> int:
    """Virtual page number containing virtual address ``vaddr``."""
    return vaddr >> PAGE_SHIFT


def page_base(addr: int) -> int:
    """Base address of the 4 KB page containing ``addr``."""
    return addr & ~(PAGE_SIZE - 1)


def page_offset(addr: int) -> int:
    """Byte offset of ``addr`` within its 4 KB page."""
    return addr & (PAGE_SIZE - 1)


def block_of(addr: int) -> int:
    """Base address of the 128 B memory block containing ``addr``."""
    return addr & ~(BLOCK_SIZE - 1)


def block_offset(addr: int) -> int:
    """Byte offset of ``addr`` within its memory block."""
    return addr & (BLOCK_SIZE - 1)


def is_page_aligned(addr: int) -> bool:
    return (addr & (PAGE_SIZE - 1)) == 0


def align_down(addr: int, alignment: int) -> int:
    """Round ``addr`` down to a multiple of ``alignment`` (a power of two)."""
    _check_pow2(alignment)
    return addr & ~(alignment - 1)


def align_up(addr: int, alignment: int) -> int:
    """Round ``addr`` up to a multiple of ``alignment`` (a power of two)."""
    _check_pow2(alignment)
    return (addr + alignment - 1) & ~(alignment - 1)


def pages_spanned(addr: int, length: int) -> int:
    """Number of distinct 4 KB pages touched by ``[addr, addr+length)``."""
    if length <= 0:
        return 0
    first = ppn_of(addr)
    last = ppn_of(addr + length - 1)
    return last - first + 1


def _check_pow2(value: int) -> None:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"alignment must be a positive power of two, got {value}")
