"""Memory-system substrate: physical memory, DRAM timing, caches, coherence.

These are the trusted-side building blocks the paper assumes: a physical
address space with real backing data, a bandwidth-limited DRAM model, set-
associative caches with write-back/write-through policies, and a MOESI
coherence layer that enforces the Border Control cache-organization
invariant (paper §3.4.3).
"""

from repro.mem.address import (
    BLOCK_SIZE,
    PAGE_SIZE,
    LARGE_PAGE_SIZE,
    align_down,
    align_up,
    block_of,
    is_page_aligned,
    page_offset,
    pages_spanned,
    ppn_of,
    vpn_of,
)
from repro.mem.cache import Cache, CacheConfig, Line
from repro.mem.coherence import CoherenceController, CoherenceError, State
from repro.mem.dram import DRAM, DRAMConfig
from repro.mem.phys_memory import PhysicalMemory

__all__ = [
    "BLOCK_SIZE",
    "PAGE_SIZE",
    "LARGE_PAGE_SIZE",
    "Cache",
    "CacheConfig",
    "CoherenceController",
    "CoherenceError",
    "DRAM",
    "DRAMConfig",
    "Line",
    "PhysicalMemory",
    "State",
    "align_down",
    "align_up",
    "block_of",
    "is_page_aligned",
    "page_offset",
    "pages_spanned",
    "ppn_of",
    "vpn_of",
]
