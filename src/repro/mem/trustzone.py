"""An ARM-TrustZone-style address space controller (paper §2.3, Table 1).

TrustZone divides the system into a Secure and a Normal world; a
TrustZone Address Space Controller (TZASC) marks physical regions secure
and refuses Normal-world masters access to them. The paper's point
(Table 1): this protects OS/secure assets from an untrusted accelerator,
but it is *coarse-grained* — a misbehaving Normal-world accelerator can
still read and write every other Normal-world process's memory.

We implement the TZASC as a :class:`~repro.mem.port.MemoryPort` filter so
the Table 1 comparison can be verified by probe, exactly like the other
rows: plant a secret in a victim process (normal world) and in a secure
region, then watch which of the two a trojan can reach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from repro.mem.port import MemoryPort
from repro.sim.stats import StatDomain

__all__ = ["TrustZoneController", "World"]


@dataclass(frozen=True)
class World:
    """The requesting master's world."""

    secure: bool

    @classmethod
    def SECURE(cls) -> "World":
        return cls(True)

    @classmethod
    def NORMAL(cls) -> "World":
        return cls(False)


class TrustZoneController(MemoryPort):
    """TZASC-style region filter in front of the memory controller."""

    name = "tzasc"

    def __init__(
        self,
        downstream: MemoryPort,
        requester_secure: bool = False,
        stats: Optional[StatDomain] = None,
    ) -> None:
        self.downstream = downstream
        self.requester_secure = requester_secure
        self._secure_regions: List[Tuple[int, int]] = []  # (base, end)
        stats = stats or StatDomain("tzasc")
        self._checked = stats.counter("checked")
        self._blocked = stats.counter("blocked")

    # -- configuration (trusted software only) -------------------------------

    def mark_secure(self, base: int, size: int) -> None:
        """Declare ``[base, base+size)`` Secure-world-only."""
        if size <= 0:
            raise ValueError("secure region must have positive size")
        self._secure_regions.append((base, base + size))

    def clear_secure(self) -> None:
        self._secure_regions.clear()

    def is_secure_address(self, addr: int, size: int = 1) -> bool:
        end = addr + max(1, size)
        return any(addr < r_end and end > r_base for r_base, r_end in self._secure_regions)

    # -- the port protocol ---------------------------------------------------

    def access(
        self, addr: int, size: int, write: bool, data: Optional[bytes] = None
    ) -> Generator:
        self._checked.inc()
        if not self.requester_secure and self.is_secure_address(addr, size):
            # Normal-world master touching a secure region: refused. This
            # is the *only* check TrustZone provides — anything outside
            # the secure regions passes, regardless of owning process.
            self._blocked.inc()
            return None
            yield  # pragma: no cover
        return (yield from self.downstream.access(addr, size, write, data))
