"""Processes and their address spaces."""

from __future__ import annotations

import enum
from typing import Dict, Optional, Set

from repro.core.permissions import Perm
from repro.mem.address import PAGE_SHIFT, PAGE_SIZE
from repro.vm.page_table import PageTable

__all__ = ["Process", "ProcessState", "VMArea"]


class ProcessState(enum.Enum):
    RUNNING = "running"
    KILLED = "killed"
    EXITED = "exited"


class VMArea:
    """One mmap'd virtual region (the OS's bookkeeping, not the hardware's)."""

    __slots__ = ("start_vpn", "num_pages", "perms", "large", "cow")

    def __init__(
        self,
        start_vpn: int,
        num_pages: int,
        perms: Perm,
        large: bool = False,
        cow: bool = False,
    ) -> None:
        self.start_vpn = start_vpn
        self.num_pages = num_pages
        self.perms = perms
        self.large = large
        self.cow = cow

    @property
    def start_vaddr(self) -> int:
        return self.start_vpn << PAGE_SHIFT

    @property
    def length(self) -> int:
        return self.num_pages * PAGE_SIZE

    def contains_vpn(self, vpn: int) -> bool:
        return self.start_vpn <= vpn < self.start_vpn + self.num_pages


class Process:
    """A protection domain: an ASID, a page table, and VM-area bookkeeping."""

    # Virtual layout: user mappings are carved from a simple upward cursor.
    _MMAP_BASE_VPN = 0x10000  # 256 MB into the virtual address space

    def __init__(self, pid: int, name: str, page_table: PageTable) -> None:
        self.pid = pid
        self.name = name
        self.page_table = page_table
        self.state = ProcessState.RUNNING
        self.areas: Dict[int, VMArea] = {}  # keyed by start_vpn
        self._mmap_cursor = self._MMAP_BASE_VPN
        # Accelerators this process currently runs kernels on.
        self.accelerators: Set[str] = set()
        self.exit_reason: Optional[str] = None

    @property
    def asid(self) -> int:
        return self.page_table.asid

    @property
    def alive(self) -> bool:
        return self.state is ProcessState.RUNNING

    # -- virtual address allocation --------------------------------------------

    def reserve_vpns(self, num_pages: int, alignment_pages: int = 1) -> int:
        """Pick an unused, aligned virtual page range; returns start VPN."""
        start = self._mmap_cursor
        if alignment_pages > 1:
            start = (start + alignment_pages - 1) // alignment_pages * alignment_pages
        self._mmap_cursor = start + num_pages
        return start

    def area_for_vpn(self, vpn: int) -> Optional[VMArea]:
        for area in self.areas.values():
            if area.contains_vpn(vpn):
                return area
        return None

    def __repr__(self) -> str:  # pragma: no cover
        return f"Process(pid={self.pid}, {self.name!r}, asid={self.asid}, {self.state.value})"
