"""Virtualization: Border Control under a trusted VMM (paper §3.4.2).

    "Border Control can also operate with a trusted Virtual Machine
    Monitor (VMM) below guest OSes. In this case, the VMM allocates the
    Protection Table in (host physical) memory that is inaccessible to
    guest OSes. The present implementation works unchanged because table
    indexing uses 'bare-metal' physical addresses."

The model here keeps that property literally: every guest runs a full
:class:`~repro.osmodel.kernel.Kernel`, but its frame allocator is
confined to a contiguous *partition* of host physical memory, while
Protection Tables are allocated from the VMM's private frames. Border
Control itself is untouched — its base/bounds registers and table
indexing use host physical addresses throughout.

Guest isolation consequences this module's tests verify:

* guest page tables can only ever map frames inside the guest partition
  (its allocator physically cannot produce anything else);
* Protection Tables live outside every partition, so no guest mapping —
  and therefore no accelerator translation — can ever cover them: a
  rogue accelerator cannot corrupt its own sandbox's metadata;
* a trojan accelerator attached through one guest cannot read another
  guest's memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.bcc import BCCConfig
from repro.errors import ConfigurationError, MemoryError_
from repro.mem.address import PAGE_SHIFT, PAGE_SIZE
from repro.mem.phys_memory import PhysicalMemory
from repro.osmodel.kernel import Kernel, ViolationPolicy
from repro.sim.engine import Engine
from repro.sim.stats import StatDomain
from repro.vm.frame_allocator import FrameAllocator

__all__ = ["VMM", "GuestPartition"]


@dataclass
class GuestPartition:
    """One guest's slice of host physical memory."""

    name: str
    base_frame: int
    frame_count: int
    kernel: Kernel

    @property
    def base_paddr(self) -> int:
        return self.base_frame << PAGE_SHIFT

    @property
    def end_paddr(self) -> int:
        return (self.base_frame + self.frame_count) << PAGE_SHIFT

    def contains_frame(self, ppn: int) -> bool:
        return self.base_frame <= ppn < self.base_frame + self.frame_count


class VMM:
    """A minimal trusted hypervisor partitioning host physical memory."""

    def __init__(
        self,
        phys: PhysicalMemory,
        engine: Optional[Engine] = None,
        bcc_config: Optional[BCCConfig] = BCCConfig(),
        violation_policy: ViolationPolicy = ViolationPolicy.KILL_PROCESS,
    ) -> None:
        self.phys = phys
        self.engine = engine or Engine()
        self.bcc_config = bcc_config
        self.violation_policy = violation_policy
        # The VMM's own allocator owns all of host memory; guest partitions
        # are carved out of it and handed confined allocators.
        self.host_allocator = FrameAllocator(phys)
        self.guests: Dict[str, GuestPartition] = {}
        self.stats = StatDomain("vmm")

    # -- guest lifecycle -----------------------------------------------------

    def create_guest(self, name: str, mem_bytes: int) -> GuestPartition:
        """Carve a partition and boot a guest kernel inside it."""
        if name in self.guests:
            raise ConfigurationError(f"guest {name!r} already exists")
        if mem_bytes <= 0 or mem_bytes % PAGE_SIZE:
            raise MemoryError_("guest memory must be a positive page multiple")
        frames = mem_bytes // PAGE_SIZE
        base = self.host_allocator.alloc_contiguous(frames, zero=True)
        guest_allocator = FrameAllocator(
            self.phys, reserve_low_frames=0, base_frame=base, frame_count=frames
        )
        kernel = Kernel(
            self.phys,
            engine=self.engine,
            bcc_config=self.bcc_config,
            violation_policy=self.violation_policy,
            stats=self.stats.child(name),
            allocator=guest_allocator,
            # Protection Tables come from VMM-private memory (§3.4.2).
            sandbox_allocator=self.host_allocator,
        )
        partition = GuestPartition(name, base, frames, kernel)
        self.guests[name] = partition
        return partition

    def destroy_guest(self, name: str) -> None:
        partition = self.guests.pop(name, None)
        if partition is None:
            raise ConfigurationError(f"unknown guest {name!r}")
        for proc in list(partition.kernel.processes.values()):
            partition.kernel.exit_process(proc)
        self.host_allocator.free_contiguous(
            partition.base_frame, partition.frame_count
        )

    # -- isolation audits (used by tests and examples) ---------------------------

    def audit_guest_mappings(self, name: str) -> List[int]:
        """PPNs a guest maps outside its partition (must be empty)."""
        partition = self.guests[name]
        offenders: List[int] = []
        for proc in partition.kernel.processes.values():
            for translation in proc.page_table.entries():
                for i in range(translation.page_size // PAGE_SIZE):
                    ppn = translation.ppn + i
                    if not partition.contains_frame(ppn):
                        offenders.append(ppn)
        return offenders

    def protection_table_frames(self) -> List[int]:
        """Host frames holding any guest's Protection Tables."""
        frames: List[int] = []
        for partition in self.guests.values():
            for _accel, sandbox in partition.kernel.sandboxes.active_sandboxes():
                table = sandbox.table
                if table is None:
                    continue
                base = table.base_paddr >> PAGE_SHIFT
                frames.extend(range(base, base + table.size_bytes // PAGE_SIZE))
        return frames

    def audit_tables_outside_guests(self) -> bool:
        """True iff every Protection Table frame is VMM-private."""
        table_frames = self.protection_table_frames()
        for frame in table_frames:
            for partition in self.guests.values():
                if partition.contains_frame(frame):
                    return False
        return True
