"""The trusted OS kernel.

The kernel owns physical memory, creates processes, maintains their page
tables, and — crucially for Border Control — drives every memory-mapping
update through the shootdown-then-downgrade protocol of paper §3.2.4:

1. invalidate stale translations everywhere (CPU TLBs, the ATS's trusted
   L2 TLB, accelerator TLBs);
2. if a downgraded page may be dirty in an accelerator cache (its
   Protection Table entry has the write bit), flush the accelerator's
   caches — the writebacks cross the border and are checked;
3. only then revoke the permissions in the Protection Table and BCC.

Kernel operations that consume simulated time (cache flushes) are written
as simulation generators with synchronous facades, so the same code path
serves both functional tests and the timed Fig. 7 downgrade experiment.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Generator, Iterable, List, Optional, Tuple

from repro.core.bcc import BCCConfig
from repro.core.border_control import BorderControl, ViolationRecord
from repro.core.permissions import Perm
from repro.core.sandbox import SandboxManager
from repro.errors import ConfigurationError, MemoryError_, PageFault
from repro.mem.address import PAGE_SHIFT, PAGE_SIZE, PAGES_PER_LARGE_PAGE
from repro.mem.phys_memory import PhysicalMemory
from repro.osmodel.process import Process, ProcessState, VMArea
from repro.sim.engine import Engine
from repro.sim.stats import StatDomain
from repro.vm.frame_allocator import FrameAllocator
from repro.vm.page_table import PageTable

__all__ = ["Kernel", "ViolationPolicy"]


class ViolationPolicy(enum.Enum):
    """What the OS does when Border Control reports a violation (§3.2.3)."""

    LOG_ONLY = "log"
    KILL_PROCESS = "kill-process"
    DISABLE_ACCELERATOR = "disable-accelerator"
    # Resilience middle ground between LOG_ONLY and the permanent
    # sanctions: disable the faulting accelerator, downgrade its
    # sandboxes (revoking every permission, so in-flight and replayed
    # requests all get blocked), and re-enable it after a backoff window
    # that doubles per repeat offense.
    QUARANTINE = "quarantine"


class Kernel:
    """The trusted OS: processes, memory, accelerators, Border Control."""

    def __init__(
        self,
        phys: PhysicalMemory,
        engine: Optional[Engine] = None,
        bcc_config: Optional[BCCConfig] = BCCConfig(),
        violation_policy: ViolationPolicy = ViolationPolicy.KILL_PROCESS,
        strict_sandbox: bool = False,
        selective_downgrade: bool = False,
        stats: Optional[StatDomain] = None,
        allocator: Optional[FrameAllocator] = None,
        sandbox_allocator: Optional[FrameAllocator] = None,
    ) -> None:
        self.engine = engine or Engine()
        self.phys = phys
        # A VMM passes a partition-confined allocator for guest memory and
        # a VMM-private one for Protection Tables (paper §3.4.2).
        self.allocator = allocator or FrameAllocator(phys)
        self.stats = stats or StatDomain("kernel")
        self.sandboxes = SandboxManager(
            phys,
            sandbox_allocator or self.allocator,
            bcc_config=bcc_config,
            stats=self.stats.child("sandboxes"),
            strict=strict_sandbox,
        )
        self.sandboxes.on_violation(self._on_violation)
        self.violation_policy = violation_policy
        self.selective_downgrade = selective_downgrade
        self.processes: Dict[int, Process] = {}
        self.violation_log: List[ViolationRecord] = []
        self._next_pid = 1
        self._next_asid = 1
        self._accels: Dict[str, object] = {}  # accel_id -> accelerator object
        self._shootdown_listeners: List[object] = []
        self._frame_refs: Dict[int, int] = {}  # COW sharing refcounts
        self._swap: Dict[Tuple[int, int], bytes] = {}  # (asid, vpn) -> page bytes
        # Quiesce time charged to accelerators on every downgrade; the
        # system builder sets this from TimingParams.downgrade_drain_cycles.
        self.downgrade_drain_ticks: int = 0
        # Quarantine backoff: how long a faulting accelerator stays
        # disabled (doubles per repeat offense). 0 keeps it disabled until
        # someone re-enables it by hand — the conservative default.
        self.quarantine_backoff_ticks: int = 0
        # Backoff exponent ceiling: the window is
        # backoff * (1 << min(strikes - 1, cap)) so repeat offenders pay
        # growing but bounded penalties (SystemConfig.quarantine_backoff_cap).
        self.quarantine_backoff_cap: int = 6
        # Violation-storm circuit breaker: at this many strikes the device
        # is quarantined permanently and its processes are killed — the
        # point where "survivable sanction" becomes "stop serving this
        # device". 0 disables the breaker (pure timed quarantine).
        self.violation_storm_threshold: int = 0
        self._quarantine_until: Dict[str, int] = {}
        self._quarantine_strikes: Dict[str, int] = {}
        # Lifecycle observers (repro.verify): called synchronously with
        # (event, accel_id, info) on quarantine / storm-kill / readmit /
        # reset transitions. Empty in production — one falsy test per event.
        self._lifecycle_hooks: List[Callable[[str, str, Dict[str, object]], None]] = []
        self._downgrade_count = self.stats.counter("downgrades")
        self._quarantine_count = self.stats.counter("quarantines")
        self._permanent_quarantines = self.stats.counter("permanent_quarantines")
        self._storm_kills = self.stats.counter("storm_kills")
        self._readmissions = self.stats.counter("readmissions")
        self._reset_count = self.stats.counter("resets")
        self._shootdown_count = self.stats.counter("shootdowns")
        self._fault_count = self.stats.counter("page_faults")
        self._cow_copies = self.stats.counter("cow_copies")
        self._swapins = self.stats.counter("swap_ins")
        self._swapouts = self.stats.counter("swap_outs")

    # ------------------------------------------------------------------
    # process lifecycle
    # ------------------------------------------------------------------

    def create_process(self, name: str) -> Process:
        page_table = PageTable(self.phys, self.allocator, asid=self._next_asid)
        self._next_asid += 1
        proc = Process(self._next_pid, name, page_table)
        self._next_pid += 1
        self.processes[proc.pid] = proc
        return proc

    def exit_process(self, proc: Process) -> None:
        """Tear down a process: detach accelerators, free memory."""
        self._run(self.exit_process_g(proc))

    def exit_process_g(self, proc: Process) -> Generator:
        for accel_id in sorted(proc.accelerators):
            yield from self.detach_accelerator_g(proc, self._accels[accel_id])
        for area in list(proc.areas.values()):
            yield from self._unmap_area_g(proc, area, downgrade=False)
        for listener in self._shootdown_listeners:
            listener.shootdown(proc.asid, None)
        proc.page_table.destroy()
        if proc.state is ProcessState.RUNNING:
            proc.state = ProcessState.EXITED
        self.processes.pop(proc.pid, None)

    def kill_process(self, proc: Process, reason: str) -> None:
        proc.state = ProcessState.KILLED
        proc.exit_reason = reason

    # ------------------------------------------------------------------
    # memory mapping
    # ------------------------------------------------------------------

    def mmap(
        self,
        proc: Process,
        num_pages: int,
        perms: Perm = Perm.RW,
        large: bool = False,
    ) -> int:
        """Map ``num_pages`` fresh pages; returns the starting vaddr.

        Frames are allocated eagerly (the Rodinia-style workloads touch
        their data on the CPU before kernel launch); lazy population is
        modeled separately via :meth:`mmap_lazy` + page faults.
        """
        if num_pages <= 0:
            raise MemoryError_("mmap of zero pages")
        if large and num_pages % PAGES_PER_LARGE_PAGE:
            raise MemoryError_("large mmap must be a multiple of 512 pages")
        align = PAGES_PER_LARGE_PAGE if large else 1
        start_vpn = proc.reserve_vpns(num_pages, alignment_pages=align)
        if large:
            for chunk in range(num_pages // PAGES_PER_LARGE_PAGE):
                base_ppn = self.allocator.alloc_contiguous(
                    PAGES_PER_LARGE_PAGE, align=PAGES_PER_LARGE_PAGE
                )
                vpn = start_vpn + chunk * PAGES_PER_LARGE_PAGE
                proc.page_table.map(vpn, base_ppn, perms, large=True)
                for p in range(PAGES_PER_LARGE_PAGE):
                    self._frame_refs[base_ppn + p] = 1
        else:
            for i in range(num_pages):
                ppn = self.allocator.alloc()
                proc.page_table.map(start_vpn + i, ppn, perms)
                self._frame_refs[ppn] = 1
        proc.areas[start_vpn] = VMArea(start_vpn, num_pages, perms, large=large)
        return start_vpn << PAGE_SHIFT

    def mmap_lazy(self, proc: Process, num_pages: int, perms: Perm = Perm.RW) -> int:
        """Reserve a region without frames; touches fault them in."""
        if num_pages <= 0:
            raise MemoryError_("mmap of zero pages")
        start_vpn = proc.reserve_vpns(num_pages)
        proc.areas[start_vpn] = VMArea(start_vpn, num_pages, perms)
        return start_vpn << PAGE_SHIFT

    def munmap(self, proc: Process, vaddr: int) -> None:
        self._run(self.munmap_g(proc, vaddr))

    def munmap_g(self, proc: Process, vaddr: int) -> Generator:
        area = proc.areas.pop(vaddr >> PAGE_SHIFT, None)
        if area is None:
            raise MemoryError_(f"munmap of unknown area at {vaddr:#x}")
        yield from self._unmap_area_g(proc, area, downgrade=True)

    def mprotect(self, proc: Process, vaddr: int, num_pages: int, perms: Perm) -> None:
        self._run(self.mprotect_g(proc, vaddr, num_pages, perms))

    def mprotect_g(
        self, proc: Process, vaddr: int, num_pages: int, perms: Perm
    ) -> Generator:
        """Change permissions; orchestrates downgrades when needed."""
        start_vpn = vaddr >> PAGE_SHIFT
        downgraded: List[int] = []  # PPNs losing permission
        for vpn in range(start_vpn, start_vpn + num_pages):
            translation = proc.page_table.translate_vpn(vpn)
            if translation is None:
                area = proc.area_for_vpn(vpn)
                if area is None:
                    raise MemoryError_(f"mprotect of unmapped vpn {vpn:#x}")
                continue  # lazy page not yet faulted in: bookkeeping only
            old = proc.page_table.protect(vpn, perms)
            if (old.perms.writable and not perms.writable) or (
                old.perms.readable and not perms.readable
            ):
                offset = vpn - translation.vpn
                downgraded.append(translation.ppn + offset)
        area = proc.area_for_vpn(start_vpn)
        if area is not None and area.start_vpn == start_vpn and area.num_pages == num_pages:
            area.perms = perms
        if downgraded:
            yield from self._downgrade_g(proc, downgraded)

    def _unmap_area_g(self, proc: Process, area: VMArea, downgrade: bool) -> Generator:
        downgraded: List[int] = []
        step = PAGES_PER_LARGE_PAGE if area.large else 1
        for vpn in range(area.start_vpn, area.start_vpn + area.num_pages, step):
            old = proc.page_table.unmap(vpn)
            if old is None:
                continue
            count = PAGES_PER_LARGE_PAGE if old.is_large else 1
            for p in range(count):
                ppn = old.ppn + p
                downgraded.append(ppn)
                self._release_frame(ppn)
        if downgrade and downgraded:
            yield from self._downgrade_g(proc, downgraded)

    def _release_frame(self, ppn: int) -> None:
        refs = self._frame_refs.get(ppn, 0)
        if refs <= 1:
            self._frame_refs.pop(ppn, None)
            self.allocator.free(ppn)
        else:
            self._frame_refs[ppn] = refs - 1

    # ------------------------------------------------------------------
    # downgrades and shootdowns (paper §3.2.4)
    # ------------------------------------------------------------------

    def _downgrade_g(self, proc: Process, ppns: Iterable[int]) -> Generator:
        """Shootdown + accelerator flush + Protection Table revocation."""
        ppns = list(ppns)
        self._downgrade_count.inc()
        self._shootdown_count.inc()
        # 1. Quiesce accelerators running this address space (drain their
        #    outstanding requests and hold them — also done for trusted
        #    accelerators), then invalidate stale translations everywhere.
        held = yield from self._quiesce(proc)
        try:
            for listener in self._shootdown_listeners:
                listener.shootdown(proc.asid, None)
            # 2+3. For each accelerator running this process: flush if any
            #      affected page might be dirty, then revoke.
            for sandbox in self.sandboxes.sandboxes_running(proc.asid):
                table = sandbox.table
                if table is None:
                    continue
                might_be_dirty = any(
                    table.covers(ppn) and table.get(ppn).writable for ppn in ppns
                )
                accel = self._accels.get(sandbox.accel_id)
                if might_be_dirty and accel is not None:
                    if self.selective_downgrade and hasattr(accel, "flush_pages"):
                        yield from accel.flush_pages(ppns)
                    else:
                        yield from accel.flush_caches()
                if self.selective_downgrade:
                    for ppn in ppns:
                        if table.covers(ppn):
                            sandbox.downgrade_page(ppn)
                else:
                    sandbox.downgrade_all()
        finally:
            for accel in held:
                accel.resume()

    def downgrade_process_g(self, proc: Process) -> Generator:
        """Full-context downgrade (context switch / swap of whole process).

        This is the Fig. 7 event: flush accelerator caches, zero the
        Protection Table, invalidate BCC and accelerator TLBs.
        """
        self._downgrade_count.inc()
        held = yield from self._quiesce(proc)
        try:
            for listener in self._shootdown_listeners:
                listener.shootdown(proc.asid, None)
            for sandbox in self.sandboxes.sandboxes_running(proc.asid):
                accel = self._accels.get(sandbox.accel_id)
                if accel is not None:
                    yield from accel.flush_caches()
                sandbox.downgrade_all()
        finally:
            for accel in held:
                accel.resume()

    def _quiesce(self, proc: Process) -> Generator:
        """Quiesce the process's accelerators: drain outstanding requests
        and hold them stalled until the caller resumes them after
        revocation — the dominant cost of a downgrade for trusted and
        untrusted accelerators alike (§5.2.4). Returns the held accels."""
        held = []
        for accel_id in sorted(proc.accelerators):
            accel = self._accels.get(accel_id)
            if accel is not None:
                yield from accel.quiesce_g(self.downgrade_drain_ticks)
                held.append(accel)
        return held

    def register_shootdown_listener(self, listener: object) -> None:
        """Anything caching translations: MMUs, the ATS, accelerators."""
        self._shootdown_listeners.append(listener)

    def downgrade_process(self, proc: Process) -> None:
        """Synchronous facade for :meth:`downgrade_process_g` (the Fig. 7
        context-switch event), for callers outside the simulation loop."""
        self._run(self.downgrade_process_g(proc))

    # ------------------------------------------------------------------
    # lifecycle observation (repro.verify)
    # ------------------------------------------------------------------

    def on_lifecycle(self, handler: Callable[[str, str, Dict[str, object]], None]) -> None:
        """Observe accelerator lifecycle transitions without perturbing them.

        Events: ``quarantine`` (info: strikes, permanent), ``storm-kill``
        (info: pid), ``readmit``, ``reset`` (info: epoch). Handlers run
        synchronously after the kernel state change and charge no
        simulated time.
        """
        self._lifecycle_hooks.append(handler)

    def _emit_lifecycle(self, event: str, accel_id: str, **info: object) -> None:
        if self._lifecycle_hooks:
            for hook in self._lifecycle_hooks:
                hook(event, accel_id, info)

    # ------------------------------------------------------------------
    # page faults, copy-on-write, swap
    # ------------------------------------------------------------------

    def fork_cow(self, parent: Process, name: str) -> Process:
        """Fork with copy-on-write: share frames read-only (both sides).

        Write-protecting the parent's writable pages is itself a
        permission downgrade and goes through the full §3.2.4 protocol.
        """
        child = self.create_process(name)
        downgraded: List[int] = []
        for translation in list(parent.page_table.entries()):
            if translation.is_large:
                raise ConfigurationError("COW of large pages is not modeled")
            share_perms = (
                Perm.R if translation.perms.writable else translation.perms
            )
            if translation.perms.writable:
                parent.page_table.protect(translation.vpn, Perm.R)
                downgraded.append(translation.ppn)
            child.page_table.map(translation.vpn, translation.ppn, share_perms)
            self._frame_refs[translation.ppn] = self._frame_refs.get(translation.ppn, 1) + 1
        for start_vpn, area in parent.areas.items():
            child.areas[start_vpn] = VMArea(
                area.start_vpn, area.num_pages, area.perms, cow=True
            )
            area.cow = True
        child._mmap_cursor = parent._mmap_cursor
        if downgraded:
            self._run(self._downgrade_g(parent, downgraded))
        return child

    def handle_page_fault(self, proc: Process, vaddr: int, write: bool) -> int:
        """Service a fault; returns the (new) PPN. Raises if not serviceable."""
        self._fault_count.inc()
        vpn = vaddr >> PAGE_SHIFT
        area = proc.area_for_vpn(vpn)
        if area is None:
            raise PageFault(vaddr, write)
        translation = proc.page_table.translate_vpn(vpn)
        if translation is None:
            swapped = self._swap.pop((proc.asid, vpn), None)
            ppn = self.allocator.alloc()
            self._frame_refs[ppn] = 1
            if swapped is not None:
                self._swapins.inc()
                self.phys.write(ppn << PAGE_SHIFT, swapped)
            proc.page_table.map(vpn, ppn, area.perms)
            return ppn
        if write and not translation.perms.writable and area.cow:
            return self._resolve_cow(proc, vpn, translation.ppn, area)
        raise PageFault(vaddr, write)

    def _resolve_cow(self, proc: Process, vpn: int, old_ppn: int, area: VMArea) -> int:
        """Copy-on-write resolution: private copy, upgrade to writable.

        Per the paper, this never flushes accelerator caches: the shared
        page was read-only, so no dirty accelerator data can exist.
        """
        self._cow_copies.inc()
        refs = self._frame_refs.get(old_ppn, 1)
        if refs == 1:
            # Last sharer: upgrade in place.
            proc.page_table.protect(vpn, Perm.RW)
            return old_ppn
        new_ppn = self.allocator.alloc()
        self._frame_refs[new_ppn] = 1
        self._frame_refs[old_ppn] = refs - 1
        data = self.phys.read(old_ppn << PAGE_SHIFT, PAGE_SIZE)
        self.phys.write(new_ppn << PAGE_SHIFT, data)
        # unmap+map is an upgrade-with-move; the old read-only translation
        # must still be shot down so nothing keeps using old_ppn.
        proc.page_table.unmap(vpn)
        proc.page_table.map(vpn, new_ppn, Perm.RW)
        for listener in self._shootdown_listeners:
            listener.shootdown(proc.asid, vpn)
        return new_ppn

    def swap_out(self, proc: Process, vaddr: int) -> None:
        self._run(self.swap_out_g(proc, vaddr))

    def swap_out_g(self, proc: Process, vaddr: int) -> Generator:
        """Evict one page to the swap store (a downgrade to no-access)."""
        vpn = vaddr >> PAGE_SHIFT
        translation = proc.page_table.translate_vpn(vpn)
        if translation is None or translation.is_large:
            raise MemoryError_(f"cannot swap out vpn {vpn:#x}")
        self._swapouts.inc()
        # Downgrade *before* reading the frame so dirty accelerator data is
        # written back (checked) and captured by the swap image.
        proc.page_table.unmap(vpn)
        yield from self._downgrade_g(proc, [translation.ppn])
        data = self.phys.read(translation.ppn << PAGE_SHIFT, PAGE_SIZE)
        self._swap[(proc.asid, vpn)] = data
        self._release_frame(translation.ppn)

    # ------------------------------------------------------------------
    # accelerators
    # ------------------------------------------------------------------

    def attach_accelerator(
        self, proc: Process, accel, sandboxed: bool = True
    ) -> Optional[BorderControl]:
        """Start a process on an accelerator (Fig. 3a).

        ``sandboxed=False`` models the non-Border-Control configurations
        (unsafe direct access, full IOMMU, CAPI-like) where no Protection
        Table exists for the accelerator.
        """
        return self._run(self.attach_accelerator_g(proc, accel, sandboxed))

    def attach_accelerator_g(
        self, proc: Process, accel, sandboxed: bool = True
    ) -> Generator:
        if not proc.alive:
            raise ConfigurationError(f"process {proc.pid} is not running")
        accel_id = accel.accel_id
        self._accels[accel_id] = accel
        sandbox: Optional[BorderControl] = None
        if sandboxed:
            sandbox = self.sandboxes.attach(accel_id, proc.asid)
            if hasattr(accel, "set_epoch"):
                # Stamp the device with the attach epoch (recovery): the
                # border admits only traffic carrying the current epoch.
                accel.set_epoch(sandbox.epoch)
        proc.accelerators.add(accel_id)
        accel.attach_process(proc, sandbox)
        if accel not in self._shootdown_listeners:
            self.register_shootdown_listener(accel)
        return sandbox
        yield  # pragma: no cover - generator facade for symmetry

    def detach_accelerator(self, proc: Process, accel) -> None:
        self._run(self.detach_accelerator_g(proc, accel))

    def detach_accelerator_g(self, proc: Process, accel) -> Generator:
        """Process completion on an accelerator (Fig. 3e): flush, zero, free."""
        accel_id = accel.accel_id
        if accel_id not in proc.accelerators:
            raise ConfigurationError(
                f"process {proc.pid} is not attached to {accel_id!r}"
            )
        yield from accel.flush_caches()
        accel.shootdown(proc.asid, None)
        accel.detach_process(proc)
        if any(
            sb.accel_id == accel_id
            for sb in self.sandboxes.sandboxes_running(proc.asid)
        ):
            self.sandboxes.detach(accel_id, proc.asid)
        proc.accelerators.discard(accel_id)

    # ------------------------------------------------------------------
    # violations (paper §3.2.3: "terminating the process or disabling
    # the accelerator")
    # ------------------------------------------------------------------

    def _on_violation(self, record: ViolationRecord) -> None:
        self.violation_log.append(record)
        if self.violation_policy is ViolationPolicy.LOG_ONLY:
            return
        if self.violation_policy is ViolationPolicy.DISABLE_ACCELERATOR:
            accel = self._accels.get(record.accel_id)
            if accel is not None and hasattr(accel, "disable"):
                accel.disable()
            return
        if self.violation_policy is ViolationPolicy.QUARANTINE:
            self.quarantine_accelerator(record.accel_id, record.describe())
            return
        # KILL_PROCESS: every process running on the offending accelerator
        # is terminated (the OS cannot attribute the rogue request more
        # precisely than the accelerator it came from).
        for proc in list(self.processes.values()):
            if record.accel_id in proc.accelerators and proc.alive:
                self.kill_process(proc, record.describe())

    # ------------------------------------------------------------------
    # quarantine: survivable sanctions for faulting accelerators
    # ------------------------------------------------------------------

    def quarantine_accelerator(self, accel_id: str, reason: str = "") -> bool:
        """Disable a faulting accelerator and revoke its sandbox.

        Downgrading the sandbox (rather than tearing it down) means every
        request the wedged or misbehaving device still has in flight — or
        replays after a hardware reset — hits a zeroed Protection Table
        and is blocked at the border; the accelerator rejoins the system
        after the backoff window with an empty sandbox it must repopulate
        through legitimate ATS translations.

        Returns ``False`` when the accelerator is unknown or already
        quarantined (a violation storm must not stack sanctions).
        """
        accel = self._accels.get(accel_id)
        if accel is None or self.is_quarantined(accel_id):
            return False
        self._quarantine_count.inc()
        strikes = self._quarantine_strikes.get(accel_id, 0) + 1
        self._quarantine_strikes[accel_id] = strikes
        if hasattr(accel, "disable"):
            accel.disable()
        # Drain/downgrade: no flush request — a wedged device cannot be
        # trusted to answer one, and §3.2.4 says ignoring it is safe
        # (later writebacks are checked and blocked).
        for _aid, sandbox in self.sandboxes.active_sandboxes():
            if _aid == accel_id:
                sandbox.downgrade_all()
        # Circuit breaker: a violation storm has exhausted the kernel's
        # patience — stop re-admitting the device and kill its processes
        # (they can never make progress on a permanently banned device).
        threshold = self.violation_storm_threshold
        if threshold > 0 and strikes >= threshold:
            self._permanent_quarantines.inc()
            self._quarantine_until[accel_id] = -1
            self._emit_lifecycle(
                "quarantine", accel_id, strikes=strikes, permanent=True
            )
            for proc in list(self.processes.values()):
                if accel_id in proc.accelerators and proc.alive:
                    self._storm_kills.inc()
                    self.kill_process(
                        proc,
                        f"{accel_id}: violation storm "
                        f"({strikes} strikes); accelerator permanently quarantined"
                        + (f" — {reason}" if reason else ""),
                    )
                    self._emit_lifecycle("storm-kill", accel_id, pid=proc.pid)
            return True
        exponent = min(strikes - 1, self.quarantine_backoff_cap)
        window = self.quarantine_backoff_ticks * (1 << exponent)
        if window > 0:
            until = self.engine.now + window
            self._quarantine_until[accel_id] = until
            self.engine.schedule(window, lambda: self._release_quarantine(accel_id))
        else:
            # No backoff configured: quarantined until manually released.
            self._quarantine_until[accel_id] = -1
        self._emit_lifecycle("quarantine", accel_id, strikes=strikes, permanent=False)
        return True

    def is_quarantined(self, accel_id: str) -> bool:
        until = self._quarantine_until.get(accel_id)
        if until is None:
            return False
        return until < 0 or self.engine.now < until

    def _release_quarantine(self, accel_id: str) -> None:
        until = self._quarantine_until.get(accel_id)
        if until is None or until < 0 or self.engine.now < until:
            return  # superseded by a newer, longer quarantine
        self.release_quarantine(accel_id)

    def release_quarantine(self, accel_id: str) -> None:
        """End a quarantine: the accelerator may accept work again.

        Unknown accelerators are a no-op; known ones are re-admitted via
        :meth:`~repro.accel.base.AcceleratorBase.enable` so subclasses
        and fault-injection wrappers observe re-admission.
        """
        self._quarantine_until.pop(accel_id, None)
        accel = self._accels.get(accel_id)
        if accel is None:
            return
        self._readmissions.inc()
        if hasattr(accel, "enable"):
            accel.enable()
        else:
            accel.enabled = True
        self._emit_lifecycle("readmit", accel_id)

    def reset_accelerator(self, accel_id: str) -> bool:
        """Epoch-fenced accelerator reset (recovery subsystem).

        The recovery sequence is ordered so a pre-reset device replaying
        in-flight traffic can never slip through:

        1. advance the sandbox's attach epoch *first* — from this instant
           any request stamped with the old epoch is rejected at the
           border and the ATS, before the device is even touched;
        2. downgrade the sandbox (zeroed Protection Table / invalid BCC),
           so even current-epoch traffic re-earns every permission
           through legitimate ATS translations;
        3. reset the device into the new epoch and lift the quarantine.

        Returns ``False`` when the accelerator is unknown. Strike history
        is deliberately kept — a device that violates again after a reset
        escalates, it does not start over.
        """
        accel = self._accels.get(accel_id)
        if accel is None:
            return False
        self._reset_count.inc()
        sandbox = self.sandboxes.sandbox_for(accel_id)
        epoch = 0
        if sandbox is not None:
            epoch = sandbox.advance_epoch()
            if sandbox.active:
                sandbox.downgrade_all()
        self._quarantine_until.pop(accel_id, None)
        if hasattr(accel, "reset"):
            accel.reset(epoch)
        else:
            if hasattr(accel, "set_epoch"):
                accel.set_epoch(epoch)
            if hasattr(accel, "enable"):
                accel.enable()
            else:
                accel.enabled = True
        self._emit_lifecycle("reset", accel_id, epoch=epoch)
        return True

    # ------------------------------------------------------------------
    # warm reuse
    # ------------------------------------------------------------------

    def reset_for_reuse(self, shootdown_listeners: Optional[List[object]] = None) -> None:
        """Return the kernel to its post-construction state, in place.

        Frees are wholesale: the frame allocator and physical memory are
        reset directly instead of walking every process teardown path.
        Policy knobs (violation policy, downgrade/quarantine parameters)
        are configuration and are kept. ``shootdown_listeners`` restores
        the listener baseline captured by the owning System right after
        construction (the ATS and the CPU core; accelerators re-register
        on attach). Counters are zeroed separately through the root
        StatDomain.
        """
        self.processes.clear()
        self.violation_log.clear()
        self._next_pid = 1
        self._next_asid = 1
        self._accels.clear()
        if shootdown_listeners is not None:
            self._shootdown_listeners = list(shootdown_listeners)
        self._frame_refs.clear()
        self._swap.clear()
        self._quarantine_until.clear()
        self._quarantine_strikes.clear()
        self._lifecycle_hooks.clear()
        self.sandboxes.reset_for_reuse()
        self.allocator.reset()
        if self.sandboxes.allocator is not self.allocator:
            self.sandboxes.allocator.reset()

    # ------------------------------------------------------------------
    # process-memory helpers (trusted kernel access, bypassing TLBs)
    # ------------------------------------------------------------------

    def proc_write(self, proc: Process, vaddr: int, data: bytes) -> None:
        pos = 0
        addr = vaddr
        while pos < len(data):
            chunk = min(len(data) - pos, PAGE_SIZE - (addr & (PAGE_SIZE - 1)))
            paddr = self._translate_for_kernel(proc, addr)
            self.phys.write(paddr, data[pos : pos + chunk])
            pos += chunk
            addr += chunk

    def proc_read(self, proc: Process, vaddr: int, length: int) -> bytes:
        out = bytearray()
        addr = vaddr
        while len(out) < length:
            chunk = min(length - len(out), PAGE_SIZE - (addr & (PAGE_SIZE - 1)))
            paddr = self._translate_for_kernel(proc, addr)
            out += self.phys.read(paddr, chunk)
            addr += chunk
        return bytes(out)

    def _translate_for_kernel(self, proc: Process, vaddr: int) -> int:
        translation = proc.page_table.translate(vaddr)
        if translation is None:
            ppn = self.handle_page_fault(proc, vaddr, write=False)
            return (ppn << PAGE_SHIFT) | (vaddr & (PAGE_SIZE - 1))
        offset_pages = (vaddr >> PAGE_SHIFT) - translation.vpn
        return ((translation.ppn + offset_pages) << PAGE_SHIFT) | (
            vaddr & (PAGE_SIZE - 1)
        )

    # ------------------------------------------------------------------

    def _run(self, gen: Generator):
        """Drive a kernel generator to completion on the engine."""
        return self.engine.run_process(gen, name="kernel-op")
