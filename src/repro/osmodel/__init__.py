"""The trusted operating system model.

Border Control "builds upon the existing process abstraction, using the
permissions set by the OS as stored in the page table" (paper §1). This
package provides that OS: processes with real page tables, mmap/munmap/
mprotect, copy-on-write forks, swapping, TLB shootdowns that fan out to
accelerators, and the violation-handling policies of §3.2.3 (terminate
the process or disable the accelerator).
"""

from repro.osmodel.process import Process, ProcessState
from repro.osmodel.kernel import Kernel, ViolationPolicy
from repro.osmodel.scheduler import RoundRobinScheduler
from repro.osmodel.vmm import VMM, GuestPartition

__all__ = [
    "GuestPartition",
    "Kernel",
    "Process",
    "ProcessState",
    "RoundRobinScheduler",
    "VMM",
    "ViolationPolicy",
]
