"""A round-robin CPU scheduler.

Context switches are the paper's most common source of permission
downgrades today ("10-200 downgrades per second" under normal Linux
scheduling, Fig. 7). The scheduler's role in this model is to generate
those downgrade events at a realistic cadence; the Fig. 7 experiment also
injects downgrades directly at swept rates.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from repro.osmodel.kernel import Kernel
from repro.osmodel.process import Process
from repro.sim.clock import TICKS_PER_SECOND

__all__ = ["RoundRobinScheduler"]


class RoundRobinScheduler:
    """Rotates runnable processes on a fixed timeslice.

    Each rotation away from a process that has accelerator state triggers
    the full-context downgrade path (flush accelerator caches, zero the
    Protection Table — paper §3.2.4).
    """

    def __init__(
        self,
        kernel: Kernel,
        timeslice_seconds: float = 0.01,  # 100 Hz, a typical Linux tick
        on_switch: Optional[Callable[[Process, Process], None]] = None,
    ) -> None:
        if timeslice_seconds <= 0:
            raise ValueError("timeslice must be positive")
        self.kernel = kernel
        self.timeslice_ticks = int(timeslice_seconds * TICKS_PER_SECOND)
        self.on_switch = on_switch
        self.runnable: List[Process] = []
        self.current: Optional[Process] = None
        self.switches = 0
        self.downgrades = 0
        # Multi-tenant forward progress (recovery): processes whose every
        # accelerator is quarantined are passed over instead of burning
        # timeslices waiting on a device that cannot serve them. Counted
        # so campaigns can assert unaffected tenants kept running.
        self.recovery_skips = 0

    def add(self, proc: Process) -> None:
        if proc not in self.runnable:
            self.runnable.append(proc)

    def remove(self, proc: Process) -> None:
        if proc in self.runnable:
            self.runnable.remove(proc)
        if self.current is proc:
            self.current = None

    def run(self, duration_seconds: float) -> Generator:
        """Simulation process: rotate for ``duration_seconds`` of sim time."""
        end = self.kernel.engine.now + int(duration_seconds * TICKS_PER_SECOND)
        while self.kernel.engine.now < end and self.runnable:
            nxt = self._pick_next()
            if nxt is None:
                break
            prev, self.current = self.current, nxt
            if prev is not None and prev is not nxt:
                self.switches += 1
                if self.on_switch is not None:
                    self.on_switch(prev, nxt)
                if prev.accelerators and prev.alive:
                    self.downgrades += 1
                    yield from self.kernel.downgrade_process_g(prev)
            remaining = end - self.kernel.engine.now
            if remaining <= 0:
                break
            yield min(self.timeslice_ticks, remaining)

    def _pick_next(self) -> Optional[Process]:
        self.runnable = [p for p in self.runnable if p.alive]
        if not self.runnable:
            return None
        if self.current in self.runnable:
            start = (self.runnable.index(self.current) + 1) % len(self.runnable)
        else:
            start = 0
        # First pass: rotate past accelerator-blocked processes so
        # unaffected tenants keep making progress through a recovery.
        for offset in range(len(self.runnable)):
            proc = self.runnable[(start + offset) % len(self.runnable)]
            if self._accel_blocked(proc):
                self.recovery_skips += 1
                continue
            return proc
        # Everyone is blocked on a quarantined device: fall back to plain
        # rotation (scheduling one keeps the simulation advancing toward
        # the quarantine's timed release).
        return self.runnable[start]

    def _accel_blocked(self, proc: Process) -> bool:
        """True when every accelerator the process uses is quarantined."""
        if not proc.accelerators:
            return False
        return all(
            self.kernel.is_quarantined(accel_id) for accel_id in proc.accelerators
        )
