"""Vectorized (structure-of-arrays) execution tier for the simulation core.

This module is the numpy side of the batched wavefront replay introduced
by the scalar probe/commit fast path (``Cache.probe_read_hit``,
``TLB.probe``, ``BandwidthServer.preview``): where the scalar path prices
and classifies one access at a time, this tier classifies a whole *window*
of upcoming accesses in single numpy passes over memoized snapshots of
TLB residency, cache residency, and Protection Table permission bits.

Observation-safety contract (the horizon guard)
-----------------------------------------------

A batch may only commit effects that no other simulation actor could have
observed or reordered against. The guard is
:meth:`repro.sim.engine.Engine.next_event_time` — the earliest queued
entry across *all* ready actors at the current tick (a pending ready-deque
entry pins the horizon to ``now``) and the event heap. Every batched
commit must land strictly before that horizon; the first op whose
completion would reach it ends the batch and replays through the scalar
path. Within the window, classification against a residency *snapshot* is
exact because a batch consists only of L1 read hits: hits touch recency
but never insert or evict, so residency is constant for the whole batch
and the snapshot cannot go stale mid-batch.

Fallback triggers (each counted in :data:`STATS`):

* ``horizon`` — the next op's completion time reaches the guard;
* ``miss`` — a TLB or L1 miss (the op must run the fill/translate path);
* ``write`` — stores always cross downstream (write-through L1s);
* ``perm`` — the Protection Table no longer grants Read on a batched
  page (defense in depth: downgrades flush the L1s first, so residency
  should imply permission — a hit here aborts the batch and routes the
  op through the full checking path);
* ``mlp`` — the wavefront must wait on a live (non-token) op;
* ``disabled`` — the vector tier is off (no numpy, or ``REPRO_VECTOR=0``).

The ``REPRO_VECTOR`` gate
-------------------------

``REPRO_VECTOR=0`` disables the tier (the scalar path is the reference
oracle and stays bit-identical); any other value — or the variable being
unset — enables it when numpy is importable. The flag is re-read on every
kernel launch, so a warm-reused :class:`~repro.sim.system.System` honors
mode changes between runs. Without numpy the tier is disabled with a
one-line warning and everything runs the pure-Python scalar path.

Snapshots are cached on the snapshotted objects (``_vec_snap``) keyed by
their ``version`` counters; any insert/evict/invalidate/flush/reset bumps
the version, and ``reset()`` additionally drops the snapshot outright so
warm-reused systems carry no batch state across runs.

Transformations proven unsound (do not re-attempt)
--------------------------------------------------

Bit-identity to the scalar oracle pins the engine's ``(when, seq)``
tie-breaking, which rules out the aggressive rewrites that would turn
this tier into a multi-x end-to-end win on highly-threaded cells:

* *sleep fusion* — collapsing a wavefront's ``yield gap`` chain into one
  sleep skips intermediate wakeups, so every later same-tick event draws
  a different ``seq`` and same-tick FIFO order diverges;
* *inline dispatch at resume time* — running the access at the moment
  the sleep expires rather than re-enqueueing at the original queue
  position reorders it against other actors ready at that tick;
* *per-CU relaxed horizons* — letting one CU commit past another CU's
  next event is exactly the reordering the global guard exists to stop.

On 128-wavefront cells the shared issue ports keep the event horizon
within one hit latency of ``now`` essentially always, so the batch drain
rarely opens and the realized win is the flattened per-op dispatch (no
generator spawn on L1 read hits), not bulk classification. That is a
property of the interleaving contract, not an implementation gap.
"""

from __future__ import annotations

import os
import warnings
from typing import List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised via tests that stub np to None
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from repro.mem.address import BLOCK_SIZE, PAGE_SHIFT

__all__ = [
    "STATS",
    "BatchStats",
    "TraceSoA",
    "build_soa",
    "cache_snapshot",
    "classify_window",
    "numpy_available",
    "readable_snapshot",
    "reset_stats",
    "tlb_snapshot",
    "vector_enabled",
]

_LARGE_BASE_MASK = ~0x1FF  # 2 MB large-page entries are 512-page aligned
_warned_no_numpy = False


def numpy_available() -> bool:
    return np is not None


def vector_enabled() -> bool:
    """True when the vector tier should run (re-read per kernel launch)."""
    if os.environ.get("REPRO_VECTOR", "1") == "0":
        return False
    if np is None:
        global _warned_no_numpy
        if not _warned_no_numpy:
            _warned_no_numpy = True
            warnings.warn(
                "numpy is not importable: the vector execution tier is "
                "disabled, running the scalar reference path",
                RuntimeWarning,
                stacklevel=2,
            )
        return False
    return True


class BatchStats:
    """Module-level batch telemetry (deliberately *not* part of RunResult:
    the scalar and vector paths must produce bit-identical results, and
    these counters differ by construction between the two modes)."""

    __slots__ = (
        "batches_attempted",
        "batches_committed",
        "ops_batched",
        "ops_flattened",
        "fallbacks",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.batches_attempted = 0
        self.batches_committed = 0
        self.ops_batched = 0
        self.ops_flattened = 0
        self.fallbacks = {
            "horizon": 0,
            "miss": 0,
            "write": 0,
            "perm": 0,
            "mlp": 0,
            "disabled": 0,
        }

    @property
    def batches_aborted(self) -> int:
        return self.batches_attempted - self.batches_committed

    def fallback_rate(self) -> float:
        """Scalar-fallback rate: batches aborted / batches attempted."""
        if self.batches_attempted == 0:
            return 0.0
        return self.batches_aborted / self.batches_attempted

    def as_dict(self) -> dict:
        return {
            "batches_attempted": self.batches_attempted,
            "batches_committed": self.batches_committed,
            "batches_aborted": self.batches_aborted,
            "ops_batched": self.ops_batched,
            "ops_flattened": self.ops_flattened,
            "fallback_rate": self.fallback_rate(),
            "fallbacks": dict(self.fallbacks),
        }


STATS = BatchStats()


def reset_stats() -> None:
    STATS.reset()


# -- structure-of-arrays traces ------------------------------------------------


class TraceSoA:
    """One wavefront's op stream as parallel arrays.

    ``vaddrs`` uses ``-1`` for pure compute ops (``vaddr is None`` in the
    tuple form). The arrays are materialized *from* the scalar tuples, so
    they are bit-identical to the scalar RNG draws by construction — the
    tuple list stays on the trace as the reference oracle.
    """

    __slots__ = ("gaps", "vaddrs", "is_write")

    def __init__(self, gaps, vaddrs, is_write) -> None:
        self.gaps = gaps
        self.vaddrs = vaddrs
        self.is_write = is_write

    def __len__(self) -> int:
        return len(self.gaps)


def build_soa(ops: Sequence[Tuple[int, Optional[int], bool]]) -> Optional[TraceSoA]:
    """Materialize one wavefront's op list as a :class:`TraceSoA`."""
    if np is None or not ops:
        return None
    n = len(ops)
    gaps = np.empty(n, dtype=np.int64)
    vaddrs = np.empty(n, dtype=np.int64)
    is_write = np.empty(n, dtype=bool)
    for i, (gap, vaddr, write) in enumerate(ops):
        gaps[i] = gap
        vaddrs[i] = -1 if vaddr is None else vaddr
        is_write[i] = write
    return TraceSoA(gaps, vaddrs, is_write)


def build_trace_soa(cu_wavefronts) -> Optional[List[List[Optional[TraceSoA]]]]:
    """SoA mirror of ``KernelTrace.cu_wavefronts`` (None without numpy)."""
    if np is None:
        return None
    return [[build_soa(wf) for wf in cu] for cu in cu_wavefronts]


# -- memoized snapshots --------------------------------------------------------
#
# Each snapshot is cached on the snapshotted object as ``_vec_snap`` keyed
# by its ``version`` counter; the producer bumps ``version`` on every
# insert/evict/invalidate/flush/reset, and reset() clears ``_vec_snap``.


def tlb_snapshot(tlb, asid: int):
    """Sorted-array view of one ASID's resident translations.

    Returns ``(small_vpns, small_ppns, large_bases, large_ppns)`` with the
    vpn/base arrays sorted ascending (parallel ppn arrays permuted to
    match), suitable for ``np.searchsorted`` membership tests.
    """
    snap = getattr(tlb, "_vec_snap", None)
    if snap is not None and snap[0] == tlb.version and asid in snap[1]:
        return snap[1][asid]
    small_v: List[int] = []
    small_p: List[int] = []
    large_v: List[int] = []
    large_p: List[int] = []
    for (e_asid, vpn, is_large), entry in tlb._entries.items():
        if e_asid != asid:
            continue
        if is_large:
            large_v.append(vpn)
            large_p.append(entry.ppn)
        else:
            small_v.append(vpn)
            small_p.append(entry.ppn)
    sv = np.asarray(small_v, dtype=np.int64)
    sp = np.asarray(small_p, dtype=np.int64)
    lv = np.asarray(large_v, dtype=np.int64)
    lp = np.asarray(large_p, dtype=np.int64)
    order = np.argsort(sv, kind="stable")
    sv, sp = sv[order], sp[order]
    order = np.argsort(lv, kind="stable")
    lv, lp = lv[order], lp[order]
    built = (sv, sp, lv, lp)
    if snap is None or snap[0] != tlb.version:
        tlb._vec_snap = (tlb.version, {asid: built})
    else:
        snap[1][asid] = built
    return built


def cache_snapshot(cache):
    """Sorted array of the cache's resident block addresses."""
    snap = getattr(cache, "_vec_snap", None)
    if snap is not None and snap[0] == cache.version:
        return snap[1]
    blocks = np.asarray(
        sorted(
            addr for cache_set in cache._sets for addr in cache_set.keys()
        ),
        dtype=np.int64,
    )
    cache._vec_snap = (cache.version, blocks)
    return blocks


def readable_snapshot(table):
    """Sorted array of PPNs the Protection Table grants Read on.

    Backed by the table's raw in-memory permission bytes (2 bits per
    page, bit 0 of each field = Read), decoded in one vectorized pass.
    """
    snap = getattr(table, "_vec_snap", None)
    if snap is not None and snap[0] == table.version:
        return snap[1]
    nbytes = (table.covered_pages + 3) // 4
    raw = np.frombuffer(
        bytes(table.phys.read(table.base_paddr, nbytes)), dtype=np.uint8
    )
    # Each byte packs four 2-bit fields; extract the Read bit of each.
    fields = np.empty(nbytes * 4, dtype=np.uint8)
    fields[0::4] = raw & 0x1
    fields[1::4] = (raw >> 2) & 0x1
    fields[2::4] = (raw >> 4) & 0x1
    fields[3::4] = (raw >> 6) & 0x1
    readable = np.nonzero(fields[: table.covered_pages])[0].astype(np.int64)
    table._vec_snap = (table.version, readable)
    return readable


def _member(sorted_arr, values):
    """Vectorized membership: index into ``sorted_arr`` + hit mask."""
    if len(sorted_arr) == 0:
        idx = np.zeros(len(values), dtype=np.intp)
        return idx, np.zeros(len(values), dtype=bool)
    idx = np.searchsorted(sorted_arr, values)
    idx_c = np.minimum(idx, len(sorted_arr) - 1)
    return idx_c, sorted_arr[idx_c] == values


# -- window classification -----------------------------------------------------


def classify_window(tlb, cache, asid: int, vaddrs, bcc=None, table=None):
    """Classify a window of virtual addresses against residency snapshots.

    ``vaddrs`` is an ``np.int64`` array in which ``-1`` marks pure compute
    ops. Returns ``(batchable, blocks, small_hit, perm_ok)`` where
    ``batchable`` is a boolean mask (compute ops, and reads that hit the
    TLB *and* the L1 and whose page the Protection Table still grants
    Read on), ``blocks`` holds each memory op's physical block address
    (garbage where not batchable), ``small_hit`` marks which TLB hits
    used a small-page entry (the commit path needs the key flavor for
    recency touches), and ``perm_ok`` is the permission mask alone (used
    to attribute batch aborts to ``perm`` vs ``miss``).

    The BCC's set-index math rides along for telemetry: when ``bcc`` is
    given, group indices are computed vectorized (``ppn >> group_shift``)
    — the same single-pass decoupling of protection metadata lookups from
    the per-request path that motivates the tier.
    """
    is_mem = vaddrs >= 0
    vpns = vaddrs >> PAGE_SHIFT
    sv, sp, lv, lp = tlb_snapshot(tlb, asid)
    s_idx, s_hit = _member(sv, vpns)
    bases = vpns & _LARGE_BASE_MASK
    l_idx, l_hit = _member(lv, bases)
    tlb_hit = s_hit | l_hit
    # Small entries win when both are resident (probe order: small first).
    # Empty snapshots gather from a zero placeholder (the hit masks are
    # all-False there, so the gathered values are never used).
    s_ppn = sp[s_idx] if len(sp) else np.zeros(len(vpns), dtype=np.int64)
    l_ppn = lp[l_idx] if len(lp) else np.zeros(len(vpns), dtype=np.int64)
    ppns = np.where(s_hit, s_ppn, l_ppn + (vpns - bases))
    paddrs = (ppns << PAGE_SHIFT) | (vaddrs & 0xFFF)
    blocks = paddrs & ~np.int64(BLOCK_SIZE - 1)
    resident = cache_snapshot(cache)
    _, l1_hit = _member(resident, blocks)
    batchable = ~is_mem | (tlb_hit & l1_hit)
    if table is not None:
        readable = readable_snapshot(table)
        _, perm_ok = _member(readable, ppns)
        batchable &= ~is_mem | perm_ok
    else:
        perm_ok = np.ones(len(vaddrs), dtype=bool)
    if bcc is not None and bcc._group_shift is not None:
        # Set-index pass (telemetry only: L1 hits never consult the BCC).
        _groups = ppns >> bcc._group_shift  # noqa: F841
    return batchable, blocks, s_hit, perm_ok


def batchable_run_length(batchable, is_write) -> int:
    """Length of the leading batchable, non-write run of a window."""
    ok = batchable & ~is_write
    bad = np.nonzero(~ok)[0]
    return int(bad[0]) if len(bad) else len(ok)


# -- bulk commits --------------------------------------------------------------


def commit_tlb_hits(tlb, asid: int, vpns, small_hit, count: int) -> None:
    """Commit ``count`` TLB hits' side effects in bulk.

    Equivalent to ``count`` sequential ``commit_hit`` calls: the hit
    counter is bulk-added and recency is touched once per unique key in
    order of *last* occurrence (sequential ``move_to_end`` of a sequence
    is determined entirely by each key's last touch).
    """
    if count == 0:
        return
    vpns = vpns[:count]
    small = small_hit[:count]
    keyed = np.where(small, vpns << 1 | 1, (vpns & _LARGE_BASE_MASK) << 1)
    last = _last_occurrence_order(keyed)
    entries = tlb._entries
    for code in last:
        code = int(code)
        if code & 1:
            entries.move_to_end((asid, code >> 1, False))
        else:
            entries.move_to_end((asid, code >> 1, True))
    tlb._hits.value += count


def commit_cache_hits(cache, blocks, count: int) -> None:
    """Commit ``count`` L1 read hits' side effects in bulk (see above)."""
    if count == 0:
        return
    last = _last_occurrence_order(blocks[:count])
    sets = cache._sets
    shift = cache._block_shift
    nsets = cache._num_sets
    for block in last:
        block = int(block)
        sets[(block >> shift) % nsets].move_to_end(block)
    cache._hits.value += count


def _last_occurrence_order(values):
    """Unique values ordered by their *last* occurrence in ``values``."""
    rev = values[::-1]
    _, first_in_rev = np.unique(rev, return_index=True)
    # Positions of last occurrences (ascending position = touch order).
    positions = len(values) - 1 - first_in_rev
    return values[np.sort(positions)]
