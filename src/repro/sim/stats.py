"""Statistics collection.

Every hardware component owns a :class:`StatDomain`, a hierarchical bag of
named counters and distributions. Domains can be merged and rendered, and
the experiment harness reads them to regenerate the paper's figures (e.g.
Fig. 5's border-crossing requests per cycle comes straight from the Border
Control domain's ``checks`` counter divided by GPU cycles).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["Counter", "Distribution", "StatDomain"]


class Counter:
    """A monotonically increasing named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use two counters for deltas")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self.value})"


class Distribution:
    """Streaming summary of a sample stream (count/sum/min/max/mean)."""

    __slots__ = ("name", "count", "total", "minimum", "maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def record(self, sample: float) -> None:
        self.count += 1
        self.total += sample
        if self.minimum is None or sample < self.minimum:
            self.minimum = sample
        if self.maximum is None or sample > self.maximum:
            self.maximum = sample

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = None
        self.maximum = None


class StatDomain:
    """A named, nestable namespace of counters and distributions."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._counters: Dict[str, Counter] = {}
        self._dists: Dict[str, Distribution] = {}
        self._children: Dict[str, "StatDomain"] = {}

    # -- structure -------------------------------------------------------

    def child(self, name: str) -> "StatDomain":
        """Get or create a nested domain."""
        if name not in self._children:
            self._children[name] = StatDomain(name)
        return self._children[name]

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def distribution(self, name: str) -> Distribution:
        if name not in self._dists:
            self._dists[name] = Distribution(name)
        return self._dists[name]

    # -- access ----------------------------------------------------------

    def get(self, path: str) -> int:
        """Counter value addressed by a dotted path; 0 if absent."""
        domain, leaf = self._resolve(path)
        if domain is None or leaf not in domain._counters:
            return 0
        return domain._counters[leaf].value

    def ratio(self, numerator: str, denominator: str) -> float:
        """Ratio of two counters (0.0 when the denominator is zero)."""
        denom = self.get(denominator)
        return self.get(numerator) / denom if denom else 0.0

    def total(self, leaf: str) -> int:
        """Sum of every counter named ``leaf`` anywhere in this subtree.

        Used by the fault-injection layer to aggregate e.g. ``injected``
        or ``retries`` across several interposers without knowing where
        each one was spliced into the hierarchy.
        """
        count = 0
        if leaf in self._counters:
            count += self._counters[leaf].value
        for child in self._children.values():
            count += child.total(leaf)
        return count

    def _resolve(self, path: str) -> Tuple[Optional["StatDomain"], str]:
        parts = path.split(".")
        domain: Optional[StatDomain] = self
        for part in parts[:-1]:
            if domain is None or part not in domain._children:
                return None, parts[-1]
            domain = domain._children[part]
        return domain, parts[-1]

    def walk(self, prefix: str = "") -> Iterator[Tuple[str, int]]:
        """Yield (dotted-path, value) for every counter, depth first."""
        base = f"{prefix}{self.name}." if prefix or self.name else ""
        for name in sorted(self._counters):
            yield base + name, self._counters[name].value
        for name in sorted(self._children):
            yield from self._children[name].walk(base)

    def as_dict(self) -> Dict[str, int]:
        return dict(self.walk())

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
        for dist in self._dists.values():
            dist.reset()
        for dom in self._children.values():
            dom.reset()

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        """Human-readable dump, one counter per line."""
        lines: List[str] = []
        for path, value in self.walk():
            lines.append(f"{path:<56s} {value}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        return f"StatDomain({self.name!r}, {len(self._counters)} counters)"
