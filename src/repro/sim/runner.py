"""Experiment runner: build a system, run a workload, collect results.

This is the harness layer the benchmarks and experiments drive. A
:class:`RunResult` carries everything the paper's figures need: elapsed
GPU cycles (runtime), border-crossing counts (Fig. 5), BCC hit ratios
(Fig. 6's full-system counterpart), DRAM traffic, and violation counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.accel.gpu import KernelTrace
from repro.sim.config import GPUThreading, SafetyMode, SystemConfig
from repro.sim.system import System
from repro.workloads.base import WorkloadSpec, generate_trace
from repro.workloads.registry import get_workload

__all__ = ["RunResult", "run_single", "runtime_overhead", "geometric_mean"]


@dataclass
class RunResult:
    """Measurements from one (workload, configuration) simulation."""

    workload: str
    safety: SafetyMode
    threading: GPUThreading
    ticks: int
    gpu_cycles: float
    mem_ops: int
    blocked_ops: int
    border_checks: int
    border_pt_accesses: int
    bcc_hits: int
    bcc_misses: int
    ats_translations: int
    ats_walks: int
    dram_bytes: int
    dram_utilization: float
    l1_hits: int
    l1_misses: int
    l2_hits: int
    l2_misses: int
    l2_writebacks: int
    violations: int
    downgrades: int = 0
    border_trace: Optional[list] = None  # [(ppn, is_write)] when recorded

    @property
    def checks_per_cycle(self) -> float:
        """Fig. 5's metric: border-crossing requests per GPU cycle."""
        return self.border_checks / self.gpu_cycles if self.gpu_cycles else 0.0

    @property
    def bcc_miss_ratio(self) -> float:
        total = self.bcc_hits + self.bcc_misses
        return self.bcc_misses / total if total else 0.0

    @property
    def l1_hit_ratio(self) -> float:
        total = self.l1_hits + self.l1_misses
        return self.l1_hits / total if total else 0.0

    @property
    def l2_hit_ratio(self) -> float:
        total = self.l2_hits + self.l2_misses
        return self.l2_hits / total if total else 0.0


def run_single(
    workload: str,
    safety: SafetyMode,
    threading: GPUThreading = GPUThreading.HIGHLY,
    seed: int = 1234,
    ops_scale: float = 1.0,
    config: Optional[SystemConfig] = None,
    spec: Optional[WorkloadSpec] = None,
    record_border: bool = False,
    downgrade_interval_cycles: Optional[float] = None,
    large_pages: bool = False,
) -> RunResult:
    """Run one workload on one configuration; returns its measurements.

    ``record_border`` captures the (ppn, is_write) stream crossing the
    border (Fig. 6 replays it); ``downgrade_interval_cycles`` injects a
    full permission downgrade — the Fig. 7 event — every N GPU cycles
    while the kernel runs.
    """
    spec = spec or get_workload(workload)
    cfg = (config or SystemConfig()).with_safety(safety).with_threading(threading)
    system = System(cfg)
    proc = system.new_process(spec.name)
    system.attach_process(proc)
    trace = generate_trace(
        spec,
        system.kernel,
        proc,
        threading,
        seed=seed,
        ops_scale=ops_scale,
        large_pages=large_pages,
    )
    border_trace = None
    if record_border and system.border_port is not None:
        border_trace = []
        system.border_port.ppn_recorder = border_trace

    downgrades = [0]
    if downgrade_interval_cycles is None:
        ticks = system.run_kernel(proc, trace)
    else:
        interval_ticks = system.gpu_clock.cycles_to_ticks(downgrade_interval_cycles)
        start = system.engine.now
        done = system.gpu.launch(proc.asid, trace)
        end_time = [start]

        def watcher():
            yield done
            end_time[0] = system.engine.now

        def injector():
            while not done.triggered:
                yield interval_ticks
                if done.triggered:
                    break
                yield from system.kernel.downgrade_process_g(proc)
                downgrades[0] += 1

        system.engine.process(watcher(), name="kernel-watcher")
        system.engine.process(injector(), name="downgrade-injector")
        system.engine.run()
        ticks = end_time[0] - start
        system.gpu.last_kernel_ticks = ticks

    result = collect_result(system, spec.name, trace, ticks)
    result.downgrades = downgrades[0]
    result.border_trace = border_trace
    return result


def collect_result(
    system: System, workload_name: str, trace: KernelTrace, ticks: int
) -> RunResult:
    """Extract a RunResult from a finished system."""
    stats = system.stats
    l1_hits = l1_misses = 0
    for cu in range(system.config.num_cus):
        l1_hits += stats.get(f"gpu_l1_{cu}.hits")
        l1_misses += stats.get(f"gpu_l1_{cu}.misses")
    bc = system.border_control
    bcc_stats = (
        bc.stats.child("bcc") if (bc is not None and bc.has_bcc) else None
    )
    l2_domain = "capi_l2" if system.config.safety is SafetyMode.CAPI_LIKE else "gpu_l2"
    return RunResult(
        workload=workload_name,
        safety=system.config.safety,
        threading=system.config.threading,
        ticks=ticks,
        gpu_cycles=system.gpu_clock.ticks_to_cycles(ticks),
        mem_ops=system.gpu.mem_ops,
        blocked_ops=system.gpu.blocked_ops,
        border_checks=bc.checks if bc else 0,
        border_pt_accesses=bc.pt_accesses if bc else 0,
        bcc_hits=bcc_stats.get("hits") if bcc_stats else 0,
        bcc_misses=bcc_stats.get("misses") if bcc_stats else 0,
        ats_translations=system.ats.translations,
        ats_walks=system.ats.walks,
        dram_bytes=system.dram.bytes_served,
        dram_utilization=system.dram.utilization(ticks),
        l1_hits=l1_hits,
        l1_misses=l1_misses,
        l2_hits=stats.get(f"{l2_domain}.hits"),
        l2_misses=stats.get(f"{l2_domain}.misses"),
        l2_writebacks=stats.get(f"{l2_domain}.writebacks"),
        violations=len(system.kernel.violation_log),
    )


def runtime_overhead(result: RunResult, baseline: RunResult) -> float:
    """Fig. 4's metric: runtime overhead relative to the unsafe baseline."""
    if baseline.ticks <= 0:
        raise ValueError("baseline has zero runtime")
    return result.ticks / baseline.ticks - 1.0


def geometric_mean(values: List[float]) -> float:
    """Geometric mean of (1 + overhead) factors, returned as an overhead.

    The paper reports geometric-mean runtime overheads; overheads can be
    ~0 so we average the runtime *factors* and convert back.
    """
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= 1.0 + v
    return product ** (1.0 / len(values)) - 1.0
