"""Experiment runner: build a system, run a workload, collect results.

This is the harness layer the benchmarks and experiments drive. A
:class:`RunResult` carries everything the paper's figures need: elapsed
GPU cycles (runtime), border-crossing counts (Fig. 5), BCC hit ratios
(Fig. 6's full-system counterpart), DRAM traffic, and violation counts.

It also hosts the *chaos* harness (:func:`run_chaos_single`,
:func:`run_chaos_campaign`): seeded fault-injection runs that splice
:class:`~repro.faults.port.FaultyPort` interposers into the hierarchy,
wedge the accelerator mid-kernel, and then assert that the sandbox's
confidentiality/integrity invariants survived and every hang was cleared
by a watchdog or quarantine.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.accel.gpu import GPUGeometry, KernelTrace
from repro.core.permissions import Perm
from repro.errors import AcceleratorHangError, SimulationIncompleteError
from repro.faults import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    FaultyPort,
    HangingAccelerator,
    derive_seed,
)
from repro.mem.address import BLOCK_SIZE, PAGE_SIZE
from repro.osmodel.kernel import ViolationPolicy
from repro.sim.config import GPUThreading, SafetyMode, SystemConfig
from repro.sim.engine import TIMEOUT
from repro.sim.system import GPU_ID, System
from repro.workloads.base import WorkloadSpec, generate_trace
from repro.workloads.registry import get_workload

__all__ = [
    "RunResult",
    "ChaosRunResult",
    "ChaosReport",
    "run_single",
    "run_chaos_single",
    "run_chaos_campaign",
    "chaos_cell_key",
    "chaos_grid",
    "chaos_result_from_dict",
    "chaos_result_to_dict",
    "runtime_overhead",
    "geometric_mean",
    "DEFAULT_CHAOS_WORKLOADS",
    "DEFAULT_CHAOS_KINDS",
    "warm_enabled",
    "warm_registry_stats",
    "clear_warm_registry",
]


# -- warm System registry (worker-side reuse) --------------------------------
#
# Constructing a :class:`System` — allocator bookkeeping, cache arrays,
# stat domains, kernel wiring — is the dominant fixed cost of a short
# sweep cell, and every cell used to pay it from scratch. A sweep worker
# instead keeps a small LRU of fully-built Systems keyed by their frozen
# :class:`SystemConfig` and restores one to its post-construction state
# with :meth:`System.reset_for_reuse` between cells.
#
# Reuse is opt-in via ``REPRO_WARM=1`` (set by the sweep worker
# initializer); the parent process stays cold so that
# ``verify_identical``'s serial reference run remains an independent
# fresh-construction build. ``REPRO_WARM_MAX`` bounds the registry (the
# default comfortably covers the paper's 5 safety x 2 threading grid —
# a cap below the grid's distinct-config count would thrash).

_WARM_ENV = "REPRO_WARM"
_WARM_MAX_ENV = "REPRO_WARM_MAX"
_WARM_DEFAULT_MAX = 12

_warm_systems: "OrderedDict[SystemConfig, System]" = OrderedDict()
_warm_stats: Dict[str, int] = {"hits": 0, "misses": 0, "evictions": 0}


def warm_enabled() -> bool:
    """True when this process reuses Systems across :func:`run_single` calls."""
    return os.environ.get(_WARM_ENV, "") == "1"


def _warm_cap() -> int:
    try:
        return max(0, int(os.environ.get(_WARM_MAX_ENV, _WARM_DEFAULT_MAX)))
    except (TypeError, ValueError):
        return _WARM_DEFAULT_MAX


def _acquire_system(cfg: SystemConfig) -> System:
    """A ready-to-run System for ``cfg``: a reset warm one if available.

    The instance is popped *out* of the registry while in use, so a crash
    mid-run can never leave a half-mutated System behind for reuse — an
    aborted cell simply forfeits its warm instance.
    """
    if warm_enabled():
        system = _warm_systems.pop(cfg, None)
        if system is not None:
            _warm_stats["hits"] += 1
            system.reset_for_reuse()
            return system
        _warm_stats["misses"] += 1
    return System(cfg)


def _release_system(cfg: SystemConfig, system: System) -> None:
    """Return a successfully-run System to the registry (bounded LRU)."""
    if not warm_enabled():
        return
    cap = _warm_cap()
    if cap <= 0:
        return
    _warm_systems[cfg] = system
    _warm_systems.move_to_end(cfg)
    while len(_warm_systems) > cap:
        _warm_systems.popitem(last=False)
        _warm_stats["evictions"] += 1


def warm_registry_stats() -> Dict[str, int]:
    """Registry counters plus current size (for bench provenance)."""
    return dict(_warm_stats, size=len(_warm_systems))


def clear_warm_registry() -> None:
    """Drop every cached System (tests; also frees worker memory)."""
    _warm_systems.clear()


@dataclass
class RunResult:
    """Measurements from one (workload, configuration) simulation."""

    workload: str
    safety: SafetyMode
    threading: GPUThreading
    ticks: int
    gpu_cycles: float
    mem_ops: int
    blocked_ops: int
    border_checks: int
    border_pt_accesses: int
    bcc_hits: int
    bcc_misses: int
    ats_translations: int
    ats_walks: int
    dram_bytes: int
    dram_utilization: float
    l1_hits: int
    l1_misses: int
    l2_hits: int
    l2_misses: int
    l2_writebacks: int
    violations: int
    downgrades: int = 0
    border_trace: Optional[list] = None  # [(ppn, is_write)] when recorded
    # Resilience bookkeeping (all zero outside chaos runs): faults the
    # chaos layer injected, timeout/ATS retries spent absorbing them, how
    # often the supervising watchdog had to intervene, and how often the
    # OS quarantined the accelerator.
    faults_injected: int = 0
    retries: int = 0
    watchdog_fires: int = 0
    quarantines: int = 0
    # Recovery bookkeeping (repro.recovery; all zero outside recovery
    # campaigns): kernel relaunch attempts after an epoch-fenced reset,
    # how many succeeded, CPU-fallback executions after the retry budget
    # was exhausted, ticks spent in recovery, and stale-epoch traffic
    # rejected at the border/ATS fence.
    recoveries_attempted: int = 0
    recoveries_succeeded: int = 0
    fallback_executions: int = 0
    recovery_ticks: int = 0
    stale_epoch_rejections: int = 0

    @property
    def checks_per_cycle(self) -> float:
        """Fig. 5's metric: border-crossing requests per GPU cycle."""
        return self.border_checks / self.gpu_cycles if self.gpu_cycles else 0.0

    @property
    def bcc_miss_ratio(self) -> float:
        total = self.bcc_hits + self.bcc_misses
        return self.bcc_misses / total if total else 0.0

    @property
    def l1_hit_ratio(self) -> float:
        total = self.l1_hits + self.l1_misses
        return self.l1_hits / total if total else 0.0

    @property
    def l2_hit_ratio(self) -> float:
        total = self.l2_hits + self.l2_misses
        return self.l2_hits / total if total else 0.0


def run_single(
    workload: str,
    safety: SafetyMode,
    threading: GPUThreading = GPUThreading.HIGHLY,
    seed: int = 1234,
    ops_scale: float = 1.0,
    config: Optional[SystemConfig] = None,
    spec: Optional[WorkloadSpec] = None,
    record_border: bool = False,
    downgrade_interval_cycles: Optional[float] = None,
    large_pages: bool = False,
) -> RunResult:
    """Run one workload on one configuration; returns its measurements.

    ``record_border`` captures the (ppn, is_write) stream crossing the
    border (Fig. 6 replays it); ``downgrade_interval_cycles`` injects a
    full permission downgrade — the Fig. 7 event — every N GPU cycles
    while the kernel runs.
    """
    spec = spec or get_workload(workload)
    cfg = (config or SystemConfig()).with_safety(safety).with_threading(threading)
    system = _acquire_system(cfg)
    proc = system.new_process(spec.name)
    system.attach_process(proc)
    trace = generate_trace(
        spec,
        system.kernel,
        proc,
        threading,
        seed=seed,
        ops_scale=ops_scale,
        large_pages=large_pages,
    )
    border_trace = None
    if record_border and system.border_port is not None:
        border_trace = []
        system.border_port.ppn_recorder = border_trace

    downgrades = [0]
    if downgrade_interval_cycles is None:
        ticks = system.run_kernel(proc, trace)
    else:
        interval_ticks = system.gpu_clock.cycles_to_ticks(downgrade_interval_cycles)
        start = system.engine.now
        done = system.gpu.launch(proc.asid, trace)
        end_time = [start]

        def watcher():
            yield done
            end_time[0] = system.engine.now

        def injector():
            while not done.triggered:
                yield interval_ticks
                if done.triggered:
                    break
                yield from system.kernel.downgrade_process_g(proc)
                downgrades[0] += 1

        system.engine.process(watcher(), name="kernel-watcher")
        system.engine.process(injector(), name="downgrade-injector")
        system.engine.run()
        if not done.triggered:
            # Without this check, end_time[0] stays at `start` and a
            # silent ticks=0 result poisons runtime_overhead downstream.
            raise SimulationIncompleteError(
                spec.name,
                "event queue drained with the kernel still outstanding "
                f"under downgrade injection (interval "
                f"{downgrade_interval_cycles:g} cycles, "
                f"{downgrades[0]} downgrade(s) injected)",
            )
        ticks = end_time[0] - start
        system.gpu.last_kernel_ticks = ticks

    result = collect_result(system, spec.name, trace, ticks)
    result.downgrades = downgrades[0]
    result.border_trace = border_trace
    # Only a run that completed cleanly donates its System back for warm
    # reuse; any exception above bypasses this and the instance is dropped.
    _release_system(cfg, system)
    return result


def collect_result(
    system: System, workload_name: str, trace: KernelTrace, ticks: int
) -> RunResult:
    """Extract a RunResult from a finished system."""
    stats = system.stats
    l1_hits = l1_misses = 0
    for cu in range(system.config.num_cus):
        l1_hits += stats.get(f"gpu_l1_{cu}.hits")
        l1_misses += stats.get(f"gpu_l1_{cu}.misses")
    bc = system.border_control
    bcc_stats = (
        bc.stats.child("bcc") if (bc is not None and bc.has_bcc) else None
    )
    l2_domain = "capi_l2" if system.config.safety is SafetyMode.CAPI_LIKE else "gpu_l2"
    return RunResult(
        workload=workload_name,
        safety=system.config.safety,
        threading=system.config.threading,
        ticks=ticks,
        gpu_cycles=system.gpu_clock.ticks_to_cycles(ticks),
        mem_ops=system.gpu.mem_ops,
        blocked_ops=system.gpu.blocked_ops,
        border_checks=bc.checks if bc else 0,
        border_pt_accesses=bc.pt_accesses if bc else 0,
        bcc_hits=bcc_stats.get("hits") if bcc_stats else 0,
        bcc_misses=bcc_stats.get("misses") if bcc_stats else 0,
        ats_translations=system.ats.translations,
        ats_walks=system.ats.walks,
        dram_bytes=system.dram.bytes_served,
        dram_utilization=system.dram.utilization(ticks),
        l1_hits=l1_hits,
        l1_misses=l1_misses,
        l2_hits=stats.get(f"{l2_domain}.hits"),
        l2_misses=stats.get(f"{l2_domain}.misses"),
        l2_writebacks=stats.get(f"{l2_domain}.writebacks"),
        violations=len(system.kernel.violation_log),
        faults_injected=stats.total("injected") + stats.get("ats.injected_faults"),
        retries=stats.total("retries"),
        quarantines=stats.get("kernel.quarantines"),
        recoveries_attempted=stats.get("recovery.attempted"),
        recoveries_succeeded=stats.get("recovery.succeeded"),
        fallback_executions=stats.get("recovery.fallbacks"),
        recovery_ticks=stats.get("recovery.recovery_ticks"),
        # The border engine's count is authoritative (the port's own
        # counter mirrors it); the ATS fence rejects independently.
        stale_epoch_rejections=(bc.stale_epoch_rejections if bc else 0)
        + stats.get("ats.stale_epoch_rejections"),
    )


def runtime_overhead(result: RunResult, baseline: RunResult) -> float:
    """Fig. 4's metric: runtime overhead relative to the unsafe baseline."""
    if baseline.ticks <= 0:
        raise ValueError("baseline has zero runtime")
    return result.ticks / baseline.ticks - 1.0


def geometric_mean(values: List[float]) -> float:
    """Geometric mean of (1 + overhead) factors, returned as an overhead.

    The paper reports geometric-mean runtime overheads; overheads can be
    ~0 so we average the runtime *factors* and convert back.
    """
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= 1.0 + v
    return product ** (1.0 / len(values)) - 1.0


# ---------------------------------------------------------------------------
# chaos campaigns: fault injection + resilience invariants
# ---------------------------------------------------------------------------

#: Workloads a campaign sweeps by default (small, behaviorally distinct).
DEFAULT_CHAOS_WORKLOADS: Tuple[str, ...] = ("backprop", "bfs", "hotspot")

#: Fault kinds a campaign injects by default.
DEFAULT_CHAOS_KINDS: Tuple[FaultKind, ...] = (
    FaultKind.DROP,
    FaultKind.HANG,
    FaultKind.BIT_FLIP,
    FaultKind.DUP_WRITEBACK,
    FaultKind.ATS_FAULT,
)

#: The 4 KB pattern planted in the victim page; any change is an
#: integrity escape.
_SECRET = bytes(range(256)) * (PAGE_SIZE // 256)


def default_fault_specs(
    kinds: Sequence[FaultKind], pt_delay_ticks: int = 0
) -> List[FaultSpec]:
    """The campaign's standard injection rules for the given kinds.

    Sites: ``l2.border`` is the accel-L2 → border hop (data faults live
    here, where corruption is *inside* the sandbox), ``border.mem`` the
    border → DRAM hop (lost/hung responses the port's timeout covers),
    ``border.pt`` the Protection Table fetch path, ``ats`` the
    translation service.
    """
    specs: List[FaultSpec] = []
    for kind in kinds:
        if kind is FaultKind.DROP:
            specs.append(FaultSpec(kind, "border.mem", 0.01))
        elif kind is FaultKind.HANG:
            # Below the border: recovered by the port's deadline+retry.
            specs.append(FaultSpec(kind, "border.mem", 0.003, max_count=3))
            # Above the border: recovered by the supervising watchdog.
            specs.append(FaultSpec(kind, "l2.border", 0.002, max_count=3))
        elif kind is FaultKind.BIT_FLIP:
            specs.append(FaultSpec(kind, "l2.border", 0.02))
        elif kind is FaultKind.DUP_WRITEBACK:
            specs.append(FaultSpec(kind, "l2.border", 0.05))
        elif kind is FaultKind.DELAY:
            specs.append(FaultSpec(kind, "border.pt", 0.01, param=pt_delay_ticks))
        elif kind is FaultKind.ATS_FAULT:
            specs.append(FaultSpec(kind, "ats", 0.08))
    return specs


@dataclass
class ChaosRunResult:
    """One chaos run: the usual measurements plus the invariant verdicts."""

    workload: str
    kinds: Tuple[str, ...]
    seed: int
    result: RunResult
    plan_signature: Tuple[Tuple[str, int, str], ...]
    fault_counts: Dict[str, int]
    trace_ops: int
    probes: int
    conf_escapes: int
    integ_escapes: int
    secret_intact: bool
    completed: bool
    hangs_released: int

    @property
    def progress(self) -> float:
        """Fraction of the trace's memory ops the device actually issued."""
        return self.result.mem_ops / self.trace_ops if self.trace_ops else 0.0

    def invariant_failures(self) -> List[str]:
        """Empty iff the sandbox held. Each entry names a broken invariant."""
        failures: List[str] = []
        if self.conf_escapes:
            failures.append(
                f"confidentiality: {self.conf_escapes} probe read(s) returned data"
            )
        if self.integ_escapes:
            failures.append(
                f"integrity: {self.integ_escapes} probe write(s) were committed"
            )
        if not self.secret_intact:
            failures.append("integrity: victim page bytes changed")
        if not self.completed:
            failures.append("termination: kernel did not complete")
        if self.result.mem_ops == 0:
            failures.append("progress: accelerator issued no memory operations")
        return failures

    @property
    def ok(self) -> bool:
        return not self.invariant_failures()

    def signature(self) -> Tuple:
        """Everything that must replay identically for the same seed."""
        return (
            self.workload,
            self.kinds,
            self.seed,
            self.plan_signature,
            self.result.ticks,
            self.result.mem_ops,
            self.result.blocked_ops,
            self.result.faults_injected,
            self.result.retries,
            self.result.watchdog_fires,
            self.result.quarantines,
            self.probes,
            self.conf_escapes,
            self.integ_escapes,
            self.secret_intact,
            self.completed,
            self.hangs_released,
        )


@dataclass
class ChaosReport:
    """A campaign's invariant report across every (workload, faults) run."""

    seed: int
    runs: List[ChaosRunResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(run.ok for run in self.runs)

    def invariant_failures(self) -> List[str]:
        out: List[str] = []
        for run in self.runs:
            for failure in run.invariant_failures():
                out.append(f"{run.workload} [{'+'.join(run.kinds)}]: {failure}")
        return out

    def signature(self) -> Tuple:
        return tuple(run.signature() for run in self.runs)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "failures": self.invariant_failures(),
            "runs": [
                {
                    "workload": run.workload,
                    "kinds": list(run.kinds),
                    "seed": run.seed,
                    "ok": run.ok,
                    "faults_injected": run.result.faults_injected,
                    "fault_counts": run.fault_counts,
                    "retries": run.result.retries,
                    "watchdog_fires": run.result.watchdog_fires,
                    "quarantines": run.result.quarantines,
                    "hangs_released": run.hangs_released,
                    "probes": run.probes,
                    "conf_escapes": run.conf_escapes,
                    "integ_escapes": run.integ_escapes,
                    "secret_intact": run.secret_intact,
                    "completed": run.completed,
                    "progress": run.progress,
                    "ticks": run.result.ticks,
                }
                for run in self.runs
            ],
        }

    def render(self) -> str:
        """Human-readable invariant report."""
        lines = [
            f"chaos campaign (seed {self.seed}): "
            f"{len(self.runs)} runs, {'PASS' if self.ok else 'FAIL'}",
            f"{'workload':<12} {'faults':<32} {'inj':>5} {'retry':>5} "
            f"{'wdog':>4} {'quar':>4} {'esc':>3} {'prog':>6}  status",
        ]
        for run in self.runs:
            escapes = run.conf_escapes + run.integ_escapes
            if not run.secret_intact:
                escapes += 1
            lines.append(
                f"{run.workload:<12} {'+'.join(run.kinds):<32} "
                f"{run.result.faults_injected:>5} {run.result.retries:>5} "
                f"{run.result.watchdog_fires:>4} {run.result.quarantines:>4} "
                f"{escapes:>3} {run.progress:>6.0%}  "
                f"{'ok' if run.ok else 'FAIL'}"
            )
        total_faults = sum(run.result.faults_injected for run in self.runs)
        total_probes = sum(run.probes for run in self.runs)
        lines.append(
            f"invariants: {total_faults} faults injected, "
            f"{total_probes} rogue probes, "
            f"{sum(r.conf_escapes for r in self.runs)} confidentiality escapes, "
            f"{sum(r.integ_escapes for r in self.runs)} integrity escapes"
        )
        for failure in self.invariant_failures():
            lines.append(f"  FAIL {failure}")
        return "\n".join(lines)


def run_chaos_single(
    workload: str,
    kinds: Sequence[FaultKind],
    seed: int = 1234,
    safety: SafetyMode = SafetyMode.BC_BCC,
    threading: GPUThreading = GPUThreading.MODERATELY,
    ops_scale: float = 1.0,
    config: Optional[SystemConfig] = None,
    workload_spec: Optional[WorkloadSpec] = None,
    plan: Optional[FaultPlan] = None,
    hang_accelerator: Optional[bool] = None,
    watchdog_cycles: float = 50_000.0,
    request_timeout_cycles: float = 10_000.0,
    quarantine_backoff_cycles: float = 25_000.0,
    probe_interval_cycles: float = 4_000.0,
    max_stalled_fires: int = 8,
) -> ChaosRunResult:
    """One seeded fault-injection run with live invariant probing.

    Alongside the faulted workload, a *victim* process (never granted to
    the accelerator) holds a secret page, and a rogue prober fires
    read/write requests at it through the border port while faults are
    landing. Any probe read returning data is a confidentiality escape;
    any committed probe write (or changed victim bytes) an integrity
    escape. A supervisor process watches for lost forward progress and
    recovers hangs — first by failing hung accesses out of the faulty
    ports, then by quarantining the accelerator.
    """
    if not safety.uses_border_control:
        raise ValueError("chaos runs require a Border Control configuration")
    workload_spec = workload_spec or get_workload(workload)
    cfg = (config or SystemConfig()).with_safety(safety).with_threading(threading)
    system = System(cfg, violation_policy=ViolationPolicy.QUARANTINE)
    engine = system.engine
    kernel = system.kernel
    ticks_of = system.gpu_clock.cycles_to_ticks
    kernel.quarantine_backoff_ticks = ticks_of(quarantine_backoff_cycles)

    # Fleet-network kinds belong to repro.fleet's transport, not to the
    # simulation; dropping them keeps chaos signatures independent of
    # which transport kinds exist.
    kinds = tuple(k for k in kinds if not k.fleet_only)
    if plan is None:
        plan = FaultPlan(seed, default_fault_specs(kinds, ticks_of(200.0)))

    # Splice the interposers: accel L2 -> [l2.border] -> border port ->
    # [border.mem] -> memory controller; plus the PT-fetch and ATS hooks.
    fault_stats = system.stats.child("faults")
    border = system.border_port
    assert border is not None and system.gpu_l2 is not None
    port_below = FaultyPort(
        engine, system.memctl, plan, "border.mem", fault_stats.child("border_mem")
    )
    port_above = FaultyPort(
        engine, border, plan, "l2.border", fault_stats.child("l2_border")
    )
    border.downstream = port_below
    system.gpu_l2.downstream = port_above
    faulty_ports = [port_above, port_below]
    border.request_timeout_ticks = ticks_of(request_timeout_cycles)
    border.retry_backoff_ticks = ticks_of(1_000.0)

    pt_injector = plan.for_site("border.pt")

    def pt_fault() -> int:
        spec = pt_injector.draw()
        return spec.param if spec is not None else 0

    border.pt_fault_hook = pt_fault

    ats_injector = plan.for_site("ats")
    system.ats.fault_injector = lambda: ats_injector.draw() is not None
    system.ats.config = replace(
        system.ats.config, max_retries=3, retry_backoff_ticks=ticks_of(100.0)
    )

    if hang_accelerator is None:
        hang_accelerator = FaultKind.HANG in kinds
    if hang_accelerator:
        system.gpu = HangingAccelerator(
            engine,
            system.gpu_clock,
            GPUGeometry(
                num_cus=cfg.num_cus, l1_tlb_entries=cfg.gpu_l1_tlb_entries
            ),
            system.gpu.path,
            stats=system.stats.child("gpu"),
            accel_id=GPU_ID,
        )

    # The victim: a process that never touches the accelerator. Its
    # secret page must stay unreadable and unwritable from the border.
    victim = system.new_process("victim")
    secret_vaddr = kernel.mmap(victim, 1, Perm.RW)
    kernel.proc_write(victim, secret_vaddr, _SECRET)
    translation = victim.page_table.translate(secret_vaddr)
    assert translation is not None
    secret_paddr = translation.ppn * PAGE_SIZE

    proc = system.new_process(workload_spec.name)
    system.attach_process(proc)
    trace = generate_trace(
        workload_spec, kernel, proc, threading, seed=seed, ops_scale=ops_scale
    )
    if hang_accelerator:
        # Wedge roughly a third of the way into the kernel.
        system.gpu._ops_until_hang = max(8, trace.total_mem_ops // 3)

    start = engine.now
    done = system.gpu.launch(proc.asid, trace)
    end_time = [start]

    def watcher() -> object:
        yield done
        end_time[0] = engine.now

    # The rogue prober: sustained read/write attempts on the victim's
    # secret page through the accelerator's border checkpoint, racing the
    # injected faults. The prober is the harness's own invariant monitor
    # (trusted test equipment, not a modeled adversary), so its probe
    # violations are logged rather than sanctioned — otherwise the first
    # probe would quarantine a perfectly healthy accelerator.
    probe_interval = max(1, ticks_of(probe_interval_cycles))
    probe_stats = {"probes": 0, "conf": 0, "integ": 0}

    def prober() -> object:
        while not done.triggered:
            yield probe_interval
            if done.triggered:
                return
            probe_stats["probes"] += 1
            saved = kernel.violation_policy
            kernel.violation_policy = ViolationPolicy.LOG_ONLY
            try:
                data = yield from border.access(secret_paddr, BLOCK_SIZE, False)
                if data is not None:
                    probe_stats["conf"] += 1
                wrote = yield from border.access(
                    secret_paddr, BLOCK_SIZE, True, b"\xee" * BLOCK_SIZE
                )
                if wrote is not None:
                    probe_stats["integ"] += 1
            finally:
                kernel.violation_policy = saved

    # The supervisor: a progress-tracking watchdog. A fire with no new
    # issued/completed operations means the device is wedged; recovery
    # escalates from failing hung port accesses out to quarantining the
    # accelerator (which resets and re-enables it after backoff).
    watchdog_ticks = max(1, ticks_of(watchdog_cycles))
    sup = {"fires": 0, "released": 0, "last": -1, "stalled": 0}

    def supervisor() -> object:
        while not done.triggered:
            outcome = yield engine.deadline(done, watchdog_ticks)
            if outcome is not TIMEOUT:
                return
            progress = system.gpu.mem_ops + system.gpu.blocked_ops
            if progress != sup["last"]:
                sup["last"] = progress
                sup["stalled"] = 0
                continue
            sup["fires"] += 1
            released = sum(port.release_hangs() for port in faulty_ports)
            if released:
                sup["released"] += released
                continue
            if kernel.quarantine_accelerator(
                GPU_ID, "watchdog: accelerator stopped making progress"
            ):
                continue
            sup["stalled"] += 1
            if sup["stalled"] >= max_stalled_fires:
                raise AcceleratorHangError(GPU_ID, sup["fires"])

    engine.process(watcher(), name="chaos-watcher")
    engine.process(prober(), name="chaos-prober")
    engine.process(supervisor(), name="chaos-supervisor")
    engine.run()

    completed = bool(done.triggered)
    ticks = end_time[0] - start

    # Detach-style flush (Fig. 3e): drain the accelerator's dirty lines
    # through the border so writeback-path faults (duplicated, dropped,
    # or hung writebacks — and, after a quarantine, *blocked* stale
    # writebacks) are exercised even when the kernel's working set never
    # overflowed the L2. Hung flush accesses are released on a deadline
    # so the flush always terminates.
    flush_proc = engine.process(system.gpu.flush_caches(), name="chaos-flush")

    def flush_guard() -> object:
        stalled = 0
        while not flush_proc.triggered:
            outcome = yield engine.deadline(flush_proc, watchdog_ticks)
            if outcome is not TIMEOUT:
                return
            sup["fires"] += 1
            released = sum(port.release_hangs() for port in faulty_ports)
            sup["released"] += released
            stalled = 0 if released else stalled + 1
            if stalled >= max_stalled_fires:
                raise AcceleratorHangError(GPU_ID, sup["fires"])

    engine.process(flush_guard(), name="chaos-flush-guard")
    engine.run()
    system.gpu.last_kernel_ticks = ticks
    result = collect_result(system, workload_spec.name, trace, ticks)
    result.faults_injected = plan.total_injected
    result.watchdog_fires = sup["fires"]

    secret_intact = system.phys.read(secret_paddr, PAGE_SIZE) == _SECRET
    return ChaosRunResult(
        workload=workload_spec.name,
        kinds=tuple(kind.value for kind in kinds),
        seed=seed,
        result=result,
        plan_signature=plan.signature(),
        fault_counts=plan.counts_by_kind(),
        trace_ops=trace.total_mem_ops,
        probes=probe_stats["probes"],
        conf_escapes=probe_stats["conf"],
        integ_escapes=probe_stats["integ"],
        secret_intact=secret_intact,
        completed=completed,
        hangs_released=sup["released"],
    )


def chaos_grid(
    workloads: Optional[Sequence[str]] = None,
    kinds: Optional[Sequence[FaultKind]] = None,
    seed: int = 1234,
    ops_scale: float = 1.0,
    per_kind: bool = True,
    quick: bool = False,
) -> List[Dict[str, object]]:
    """The campaign's declarative grid: one kwargs dict per chaos run.

    Each workload runs once per fault kind (isolating each failure mode)
    plus once under the full mix. Every run gets a sub-seed derived from
    ``(seed, workload, kinds)``, so a campaign is a pure function of its
    arguments regardless of execution order or parallelism.
    """
    workloads = list(workloads or DEFAULT_CHAOS_WORKLOADS)
    kinds = [k for k in (kinds or DEFAULT_CHAOS_KINDS) if not k.fleet_only]
    if quick:
        ops_scale = min(ops_scale, 0.25)
    cells: List[Dict[str, object]] = []
    for workload in workloads:
        mixes: List[List[FaultKind]] = []
        if per_kind:
            mixes.extend([kind] for kind in kinds)
        if len(kinds) > 1 or not per_kind:
            mixes.append(list(kinds))
        for mix in mixes:
            mix_name = "+".join(kind.value for kind in mix)
            cells.append(
                dict(
                    workload=workload,
                    kinds=list(mix),
                    seed=derive_seed(seed, workload, mix_name),
                    ops_scale=ops_scale,
                )
            )
    return cells


def _chaos_cell(kwargs: Dict[str, object]) -> ChaosRunResult:
    """Picklable worker entry point for one chaos grid cell."""
    return run_chaos_single(**kwargs)  # type: ignore[arg-type]


def chaos_cell_key(cell: Dict[str, object]) -> str:
    """Stable journal/bundle key for one chaos grid cell."""
    import hashlib
    import json

    blob = json.dumps(
        {
            "workload": cell["workload"],
            "kinds": [k.value for k in cell["kinds"]],  # type: ignore[union-attr]
            "seed": cell["seed"],
            "ops_scale": cell["ops_scale"],
        },
        sort_keys=True,
    )
    return "chaos-" + hashlib.sha256(blob.encode()).hexdigest()[:24]


def _chaos_cell_label(cell: Dict[str, object]) -> str:
    return "{}[{}]".format(
        cell["workload"],
        "+".join(k.value for k in cell["kinds"]),  # type: ignore[union-attr]
    )


def chaos_result_to_dict(run: ChaosRunResult) -> Dict[str, object]:
    """Lossless JSON form of one chaos run (journal checkpointing)."""
    from repro.experiments.common import _result_to_dict  # local: avoids cycle

    out = _chaos_run_fields(run)
    out["result"] = _result_to_dict(run.result)
    return out


def _chaos_run_fields(run: ChaosRunResult) -> Dict[str, object]:
    return {
        "workload": run.workload,
        "kinds": list(run.kinds),
        "seed": run.seed,
        "plan_signature": [list(sig) for sig in run.plan_signature],
        "fault_counts": dict(run.fault_counts),
        "trace_ops": run.trace_ops,
        "probes": run.probes,
        "conf_escapes": run.conf_escapes,
        "integ_escapes": run.integ_escapes,
        "secret_intact": run.secret_intact,
        "completed": run.completed,
        "hangs_released": run.hangs_released,
    }


def chaos_result_from_dict(data: Dict[str, object]) -> ChaosRunResult:
    """Rehydrate a journaled chaos run; inverse of :func:`chaos_result_to_dict`."""
    from repro.experiments.common import _result_from_dict  # local: avoids cycle

    return ChaosRunResult(
        workload=data["workload"],  # type: ignore[arg-type]
        kinds=tuple(data["kinds"]),  # type: ignore[arg-type]
        seed=data["seed"],  # type: ignore[arg-type]
        result=_result_from_dict(data["result"]),  # type: ignore[arg-type]
        plan_signature=tuple(
            tuple(sig) for sig in data["plan_signature"]  # type: ignore[union-attr]
        ),
        fault_counts=dict(data["fault_counts"]),  # type: ignore[arg-type]
        trace_ops=data["trace_ops"],  # type: ignore[arg-type]
        probes=data["probes"],  # type: ignore[arg-type]
        conf_escapes=data["conf_escapes"],  # type: ignore[arg-type]
        integ_escapes=data["integ_escapes"],  # type: ignore[arg-type]
        secret_intact=data["secret_intact"],  # type: ignore[arg-type]
        completed=data["completed"],  # type: ignore[arg-type]
        hangs_released=data["hangs_released"],  # type: ignore[arg-type]
    )


def _describe_chaos_task(cell) -> Optional[Dict[str, object]]:
    """Repro-bundle recipe for a chaos cell (``replay-cell`` consumes it)."""
    if not isinstance(cell, dict):
        return None
    return {
        "kind": "chaos",
        "cell": {
            "workload": cell["workload"],
            "kinds": [k.value for k in cell["kinds"]],
            "seed": cell["seed"],
            "ops_scale": cell["ops_scale"],
        },
    }


def run_chaos_campaign(
    workloads: Optional[Sequence[str]] = None,
    kinds: Optional[Sequence[FaultKind]] = None,
    seed: int = 1234,
    ops_scale: float = 1.0,
    per_kind: bool = True,
    quick: bool = False,
    config: Optional[SystemConfig] = None,
    workers: Optional[int] = 1,
    policy=None,
    journal=None,
    should_abort=None,
) -> ChaosReport:
    """Sweep fault kinds across workloads; returns the invariant report.

    The grid comes from :func:`chaos_grid`; with ``workers > 1`` the
    cells fan out across a supervised process pool (``workers=None``
    uses every core) via :func:`repro.sweep.fan_out` — a crashed or
    hung pool worker is recovered without poisoning sibling cells.
    Chaos results are never disk-cached, and per-run sub-seeding makes
    the report identical whatever the execution order: the same seed
    reproduces the same :meth:`ChaosReport.signature`.

    With a ``journal`` (:class:`repro.journal.RunJournal`) every
    finished run is checkpointed as it lands and an interrupted
    campaign resumed with the same journal re-executes only the missing
    cells — the rehydrated report is signature-identical to an
    uninterrupted one. On failures a
    :class:`~repro.errors.SweepError` is raised with the surviving
    :class:`ChaosRunResult` objects attached as ``outcomes``.

    ``should_abort`` (a cheap thread-safe callable) enables cooperative
    cancellation between cells: once true the campaign stops and raises
    :class:`~repro.errors.JobCancelled`; everything already journaled
    stays resumable.
    """
    cells = chaos_grid(
        workloads, kinds, seed=seed, ops_scale=ops_scale,
        per_kind=per_kind, quick=quick,
    )
    if config is not None:
        for cell in cells:
            cell["config"] = config
    report = ChaosReport(seed=seed)

    runs: List[Optional[ChaosRunResult]] = [None] * len(cells)
    pending: List[int] = []
    for i, cell in enumerate(cells):
        entry = journal.completed(chaos_cell_key(cell)) if journal else None
        if entry is not None and entry.get("result") is not None:
            runs[i] = chaos_result_from_dict(entry["result"])
        else:
            pending.append(i)

    def record(task_index: int, ok: bool, error, wall: float, result) -> None:
        if journal is None:
            return
        cell = cells[pending[task_index]]
        journal.record(
            chaos_cell_key(cell),
            {
                "label": _chaos_cell_label(cell),
                "ok": ok,
                "error": error,
                "wall_seconds": round(wall, 6),
                "cacheable": False,
                "result": chaos_result_to_dict(result) if ok else None,
            },
        )

    if workers is not None and workers <= 1:
        import time as _time

        from repro.errors import JobCancelled

        for task_index, i in enumerate(pending):
            if should_abort is not None and should_abort():
                raise JobCancelled("chaos campaign aborted between cells")
            start = _time.perf_counter()
            result = _chaos_cell(cells[i])
            runs[i] = result
            record(task_index, True, None, _time.perf_counter() - start, result)
        report.runs.extend(runs)  # type: ignore[arg-type]
        return report
    from repro.sweep import SweepError, fan_out  # local: avoids cycle

    def on_outcome(task_index: int, out) -> None:
        record(task_index, out.ok, out.error, out.wall_seconds, out.value)

    def dispatch():
        return fan_out(
            _chaos_cell,
            [cells[i] for i in pending],
            workers=workers,
            label_of=_chaos_cell_label,
            policy=policy,
            describe_task=_describe_chaos_task,
            on_outcome=on_outcome,
            should_abort=should_abort,
        )

    if pending:
        if journal is not None:
            with journal.signal_guard():
                outcomes, _mode = dispatch()
        else:
            outcomes, _mode = dispatch()
        for i, out in zip(pending, outcomes):
            runs[i] = out.value
        if should_abort is not None and should_abort():
            from repro.errors import JobCancelled

            raise JobCancelled("chaos campaign aborted mid-sweep")
        failures = [out.error for out in outcomes if out.error]
        if failures:
            raise SweepError(
                failures, outcomes=[run for run in runs if run is not None]
            )
    report.runs.extend(runs)  # type: ignore[arg-type]
    return report
