"""Structured event tracing for simulated systems.

Attach an :class:`EventTrace` to a :class:`~repro.sim.system.System` to
get a timestamped log of the security-relevant events — border
violations, permission downgrades, kernel launches, border crossings —
for debugging an accelerator integration or auditing an attack scenario:

    trace = EventTrace.attach(system)
    ...run...
    print(trace.render())
    trace.to_jsonl("events.jsonl")

Tracing border *crossings* (every checked request) is opt-in via
``crossings=True``: it is high volume and meant for short runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

__all__ = ["EventTrace", "TraceEvent"]


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped event."""

    time_ticks: int
    kind: str
    fields: Dict[str, Any]

    def render(self) -> str:
        details = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time_ticks:>14d}ps] {self.kind:<12s} {details}"


class _CrossingRecorder:
    """List-protocol shim so a BorderControlPort's recorder feeds the trace."""

    def __init__(self, trace: "EventTrace", accel_id: str) -> None:
        self._trace = trace
        self._accel_id = accel_id

    def append(self, item) -> None:
        ppn, write = item
        self._trace.record(
            "crossing", accel=self._accel_id, ppn=hex(ppn), write=write
        )


class EventTrace:
    """Collects events from a system's hook points."""

    def __init__(self, engine, max_events: int = 100_000) -> None:
        self._engine = engine
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.dropped = 0

    # -- collection ----------------------------------------------------------

    def record(self, kind: str, **fields: Any) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(TraceEvent(self._engine.now, kind, fields))

    @classmethod
    def attach(cls, system, crossings: bool = False, max_events: int = 100_000):
        """Wire a new trace into a System's hook points."""
        trace = cls(system.engine, max_events=max_events)
        system.kernel.sandboxes.on_violation(
            lambda record: trace.record(
                "violation",
                accel=record.accel_id,
                paddr=hex(record.paddr),
                write=record.write,
                out_of_bounds=record.out_of_bounds,
            )
        )
        if crossings and system.border_port is not None:
            system.border_port.ppn_recorder = _CrossingRecorder(
                trace, system.gpu.accel_id
            )
        return trace

    # -- queries ------------------------------------------------------------

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def between(self, start_ticks: int, end_ticks: int) -> List[TraceEvent]:
        return [e for e in self.events if start_ticks <= e.time_ticks < end_ticks]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    # -- output -------------------------------------------------------------

    def render(self, limit: Optional[int] = None) -> str:
        events = self.events if limit is None else self.events[:limit]
        lines = [e.render() for e in events]
        if self.dropped:
            lines.append(f"... {self.dropped} events dropped (max_events)")
        return "\n".join(lines)

    def to_jsonl(self, path: Union[str, "Path"]) -> int:  # noqa: F821
        """Write one JSON object per event; returns the count written."""
        with open(path, "w") as fh:
            for event in self.events:
                fh.write(
                    json.dumps(
                        {"t": event.time_ticks, "kind": event.kind, **event.fields}
                    )
                    + "\n"
                )
        return len(self.events)
