"""System configurations — paper Tables 2 and 3 as dataclasses.

:class:`SafetyMode` enumerates the five approaches to memory safety under
study (Table 2); :class:`SystemConfig` carries the simulation parameters
of Table 3 (frequencies, cache/TLB geometry, memory bandwidth, Border
Control latencies) plus the timing constants of this reproduction's
transaction-level model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.bcc import BCCConfig
from repro.errors import ConfigurationError

__all__ = [
    "GPUThreading",
    "SafetyMode",
    "SystemConfig",
    "TimingParams",
    "GIB",
    "MIB",
    "KIB",
]

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


class SafetyMode(enum.Enum):
    """The five configurations of Table 2."""

    ATS_ONLY = "ats-only-iommu"  # unsafe baseline: direct physical access
    FULL_IOMMU = "full-iommu"  # translate+check every request, no accel caches
    CAPI_LIKE = "capi-like"  # trusted TLB + trusted shared L2 only
    BC_NO_BCC = "border-control-nobcc"  # Protection Table only
    BC_BCC = "border-control-bcc"  # Protection Table + BCC

    @property
    def safe(self) -> bool:
        return self is not SafetyMode.ATS_ONLY

    @property
    def has_accel_l1_cache(self) -> bool:
        return self in (SafetyMode.ATS_ONLY, SafetyMode.BC_NO_BCC, SafetyMode.BC_BCC)

    @property
    def has_accel_l1_tlb(self) -> bool:
        return self in (SafetyMode.ATS_ONLY, SafetyMode.BC_NO_BCC, SafetyMode.BC_BCC)

    @property
    def has_l2_cache(self) -> bool:
        # Everyone except the full IOMMU keeps *an* L2; for CAPI it lives
        # on the trusted side (Table 2 marks it present).
        return self is not SafetyMode.FULL_IOMMU

    @property
    def uses_border_control(self) -> bool:
        return self in (SafetyMode.BC_NO_BCC, SafetyMode.BC_BCC)

    @property
    def has_bcc(self) -> Optional[bool]:
        """Tri-state as in Table 2: True/False for BC rows, None (N/A) else."""
        if not self.uses_border_control:
            return None
        return self is SafetyMode.BC_BCC

    @property
    def label(self) -> str:
        return {
            SafetyMode.ATS_ONLY: "ATS-only IOMMU",
            SafetyMode.FULL_IOMMU: "Full IOMMU",
            SafetyMode.CAPI_LIKE: "CAPI-like",
            SafetyMode.BC_NO_BCC: "Border Control-noBCC",
            SafetyMode.BC_BCC: "Border Control-BCC",
        }[self]


class GPUThreading(enum.Enum):
    """The two GPU configurations of §5.1 / Table 3."""

    HIGHLY = "highly-threaded"  # 8 CUs, many contexts: latency tolerant
    MODERATELY = "moderately-threaded"  # 1 CU, few contexts: latency sensitive

    @property
    def num_cus(self) -> int:
        return 8 if self is GPUThreading.HIGHLY else 1

    @property
    def wavefronts_per_cu(self) -> int:
        # Highly threaded: "many execution contexts" per CU; moderately
        # threaded: a single workgroup's worth of wavefronts (§5.1).
        return 16 if self is GPUThreading.HIGHLY else 16

    @property
    def l2_cache_bytes(self) -> int:
        return 256 * KIB if self is GPUThreading.HIGHLY else 64 * KIB

    @property
    def label(self) -> str:
        return "Highly threaded" if self is GPUThreading.HIGHLY else "Moderately threaded"


@dataclass(frozen=True)
class TimingParams:
    """Latency constants, in the GPU clock domain (cycles).

    Table 3 pins the Border Control numbers (BCC 10 cycles, Protection
    Table 100 cycles); the rest are this model's transaction-level
    choices, kept in one place for calibration.
    """

    l1_hit_cycles: float = 4.0
    l2_hit_cycles: float = 20.0
    ats_request_cycles: float = 20.0  # accel <-> IOMMU round trip on a TLB miss
    l2_tlb_hit_cycles: float = 10.0
    iommu_request_cycles: float = 16.0  # full-IOMMU per-request processing
    iommu_l2_tlb_cycles: float = 4.0
    capi_link_cycles: float = 4.0  # accel <-> trusted cache unit
    capi_ats_request_cycles: float = 2.0
    capi_tlb_cycles: float = 2.0  # CAPI's TLB is adjacent to its cache
    # The CAPI unit's cache is the accelerator's *first* cache level, so
    # its hit path is shorter than the baseline's L1-miss + L2-hit path.
    capi_l2_hit_cycles: float = 14.0
    bcc_cycles: float = 10.0  # Table 3
    protection_table_cycles: float = 100.0  # Table 3
    # Pipeline quiesce + outstanding-request drain on a permission
    # downgrade; applies to trusted and untrusted accelerators alike
    # ("these actions occur even with trusted accelerators", §5.2.4).
    downgrade_drain_cycles: float = 150.0


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build one simulated system (Table 3)."""

    safety: SafetyMode = SafetyMode.BC_BCC
    threading: GPUThreading = GPUThreading.HIGHLY
    phys_mem_bytes: int = 3 * GIB  # gives the paper's ~196 KB Protection Table
    cpu_freq_hz: float = 3e9
    gpu_freq_hz: float = 700e6
    peak_bandwidth_bytes_per_s: float = 180e9
    dram_latency_ns: float = 60.0
    gpu_l1_cache_bytes: int = 16 * KIB
    gpu_l1_assoc: int = 4
    gpu_l2_assoc: int = 8
    gpu_l1_tlb_entries: int = 64
    iommu_l2_tlb_entries: int = 512
    bcc: BCCConfig = field(default_factory=BCCConfig)  # 64 x 512 pages = 8 KB
    timing: TimingParams = field(default_factory=TimingParams)
    # §3.2.4 optimization: selectively flush only blocks from the affected
    # page on a downgrade instead of flushing the whole accelerator cache.
    selective_downgrade: bool = False
    # Recovery policy knobs. The quarantine window grows exponentially
    # per strike (1 << (strikes - 1)); the cap bounds the exponent so a
    # long-lived system cannot overflow into a de-facto permanent ban.
    quarantine_backoff_cap: int = 6
    # Violation-storm circuit breaker: at this many strikes the kernel
    # stops re-admitting the device (permanent quarantine + the attached
    # processes are killed). 0 disables the breaker.
    violation_storm_threshold: int = 0

    def __post_init__(self) -> None:
        if self.phys_mem_bytes < 64 * MIB:
            raise ConfigurationError("system needs at least 64 MiB of memory")

    @property
    def gpu_l2_cache_bytes(self) -> int:
        return self.threading.l2_cache_bytes

    @property
    def num_cus(self) -> int:
        return self.threading.num_cus

    def with_safety(self, safety: SafetyMode) -> "SystemConfig":
        return replace(self, safety=safety)

    def with_threading(self, threading: GPUThreading) -> "SystemConfig":
        return replace(self, threading=threading)

    def describe(self) -> str:
        return f"{self.safety.label} / {self.threading.label}"
