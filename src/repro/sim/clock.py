"""Clock domains.

One simulation tick is one picosecond. The paper's system (Table 3) mixes a
3 GHz CPU, a 700 MHz GPU, and a 180 GB/s memory system; picosecond ticks
keep all of them on an integer grid with negligible rounding (a 700 MHz
cycle rounds to 1429 ps, an error of 0.03%).
"""

from __future__ import annotations

__all__ = ["Clock", "TICKS_PER_SECOND"]

TICKS_PER_SECOND = 1_000_000_000_000  # 1 tick == 1 ps


class Clock:
    """A fixed-frequency clock domain with cycle<->tick conversion."""

    __slots__ = ("freq_hz", "period_ticks")

    def __init__(self, freq_hz: float) -> None:
        if freq_hz <= 0:
            raise ValueError("clock frequency must be positive")
        self.freq_hz = float(freq_hz)
        self.period_ticks = max(1, int(round(TICKS_PER_SECOND / freq_hz)))

    def cycles_to_ticks(self, cycles: float) -> int:
        """Duration of ``cycles`` clock cycles, in ticks."""
        return int(round(cycles * self.period_ticks))

    def ticks_to_cycles(self, ticks: int) -> float:
        """How many of this domain's cycles fit in ``ticks``."""
        return ticks / self.period_ticks

    def seconds_to_ticks(self, seconds: float) -> int:
        return int(round(seconds * TICKS_PER_SECOND))

    def ticks_to_seconds(self, ticks: int) -> float:
        return ticks / TICKS_PER_SECOND

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.freq_hz >= 1e9:
            return f"Clock({self.freq_hz / 1e9:g} GHz)"
        return f"Clock({self.freq_hz / 1e6:g} MHz)"
