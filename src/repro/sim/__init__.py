"""Discrete-event simulation substrate.

This package provides the simulation kernel used by every timing model in
the repository:

* :mod:`repro.sim.engine` — event queue, generator-based processes,
  waitable events, and FIFO bandwidth servers.
* :mod:`repro.sim.clock` — clock domains (ticks are integer picoseconds).
* :mod:`repro.sim.stats` — counters, rates, and histograms.
* :mod:`repro.sim.config` — system configuration dataclasses (paper Table 3)
  and the five safety configurations (paper Table 2).
* :mod:`repro.sim.system` — wires a complete simulated system.
* :mod:`repro.sim.runner` — runs a workload on a system and collects results.
"""

from repro.sim.clock import Clock, TICKS_PER_SECOND
from repro.sim.engine import BandwidthServer, Engine, Event, Process, Resource
from repro.sim.stats import StatDomain

__all__ = [
    "BandwidthServer",
    "Clock",
    "Engine",
    "Event",
    "Process",
    "Resource",
    "StatDomain",
    "TICKS_PER_SECOND",
]
