"""Discrete-event simulation kernel.

The kernel is a small, dependency-free cousin of SimPy: simulation actors
are Python generators driven by an :class:`Engine`. A generator may yield:

* a non-negative number — sleep for that many ticks;
* an :class:`Event` — suspend until the event is triggered (the event's
  value is sent back into the generator);
* a :class:`Process` — suspend until that process finishes (its return
  value is sent back).

Time is kept in integer *ticks*; :mod:`repro.sim.clock` fixes one tick to a
picosecond so that the 3 GHz CPU, 700 MHz GPU, and 180 GB/s DRAM of the
paper's Table 3 can all be expressed without floating-point drift.

Hot-path design
---------------

The queue holds typed entries ``(when, seq, kind, target, value)`` and
:meth:`Engine.run` dispatches on ``kind`` directly — resuming a process
pushes one tuple, never a closure. ``seq`` is unique per entry, so heap
comparisons stop at ``(when, seq)`` and same-tick ordering is exactly the
order entries were scheduled: the refactor from closure entries to typed
entries preserves event order bit-for-bit. :class:`Event` stores zero or
one waiter inline (the overwhelmingly common case on the memory path) and
only spills to a list for fan-in events.

Entries landing at the *current* tick (zero delays, every ``succeed``
resume, fresh process spawns) skip the heap entirely: they go to a FIFO
``_ready`` deque as bare ``(kind, target, value)`` triples. This is
order-preserving, not an approximation: an entry with ``when == now`` can
only be created while the clock sits at that tick, so every heap entry
for tick T (pushed at an earlier tick) predates — and therefore outranks,
by seq — every ready entry of tick T. :meth:`Engine.run` drains same-tick
heap entries first, then the ready deque in append order, which is
exactly global ``(when, seq)`` order.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from fractions import Fraction
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Engine",
    "Event",
    "Process",
    "BandwidthServer",
    "Resource",
    "SimulationError",
    "TIMEOUT",
    "Watchdog",
]

# Entry kinds dispatched by Engine.run(). A resume entry carries the
# Process and the value to send; a call entry carries a bare callback; a
# call-with-value entry carries a callback taking the event value.
_KIND_RESUME = 0
_KIND_CALL = 1
_KIND_CALL_VALUE = 2


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. negative delays, double triggers)."""


class _Timeout:
    """Singleton sentinel returned by :meth:`Engine.deadline` on expiry."""

    _instance: Optional["_Timeout"] = None

    def __new__(cls) -> "_Timeout":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover
        return "TIMEOUT"

    def __bool__(self) -> bool:
        return False


#: Value a :meth:`Engine.deadline` event carries when the clock wins.
TIMEOUT = _Timeout()


class Event:
    """A one-shot waitable event.

    Processes wait on an event by yielding it. When the event is triggered
    with :meth:`succeed`, every waiter is resumed with the event's value.
    Waiters may also be plain callables (registered via
    :meth:`_add_callback`); they are invoked through the queue with the
    event's value, one scheduling hop after ``succeed`` — the same hop a
    resumed process takes, so callback waiters and process waiters
    interleave identically.

    ``_waiters`` is ``None`` (no waiters), a single waiter, or a list —
    the single-waiter case is the fast path: one pointer store to
    register, zero list allocations.
    """

    __slots__ = ("_engine", "_waiters", "triggered", "value")

    def __init__(self, engine: "Engine") -> None:
        self._engine = engine
        self._waiters: Any = None
        self.triggered = False
        self.value: Any = None

    def succeed(self, value: Any = None) -> None:
        """Trigger the event, resuming all waiters at the current time."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self.value = value
        w = self._waiters
        if w is None:
            return
        self._waiters = None
        ready = self._engine._ready
        if type(w) is list:
            for waiter in w:
                if isinstance(waiter, Process):
                    ready.append((_KIND_RESUME, waiter, value))
                else:
                    ready.append((_KIND_CALL_VALUE, waiter, value))
        elif isinstance(w, Process):
            ready.append((_KIND_RESUME, w, value))
        else:
            ready.append((_KIND_CALL_VALUE, w, value))

    def _add_waiter(self, proc: "Process") -> None:
        if self.triggered:
            self._engine._schedule_resume(proc, self.value)
            return
        w = self._waiters
        if w is None:
            self._waiters = proc
        elif type(w) is list:
            w.append(proc)
        else:
            self._waiters = [w, proc]

    def _add_callback(self, fn: Callable[[Any], None]) -> None:
        """Register ``fn(value)`` to run (via the queue) once triggered."""
        if self.triggered:
            self._engine._schedule_call(fn, self.value)
            return
        w = self._waiters
        if w is None:
            self._waiters = fn
        elif type(w) is list:
            w.append(fn)
        else:
            self._waiters = [w, fn]


class Process(Event):
    """A running generator; also an event that triggers on completion.

    The generator's ``return`` value becomes the completion value, so a
    parent process can write ``result = yield child``.
    """

    __slots__ = ("_gen", "name")

    def __init__(self, engine: "Engine", gen: Generator, name: str = "") -> None:
        super().__init__(engine)
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")

    def _step(self, send_value: Any) -> None:
        # Engine.run() inlines this body in its dispatch loop; this method
        # is the out-of-loop equivalent. Keep the two in lockstep.
        try:
            target = self._gen.send(send_value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if target.__class__ is int:
            # The hot case: an integer delay. Push the resume entry
            # directly — no closure, no intermediate call.
            if target > 0:
                engine = self._engine
                heapq.heappush(
                    engine._queue,
                    (engine.now + target, next(engine._seq), _KIND_RESUME, self, None),
                )
            elif target == 0:
                self._engine._ready.append((_KIND_RESUME, self, None))
            else:
                raise SimulationError(f"negative delay {target!r} from {self.name}")
        elif isinstance(target, Event):
            target._add_waiter(self)
        elif isinstance(target, (int, float)):
            if target < 0:
                raise SimulationError(f"negative delay {target!r} from {self.name}")
            delay = int(target)
            engine = self._engine
            if delay:
                heapq.heappush(
                    engine._queue,
                    (engine.now + delay, next(engine._seq), _KIND_RESUME, self, None),
                )
            else:
                engine._ready.append((_KIND_RESUME, self, None))
        else:
            raise SimulationError(
                f"process {self.name} yielded unsupported value {target!r}"
            )


class Engine:
    """The event queue and simulated clock."""

    # No __slots__: there is one Engine per simulation, and callers (test
    # harnesses included) are allowed to hang ad-hoc attributes off it.

    def __init__(self) -> None:
        self._queue: List = []
        self._ready: "deque" = deque()
        self._seq = itertools.count()
        self.now: int = 0
        self._running = False

    # -- scheduling ------------------------------------------------------
    #
    # Invariant: an entry for the *current* tick goes to the ready deque,
    # never the heap. run() relies on this — it assumes any heap entry at
    # the current tick predates (outranks) every ready entry.

    def schedule(self, delay: int, fn: Callable[[], None]) -> None:
        """Run ``fn()`` after ``delay`` ticks."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        delay = int(delay)
        if delay:
            heapq.heappush(
                self._queue,
                (self.now + delay, next(self._seq), _KIND_CALL, fn, None),
            )
        else:
            self._ready.append((_KIND_CALL, fn, None))

    def schedule_at(self, when: int, fn: Callable[[], None]) -> None:
        """Run ``fn()`` at absolute time ``when`` (>= now)."""
        when = int(when)
        if when < self.now:
            raise SimulationError(f"cannot schedule in the past ({when} < {self.now})")
        if when > self.now:
            heapq.heappush(
                self._queue, (when, next(self._seq), _KIND_CALL, fn, None)
            )
        else:
            self._ready.append((_KIND_CALL, fn, None))

    def _schedule_resume(self, proc: Process, value: Any, delay: int = 0) -> None:
        if delay:
            heapq.heappush(
                self._queue,
                (self.now + delay, next(self._seq), _KIND_RESUME, proc, value),
            )
        else:
            self._ready.append((_KIND_RESUME, proc, value))

    def _schedule_call(self, fn: Callable[[Any], None], value: Any) -> None:
        self._ready.append((_KIND_CALL_VALUE, fn, value))

    def call_at(self, when: int, fn: Callable[[Any], None], value: Any) -> None:
        """Schedule ``fn(value)`` at absolute time ``when`` (>= now).

        This is the flattened-actor primitive the vector execution tier
        uses for per-access commit entries: unlike a generator resume it
        carries no process, so a dispatch costs one tuple and one direct
        call. Entries keep global ``(when, seq)`` order exactly like
        process resumes — a ``when == now`` entry goes to the ready deque.
        """
        when = int(when)
        if when < self.now:
            raise SimulationError(f"cannot schedule in the past ({when} < {self.now})")
        if when > self.now:
            heapq.heappush(
                self._queue, (when, next(self._seq), _KIND_CALL_VALUE, fn, value)
            )
        else:
            self._ready.append((_KIND_CALL_VALUE, fn, value))

    # -- processes -------------------------------------------------------

    def process(self, gen: Generator, name: str = "") -> Process:
        """Register a generator as a simulation process; starts at time now."""
        # Flattened Process construction (one spawn per memory op on the
        # hot path): direct slot stores instead of two __init__ frames.
        proc = Process.__new__(Process)
        proc._engine = self
        proc._waiters = None
        proc.triggered = False
        proc.value = None
        proc._gen = gen
        proc.name = name or getattr(gen, "__name__", "process")
        self._ready.append((_KIND_RESUME, proc, None))
        return proc

    def event(self) -> Event:
        """Create a fresh one-shot event bound to this engine."""
        return Event(self)

    def timeout(self, delay: int) -> Event:
        """An event that triggers ``delay`` ticks from now."""
        evt = Event(self)
        self.schedule(delay, evt.succeed)
        return evt

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that triggers once every given event has triggered."""
        events = list(events)
        done = Event(self)
        remaining = len(events)
        if remaining == 0:
            done.succeed([])
            return done
        results: List[Any] = [None] * remaining
        pending = [remaining]

        def arrive(i: int, value: Any) -> None:
            results[i] = value
            pending[0] -= 1
            if pending[0] == 0:
                done.succeed(list(results))

        for i, evt in enumerate(events):
            evt._add_callback(lambda value, _i=i: arrive(_i, value))
        return done

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event that triggers when the *first* given event triggers.

        The winner's value becomes the combined event's value; later
        triggers are ignored (one-shot semantics are preserved).
        """
        events = list(events)
        done = Event(self)
        if not events:
            done.succeed(None)
            return done

        def win(value: Any) -> None:
            if not done.triggered:
                done.succeed(value)

        for evt in events:
            evt._add_callback(win)
        return done

    def deadline(self, event: Event, timeout_ticks: int) -> Event:
        """Race ``event`` against the clock (timeout-with-cancel).

        Returns an event that triggers with ``event``'s value if it fires
        within ``timeout_ticks``, or with the :data:`TIMEOUT` sentinel
        otherwise. The inner event is *not* cancelled — a process hung on
        it stays parked (harmless), while the caller regains control.
        """
        if timeout_ticks < 0:
            raise SimulationError(f"negative deadline {timeout_ticks}")
        done = Event(self)

        def win(value: Any) -> None:
            if not done.triggered:
                done.succeed(value)

        def expire() -> None:
            if not done.triggered:
                done.succeed(TIMEOUT)

        event._add_callback(win)
        self.schedule(timeout_ticks, expire)
        return done

    def watchdog(
        self, timeout_ticks: int, on_fire: Optional[Callable[[], None]] = None
    ) -> "Watchdog":
        """Arm a watchdog: ``on_fire`` runs unless fed/disarmed in time."""
        return Watchdog(self, timeout_ticks, on_fire)

    # -- execution -------------------------------------------------------

    def run(self, until: Optional[int] = None) -> int:
        """Drain the event queue (optionally up to time ``until``).

        Returns the simulation time after the run. Events scheduled beyond
        ``until`` stay queued so the engine can be resumed.

        The dispatch order is global ``(when, seq)`` order: heap entries
        for the current tick run first (they were scheduled at earlier
        ticks, so they outrank every ready-deque entry), then the ready
        deque drains FIFO, then the clock advances to the next heap entry.
        ``Process._step`` is inlined in the loop (keep the two in
        lockstep): one entry dispatch is the innermost operation of the
        whole simulator.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        queue = self._queue
        ready = self._ready
        ready_pop = ready.popleft
        ready_append = ready.append
        pop = heapq.heappop
        push = heapq.heappush
        seqnext = self._seq.__next__
        now = self.now
        try:
            while True:
                if queue and queue[0][0] == now:
                    _, _, kind, target, value = pop(queue)
                elif ready:
                    kind, target, value = ready_pop()
                elif queue:
                    when = queue[0][0]
                    if until is not None and when > until:
                        self.now = until
                        break
                    _, _, kind, target, value = pop(queue)
                    now = self.now = when
                else:
                    if until is not None and until > now:
                        self.now = until
                    break
                if kind == _KIND_RESUME:
                    # Inlined Process._step(value).
                    try:
                        result = target._gen.send(value)
                    except StopIteration as stop:
                        target.succeed(stop.value)
                        continue
                    if result.__class__ is int:
                        if result > 0:
                            push(
                                queue,
                                (now + result, seqnext(), _KIND_RESUME, target, None),
                            )
                        elif result == 0:
                            ready_append((_KIND_RESUME, target, None))
                        else:
                            raise SimulationError(
                                f"negative delay {result!r} from {target.name}"
                            )
                    elif isinstance(result, Event):
                        result._add_waiter(target)
                    elif isinstance(result, (int, float)):
                        if result < 0:
                            raise SimulationError(
                                f"negative delay {result!r} from {target.name}"
                            )
                        delay = int(result)
                        if delay:
                            push(
                                queue,
                                (now + delay, seqnext(), _KIND_RESUME, target, None),
                            )
                        else:
                            ready_append((_KIND_RESUME, target, None))
                    else:
                        raise SimulationError(
                            f"process {target.name} yielded unsupported value {result!r}"
                        )
                elif kind == _KIND_CALL:
                    target()
                else:
                    target(value)
        finally:
            self._running = False
        return self.now

    def run_process(self, gen: Generator, name: str = "") -> Any:
        """Convenience: run a single process to completion, return its value."""
        proc = self.process(gen, name)
        self.run()
        if not proc.triggered:
            raise SimulationError(f"process {proc.name} deadlocked (queue drained)")
        return proc.value

    def reset(self) -> None:
        """Return the engine to its post-construction state.

        Drops every queued entry (parked processes are abandoned — their
        generators are simply garbage collected) and rewinds the clock and
        the sequence counter, so a subsequent run schedules with exactly
        the same ``(when, seq)`` keys a freshly built engine would.
        """
        if self._running:
            raise SimulationError("cannot reset a running engine")
        self._queue.clear()
        self._ready.clear()
        self._seq = itertools.count()
        self.now = 0

    @property
    def pending_events(self) -> int:
        return len(self._queue) + len(self._ready)

    def next_event_time(self) -> Optional[int]:
        """Time of the earliest queued entry, or ``None`` if the queue is
        empty. Used by batched trace replay as a fast-forward horizon: any
        state mutation committed strictly before this time cannot be
        observed by (or reordered against) another actor. A pending
        ready-deque entry runs at the current tick, so it pins the horizon
        to ``now``.
        """
        if self._ready:
            return self.now
        queue = self._queue
        return queue[0][0] if queue else None


class Watchdog:
    """A feedable timeout: fires ``on_fire`` unless fed or disarmed.

    Each :meth:`feed` pushes the fire time ``timeout_ticks`` past *now*;
    :meth:`disarm` cancels it for good. Stale scheduled callbacks are
    invalidated by a generation counter, so feeding is O(1) and never
    leaks queue entries beyond the last armed deadline.
    """

    __slots__ = (
        "_engine",
        "timeout_ticks",
        "_on_fire",
        "_generation",
        "_armed",
        "fired",
        "fires",
    )

    def __init__(
        self,
        engine: Engine,
        timeout_ticks: int,
        on_fire: Optional[Callable[[], None]] = None,
    ) -> None:
        if timeout_ticks <= 0:
            raise SimulationError(f"watchdog timeout must be positive, got {timeout_ticks}")
        self._engine = engine
        self.timeout_ticks = int(timeout_ticks)
        self._on_fire = on_fire
        self._generation = 0
        self._armed = True
        self.fired = False
        self.fires = 0
        self._schedule()

    def _schedule(self) -> None:
        generation = self._generation

        def maybe_fire() -> None:
            if not self._armed or generation != self._generation:
                return  # fed or disarmed since this callback was queued
            self.fired = True
            self.fires += 1
            if self._on_fire is not None:
                self._on_fire()

        self._engine.schedule(self.timeout_ticks, maybe_fire)

    def feed(self) -> None:
        """Reset the countdown (the watched activity showed progress)."""
        if not self._armed:
            return
        self._generation += 1
        self._schedule()

    def disarm(self) -> None:
        """Cancel the watchdog permanently (the watched work completed)."""
        self._armed = False
        self._generation += 1

    @property
    def armed(self) -> bool:
        return self._armed


class BandwidthServer:
    """A FIFO server modeling a fixed-rate shared channel (e.g. DRAM).

    Each request occupies the channel for ``nbytes / bytes_per_tick`` ticks;
    requests queue in arrival order, so queueing delay grows without bound
    as offered load approaches the channel's capacity. This is the mechanism
    that reproduces the paper's full-IOMMU DRAM saturation (Fig. 4a).

    The channel-free time is tracked in *exact* integer arithmetic: service
    time per byte is the rational ``ticks_per_second / bytes_per_second``
    (numerator/denominator precomputed), and ``_free_num`` accumulates in
    units of ``1 / _tick_den`` ticks. Long runs therefore cannot drift the
    way repeated float addition can, and the result is identical across
    platforms. The returned delay rounds the exact free time half-to-even,
    matching the ``int(round(float))`` the float implementation used.
    ``busy_ticks`` intentionally keeps the original float accumulation so
    :meth:`utilization` output is unchanged.
    """

    __slots__ = (
        "_engine",
        "bytes_per_tick",
        "_tick_num",
        "_tick_den",
        "_free_num",
        "bytes_served",
        "busy_ticks",
    )

    def __init__(self, engine: Engine, bytes_per_second: float, ticks_per_second: int) -> None:
        if bytes_per_second <= 0:
            raise SimulationError("bandwidth must be positive")
        self._engine = engine
        self.bytes_per_tick = bytes_per_second / float(ticks_per_second)
        ratio = Fraction(ticks_per_second) / Fraction(bytes_per_second)
        self._tick_num = ratio.numerator
        self._tick_den = ratio.denominator
        self._free_num: int = 0
        self.bytes_served: int = 0
        self.busy_ticks: float = 0.0

    @property
    def _free_at(self) -> float:
        """The channel-free time in (float) ticks, for introspection."""
        return self._free_num / self._tick_den

    def preview(self, now: int, nbytes: int) -> tuple:
        """Delay and post-request state for a request arriving at ``now``.

        Pure — commits nothing. Returns ``(delay_ticks, free_num)``;
        pass ``free_num`` to :meth:`commit` to take the reservation.
        Batched trace replay uses this split to price a request at a
        projected future time before deciding whether to fast-forward.
        """
        den = self._tick_den
        now_num = now * den
        free = self._free_num
        start = free if free > now_num else now_num
        free = start + nbytes * self._tick_num
        # Round half-to-even on the exact rational free/den, replicating
        # Python round() on the (previously float) free time.
        quot, rem = divmod(free, den)
        twice = rem * 2
        if twice > den or (twice == den and (quot & 1)):
            quot += 1
        delay = quot - now
        return (delay if delay > 0 else 0, free)

    def commit(self, free_num: int, nbytes: int) -> None:
        """Take a reservation previously priced by :meth:`preview`."""
        self._free_num = free_num
        self.bytes_served += nbytes
        self.busy_ticks += nbytes / self.bytes_per_tick

    def request(self, nbytes: int) -> int:
        """Reserve the channel for ``nbytes``; returns total delay in ticks.

        The returned delay includes both time spent queueing behind earlier
        requests and this request's own service time.
        """
        if nbytes < 0:
            raise SimulationError("negative transfer size")
        # Inlined preview + commit (this is the per-memory-instruction and
        # per-DRAM-access hot path); keep in lockstep with those methods.
        now = self._engine.now
        den = self._tick_den
        now_num = now * den
        free = self._free_num
        start = free if free > now_num else now_num
        free = start + nbytes * self._tick_num
        quot, rem = divmod(free, den)
        twice = rem * 2
        if twice > den or (twice == den and (quot & 1)):
            quot += 1
        delay = quot - now
        self._free_num = free
        self.bytes_served += nbytes
        self.busy_ticks += nbytes / self.bytes_per_tick
        return delay if delay > 0 else 0

    def utilization(self, elapsed_ticks: int) -> float:
        """Fraction of ``elapsed_ticks`` the channel spent transferring data."""
        if elapsed_ticks <= 0:
            return 0.0
        return min(1.0, self.busy_ticks / float(elapsed_ticks))

    def reset(self) -> None:
        """Forget all traffic: the channel is idle and free at time zero."""
        self._free_num = 0
        self.bytes_served = 0
        self.busy_ticks = 0.0


class Resource:
    """A counting semaphore with FIFO queueing (e.g. MSHRs, issue slots)."""

    __slots__ = ("_engine", "capacity", "_in_use", "_waiting")

    def __init__(self, engine: Engine, capacity: int) -> None:
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self._engine = engine
        self.capacity = capacity
        self._in_use = 0
        self._waiting: "deque[Event]" = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    def acquire(self) -> Event:
        """Returns an event that triggers once a slot is held."""
        evt = Event(self._engine)
        if self._in_use < self.capacity:
            self._in_use += 1
            evt.succeed()
        else:
            self._waiting.append(evt)
        return evt

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release without acquire")
        if self._waiting:
            self._waiting.popleft().succeed()
        else:
            self._in_use -= 1

    def reset(self) -> None:
        """Drop all holders and waiters (the engine queue was reset too)."""
        self._in_use = 0
        self._waiting.clear()
