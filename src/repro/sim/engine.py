"""Discrete-event simulation kernel.

The kernel is a small, dependency-free cousin of SimPy: simulation actors
are Python generators driven by an :class:`Engine`. A generator may yield:

* a non-negative number — sleep for that many ticks;
* an :class:`Event` — suspend until the event is triggered (the event's
  value is sent back into the generator);
* a :class:`Process` — suspend until that process finishes (its return
  value is sent back).

Time is kept in integer *ticks*; :mod:`repro.sim.clock` fixes one tick to a
picosecond so that the 3 GHz CPU, 700 MHz GPU, and 180 GB/s DRAM of the
paper's Table 3 can all be expressed without floating-point drift.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Engine",
    "Event",
    "Process",
    "BandwidthServer",
    "Resource",
    "SimulationError",
    "TIMEOUT",
    "Watchdog",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. negative delays, double triggers)."""


class _Timeout:
    """Singleton sentinel returned by :meth:`Engine.deadline` on expiry."""

    _instance: Optional["_Timeout"] = None

    def __new__(cls) -> "_Timeout":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover
        return "TIMEOUT"

    def __bool__(self) -> bool:
        return False


#: Value a :meth:`Engine.deadline` event carries when the clock wins.
TIMEOUT = _Timeout()


class Event:
    """A one-shot waitable event.

    Processes wait on an event by yielding it. When the event is triggered
    with :meth:`succeed`, every waiter is resumed with the event's value.
    """

    __slots__ = ("_engine", "_waiters", "triggered", "value")

    def __init__(self, engine: "Engine") -> None:
        self._engine = engine
        self._waiters: List["Process"] = []
        self.triggered = False
        self.value: Any = None

    def succeed(self, value: Any = None) -> None:
        """Trigger the event, resuming all waiters at the current time."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self._engine._schedule_resume(proc, value)

    def _add_waiter(self, proc: "Process") -> None:
        if self.triggered:
            self._engine._schedule_resume(proc, self.value)
        else:
            self._waiters.append(proc)


class Process(Event):
    """A running generator; also an event that triggers on completion.

    The generator's ``return`` value becomes the completion value, so a
    parent process can write ``result = yield child``.
    """

    __slots__ = ("_gen", "name")

    def __init__(self, engine: "Engine", gen: Generator, name: str = "") -> None:
        super().__init__(engine)
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")

    def _step(self, send_value: Any) -> None:
        engine = self._engine
        try:
            target = self._gen.send(send_value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if isinstance(target, Event):
            target._add_waiter(self)
        elif isinstance(target, (int, float)):
            if target < 0:
                raise SimulationError(f"negative delay {target!r} from {self.name}")
            engine._schedule_resume(self, None, delay=int(target))
        else:
            raise SimulationError(
                f"process {self.name} yielded unsupported value {target!r}"
            )


class Engine:
    """The event queue and simulated clock."""

    def __init__(self) -> None:
        self._queue: List = []
        self._seq = itertools.count()
        self.now: int = 0
        self._running = False

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: int, fn: Callable[[], None]) -> None:
        """Run ``fn()`` after ``delay`` ticks."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        heapq.heappush(self._queue, (self.now + int(delay), next(self._seq), fn))

    def schedule_at(self, when: int, fn: Callable[[], None]) -> None:
        """Run ``fn()`` at absolute time ``when`` (>= now)."""
        if when < self.now:
            raise SimulationError(f"cannot schedule in the past ({when} < {self.now})")
        heapq.heappush(self._queue, (int(when), next(self._seq), fn))

    def _schedule_resume(self, proc: Process, value: Any, delay: int = 0) -> None:
        self.schedule(delay, lambda: proc._step(value))

    # -- processes -------------------------------------------------------

    def process(self, gen: Generator, name: str = "") -> Process:
        """Register a generator as a simulation process; starts at time now."""
        proc = Process(self, gen, name)
        self._schedule_resume(proc, None)
        return proc

    def event(self) -> Event:
        """Create a fresh one-shot event bound to this engine."""
        return Event(self)

    def timeout(self, delay: int) -> Event:
        """An event that triggers ``delay`` ticks from now."""
        evt = Event(self)
        self.schedule(delay, evt.succeed)
        return evt

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that triggers once every given event has triggered."""
        events = list(events)
        done = Event(self)
        remaining = len(events)
        if remaining == 0:
            done.succeed([])
            return done
        results: List[Any] = [None] * remaining
        pending = [remaining]

        def waiter(i: int, evt: Event) -> Generator:
            results[i] = yield evt
            pending[0] -= 1
            if pending[0] == 0:
                done.succeed(list(results))

        for i, evt in enumerate(events):
            self.process(waiter(i, evt), name=f"all_of[{i}]")
        return done

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event that triggers when the *first* given event triggers.

        The winner's value becomes the combined event's value; later
        triggers are ignored (one-shot semantics are preserved).
        """
        events = list(events)
        done = Event(self)

        def waiter(evt: Event) -> Generator:
            value = yield evt
            if not done.triggered:
                done.succeed(value)

        if not events:
            done.succeed(None)
            return done
        for i, evt in enumerate(events):
            self.process(waiter(evt), name=f"any_of[{i}]")
        return done

    def deadline(self, event: Event, timeout_ticks: int) -> Event:
        """Race ``event`` against the clock (timeout-with-cancel).

        Returns an event that triggers with ``event``'s value if it fires
        within ``timeout_ticks``, or with the :data:`TIMEOUT` sentinel
        otherwise. The inner event is *not* cancelled — a process hung on
        it stays parked (harmless), while the caller regains control.
        """
        if timeout_ticks < 0:
            raise SimulationError(f"negative deadline {timeout_ticks}")
        done = Event(self)

        def waiter() -> Generator:
            value = yield event
            if not done.triggered:
                done.succeed(value)

        def timer() -> Generator:
            yield timeout_ticks
            if not done.triggered:
                done.succeed(TIMEOUT)

        self.process(waiter(), name="deadline-wait")
        self.process(timer(), name="deadline-timer")
        return done

    def watchdog(
        self, timeout_ticks: int, on_fire: Optional[Callable[[], None]] = None
    ) -> "Watchdog":
        """Arm a watchdog: ``on_fire`` runs unless fed/disarmed in time."""
        return Watchdog(self, timeout_ticks, on_fire)

    # -- execution -------------------------------------------------------

    def run(self, until: Optional[int] = None) -> int:
        """Drain the event queue (optionally up to time ``until``).

        Returns the simulation time after the run. Events scheduled beyond
        ``until`` stay queued so the engine can be resumed.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        try:
            while self._queue:
                when, _seq, fn = self._queue[0]
                if until is not None and when > until:
                    self.now = until
                    break
                heapq.heappop(self._queue)
                self.now = when
                fn()
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self._running = False
        return self.now

    def run_process(self, gen: Generator, name: str = "") -> Any:
        """Convenience: run a single process to completion, return its value."""
        proc = self.process(gen, name)
        self.run()
        if not proc.triggered:
            raise SimulationError(f"process {proc.name} deadlocked (queue drained)")
        return proc.value

    @property
    def pending_events(self) -> int:
        return len(self._queue)


class Watchdog:
    """A feedable timeout: fires ``on_fire`` unless fed or disarmed.

    Each :meth:`feed` pushes the fire time ``timeout_ticks`` past *now*;
    :meth:`disarm` cancels it for good. Stale scheduled callbacks are
    invalidated by a generation counter, so feeding is O(1) and never
    leaks queue entries beyond the last armed deadline.
    """

    def __init__(
        self,
        engine: Engine,
        timeout_ticks: int,
        on_fire: Optional[Callable[[], None]] = None,
    ) -> None:
        if timeout_ticks <= 0:
            raise SimulationError(f"watchdog timeout must be positive, got {timeout_ticks}")
        self._engine = engine
        self.timeout_ticks = int(timeout_ticks)
        self._on_fire = on_fire
        self._generation = 0
        self._armed = True
        self.fired = False
        self.fires = 0
        self._schedule()

    def _schedule(self) -> None:
        generation = self._generation

        def maybe_fire() -> None:
            if not self._armed or generation != self._generation:
                return  # fed or disarmed since this callback was queued
            self.fired = True
            self.fires += 1
            if self._on_fire is not None:
                self._on_fire()

        self._engine.schedule(self.timeout_ticks, maybe_fire)

    def feed(self) -> None:
        """Reset the countdown (the watched activity showed progress)."""
        if not self._armed:
            return
        self._generation += 1
        self._schedule()

    def disarm(self) -> None:
        """Cancel the watchdog permanently (the watched work completed)."""
        self._armed = False
        self._generation += 1

    @property
    def armed(self) -> bool:
        return self._armed


class BandwidthServer:
    """A FIFO server modeling a fixed-rate shared channel (e.g. DRAM).

    Each request occupies the channel for ``nbytes / bytes_per_tick`` ticks;
    requests queue in arrival order, so queueing delay grows without bound
    as offered load approaches the channel's capacity. This is the mechanism
    that reproduces the paper's full-IOMMU DRAM saturation (Fig. 4a).
    """

    def __init__(self, engine: Engine, bytes_per_second: float, ticks_per_second: int) -> None:
        if bytes_per_second <= 0:
            raise SimulationError("bandwidth must be positive")
        self._engine = engine
        self.bytes_per_tick = bytes_per_second / float(ticks_per_second)
        self._free_at: float = 0.0
        self.bytes_served: int = 0
        self.busy_ticks: float = 0.0

    def request(self, nbytes: int) -> int:
        """Reserve the channel for ``nbytes``; returns total delay in ticks.

        The returned delay includes both time spent queueing behind earlier
        requests and this request's own service time.
        """
        if nbytes < 0:
            raise SimulationError("negative transfer size")
        now = self._engine.now
        start = max(float(now), self._free_at)
        service = nbytes / self.bytes_per_tick
        self._free_at = start + service
        self.bytes_served += nbytes
        self.busy_ticks += service
        return max(0, int(round(self._free_at)) - now)

    def utilization(self, elapsed_ticks: int) -> float:
        """Fraction of ``elapsed_ticks`` the channel spent transferring data."""
        if elapsed_ticks <= 0:
            return 0.0
        return min(1.0, self.busy_ticks / float(elapsed_ticks))


class Resource:
    """A counting semaphore with FIFO queueing (e.g. MSHRs, issue slots)."""

    def __init__(self, engine: Engine, capacity: int) -> None:
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self._engine = engine
        self.capacity = capacity
        self._in_use = 0
        self._waiting: List[Event] = []

    @property
    def in_use(self) -> int:
        return self._in_use

    def acquire(self) -> Event:
        """Returns an event that triggers once a slot is held."""
        evt = Event(self._engine)
        if self._in_use < self.capacity:
            self._in_use += 1
            evt.succeed()
        else:
            self._waiting.append(evt)
        return evt

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release without acquire")
        if self._waiting:
            self._waiting.pop(0).succeed()
        else:
            self._in_use -= 1
