"""Builds a complete simulated system for one configuration.

``System`` wires the substrate exactly as Fig. 1/Fig. 2 describe for the
chosen :class:`~repro.sim.config.SafetyMode`:

* **ATS-only IOMMU** (unsafe baseline): per-CU L1 TLBs and write-through
  L1 caches, shared write-back L2, raw path to memory.
* **Full IOMMU**: no accelerator structures; every request translated and
  checked at the IOMMU.
* **CAPI-like**: trusted TLB and trusted shared L2 across a link.
* **Border Control (noBCC / BCC)**: the baseline hierarchy with a
  :class:`~repro.core.border_port.BorderControlPort` spliced between the
  accelerator L2 and the memory controller.
"""

from __future__ import annotations

from typing import List, Optional

from repro.accel.gpu import GPU, GPUGeometry, KernelTrace
from repro.accel.paths import (
    CachedHierarchyPath,
    CAPIPathAdapter,
    FullIOMMUPathAdapter,
)
from repro.core.border_control import BorderControl
from repro.core.border_port import BorderControlPort
from repro.iommu.ats import ATS, ATSConfig
from repro.iommu.capi import CAPILikePath
from repro.iommu.iommu import FullIOMMUPath
from repro.mem.cache import Cache, CacheConfig
from repro.mem.dram import DRAM, DRAMConfig
from repro.mem.phys_memory import PhysicalMemory
from repro.mem.port import MemoryController, MemoryPort
from repro.osmodel.kernel import Kernel, ViolationPolicy
from repro.osmodel.process import Process
from repro.sim.clock import Clock
from repro.sim.config import SafetyMode, SystemConfig
from repro.sim.engine import Engine
from repro.sim.stats import StatDomain
from repro.vm.tlb import TLB

__all__ = ["System"]

GPU_ID = "gpu0"


class System:
    """One fully wired CPU + GPU + memory + OS simulation instance."""

    def __init__(
        self,
        config: SystemConfig,
        violation_policy: ViolationPolicy = ViolationPolicy.KILL_PROCESS,
    ) -> None:
        self.config = config
        self.engine = Engine()
        self.cpu_clock = Clock(config.cpu_freq_hz)
        self.gpu_clock = Clock(config.gpu_freq_hz)
        self.stats = StatDomain("system")
        self.phys = PhysicalMemory(config.phys_mem_bytes)
        self.dram = DRAM(
            self.engine,
            DRAMConfig(
                peak_bandwidth_bytes_per_s=config.peak_bandwidth_bytes_per_s,
                access_latency_ns=config.dram_latency_ns,
            ),
            self.stats.child("dram"),
        )
        self.memctl = MemoryController(self.phys, self.dram)

        bcc_config = config.bcc if config.safety is SafetyMode.BC_BCC else None
        self.kernel = Kernel(
            self.phys,
            engine=self.engine,
            bcc_config=bcc_config,
            violation_policy=violation_policy,
            selective_downgrade=config.selective_downgrade,
            stats=self.stats.child("kernel"),
        )

        self.kernel.downgrade_drain_ticks = self._ticks(
            config.timing.downgrade_drain_cycles
        )
        self.kernel.quarantine_backoff_cap = config.quarantine_backoff_cap
        self.kernel.violation_storm_threshold = config.violation_storm_threshold
        self.ats = self._build_ats()
        self.kernel.register_shootdown_listener(self.ats)

        # The trusted CPU core (Table 3: 64 KB L1, 2 MB L2 @ 3 GHz); it
        # shares the DRAM channel with the accelerator.
        from repro.cpu.core import CPUCore

        self.cpu = CPUCore(
            self.engine,
            self.cpu_clock,
            self.kernel,
            self.memctl,
            stats=self.stats.child("cpu"),
        )
        self.kernel.register_shootdown_listener(self.cpu)

        self.border_control: Optional[BorderControl] = None
        self.border_port: Optional[BorderControlPort] = None
        self.capi: Optional[CAPILikePath] = None
        self.full_iommu: Optional[FullIOMMUPath] = None
        self.gpu_l1_caches: List[Cache] = []
        self.gpu_l1_tlbs: List[TLB] = []
        self.gpu_l2: Optional[Cache] = None

        path = self._build_path()
        self.gpu = GPU(
            self.engine,
            self.gpu_clock,
            GPUGeometry(
                num_cus=config.num_cus, l1_tlb_entries=config.gpu_l1_tlb_entries
            ),
            path,
            stats=self.stats.child("gpu"),
            accel_id=GPU_ID,
        )
        # Epoch fence wiring (recovery): border and ATS compare the GPU's
        # believed attach epoch against the sandbox's authoritative one.
        # Both hooks read ``self.gpu`` dynamically because the chaos
        # harness replaces the GPU object after construction.
        if self.border_port is not None:
            self.border_port.epoch_source = lambda: self.gpu.epoch
            self.ats.epoch_gate = (
                lambda accel_id: accel_id != GPU_ID
                or self.border_control is None
                or self.gpu.epoch >= self.border_control.epoch
            )
        # Baseline for warm reuse: the shootdown listeners wired during
        # construction (the ATS and the CPU core). Accelerators append
        # themselves on attach and must not survive a reset.
        self._baseline_shootdown_listeners: List[object] = list(
            self.kernel._shootdown_listeners
        )

    # -- warm reuse ---------------------------------------------------------

    def reset_for_reuse(self) -> None:
        """Return the whole system to its post-construction state, in place.

        This is the host-side analogue of the paper's amortization story:
        building a :class:`System` is expensive (allocator windows, cache
        arrays, wiring), so warm sweep workers construct once per
        configuration and reset between cells instead of re-constructing.
        Resets are wholesale — engine queue dropped, physical memory
        backing freed, frame allocator rewound, every cache/TLB/sandbox
        cleared, all counters zeroed — and are required to be
        *bit-identical* to fresh construction: ``verify_identical`` and
        the warm-equivalence tests pin exactly that.
        """
        self.engine.reset()
        self.stats.reset()
        self.phys.reset()
        self.dram.reset()
        self.kernel.reset_for_reuse(self._baseline_shootdown_listeners)
        self.ats.reset()
        self.cpu.l1.reset()
        self.cpu.l2.reset()
        self.cpu.tlb.reset()
        if self.full_iommu is not None:
            self.full_iommu.violations.clear()
            self.full_iommu._handlers = [self._report_front_end_violation]
        if self.capi is not None:
            self.capi.violations.clear()
            self.capi._handlers = [self._report_front_end_violation]
        if self.border_port is not None:
            self.border_port.reset()
        for cache in self.gpu_l1_caches:
            cache.reset()
        for tlb in self.gpu_l1_tlbs:
            tlb.reset()
        if self.gpu_l2 is not None:
            self.gpu_l2.reset()
        self.gpu.reset_for_reuse()

    # -- component builders ------------------------------------------------

    def _ticks(self, gpu_cycles: float) -> int:
        return self.gpu_clock.cycles_to_ticks(gpu_cycles)

    def _build_ats(self) -> ATS:
        timing = self.config.timing
        mode = self.config.safety
        if mode is SafetyMode.FULL_IOMMU:
            request, tlb_hit = 0.0, timing.iommu_l2_tlb_cycles
        elif mode is SafetyMode.CAPI_LIKE:
            # The CAPI-like unit's TLB sits next to the trusted cache, so
            # its hit path is as cheap as the IOMMU's internal lookup.
            request, tlb_hit = timing.capi_ats_request_cycles, timing.capi_tlb_cycles
        else:
            request, tlb_hit = timing.ats_request_cycles, timing.l2_tlb_hit_cycles
        return ATS(
            self.engine,
            self.dram,
            ATSConfig(
                l2_tlb_entries=self.config.iommu_l2_tlb_entries,
                request_latency_ticks=self._ticks(request),
                l2_tlb_latency_ticks=self._ticks(tlb_hit),
            ),
            stats=self.stats.child("ats"),
        )

    def _build_path(self):
        mode = self.config.safety
        if mode is SafetyMode.FULL_IOMMU:
            self.full_iommu = FullIOMMUPath(
                self.ats,
                self.memctl,
                processing_latency_ticks=self._ticks(
                    self.config.timing.iommu_request_cycles
                ),
                stats=self.stats.child("full_iommu"),
            )
            # IOMMU-refused requests notify the OS just like Border
            # Control violations do.
            self.full_iommu.on_violation(self._report_front_end_violation)
            return FullIOMMUPathAdapter(GPU_ID, self.full_iommu)

        if mode is SafetyMode.CAPI_LIKE:
            trusted_l2 = Cache(
                self.engine,
                CacheConfig(
                    name="capi-l2",
                    size_bytes=self.config.gpu_l2_cache_bytes,
                    associativity=self.config.gpu_l2_assoc,
                    hit_latency_ticks=self._ticks(
                        self.config.timing.capi_l2_hit_cycles
                    ),
                ),
                self.memctl,
                self.stats.child("capi_l2"),
            )
            self.gpu_l2 = trusted_l2
            self.capi = CAPILikePath(
                self.ats,
                trusted_l2,
                link_latency_ticks=self._ticks(self.config.timing.capi_link_cycles),
                stats=self.stats.child("capi"),
            )
            self.capi.on_violation(self._report_front_end_violation)
            return CAPIPathAdapter(GPU_ID, self.capi)

        # Cached hierarchy: unsafe baseline or Border Control.
        below_l2: MemoryPort = self.memctl
        if mode.uses_border_control:
            self.border_control = self.kernel.sandboxes.border_control_for(GPU_ID)
            bcc_latency = (
                self.config.timing.bcc_cycles if mode is SafetyMode.BC_BCC else 0.0
            )
            self.border_port = BorderControlPort(
                self.engine,
                self.border_control,
                self.dram,
                self.memctl,
                bcc_latency_ticks=self._ticks(bcc_latency),
                pt_latency_ticks=self._ticks(
                    self.config.timing.protection_table_cycles
                ),
                pt_fetch_bytes=128 if mode is SafetyMode.BC_BCC else 8,
                stats=self.stats.child("border_port"),
            )
            below_l2 = self.border_port

        self.gpu_l2 = Cache(
            self.engine,
            CacheConfig(
                name="gpu-l2",
                size_bytes=self.config.gpu_l2_cache_bytes,
                associativity=self.config.gpu_l2_assoc,
                hit_latency_ticks=self._ticks(self.config.timing.l2_hit_cycles),
            ),
            below_l2,
            self.stats.child("gpu_l2"),
        )
        for cu in range(self.config.num_cus):
            self.gpu_l1_caches.append(
                Cache(
                    self.engine,
                    CacheConfig(
                        name=f"gpu-l1-{cu}",
                        size_bytes=self.config.gpu_l1_cache_bytes,
                        associativity=self.config.gpu_l1_assoc,
                        hit_latency_ticks=self._ticks(
                            self.config.timing.l1_hit_cycles
                        ),
                        write_back=False,
                        write_allocate=False,
                    ),
                    self.gpu_l2,
                    self.stats.child(f"gpu_l1_{cu}"),
                )
            )
            self.gpu_l1_tlbs.append(
                TLB(
                    f"gpu-l1-tlb-{cu}",
                    self.config.gpu_l1_tlb_entries,
                    self.stats.child(f"gpu_l1_tlb_{cu}"),
                )
            )
        return CachedHierarchyPath(
            GPU_ID,
            self.ats,
            self.gpu_l1_tlbs,
            self.gpu_l1_caches,
            self.gpu_l2,
            stats=self.stats.child("gpu_path"),
        )

    def _report_front_end_violation(self, violation) -> None:
        """Adapt an IOMMU/CAPI refusal into the OS's violation flow.

        These paths block by virtual address (no physical address ever
        existed for the refused request); the record keeps the vaddr.
        """
        from repro.core.border_control import ViolationRecord
        from repro.core.permissions import Perm

        record = ViolationRecord(
            accel_id=violation.accel_id,
            paddr=violation.vaddr,  # virtual: the request never translated
            write=violation.write,
            out_of_bounds=False,
            perms_held=Perm.NONE,
        )
        self.kernel._on_violation(record)

    # -- process/GPU plumbing ------------------------------------------------

    def new_process(self, name: str) -> Process:
        return self.kernel.create_process(name)

    def attach_process(self, proc: Process) -> None:
        """Give a process the GPU (Fig. 3a under Border Control configs)."""
        sandboxed = self.config.safety.uses_border_control
        sandbox = self.kernel.attach_accelerator(proc, self.gpu, sandboxed=sandboxed)
        self.ats.register_address_space(proc.asid, proc.page_table)
        self.ats.allow(GPU_ID, proc.asid)
        if sandbox is not None:
            self.ats.attach_border_control(GPU_ID, sandbox)

    def detach_process(self, proc: Process) -> None:
        self.kernel.detach_accelerator(proc, self.gpu)
        self.ats.disallow(GPU_ID, proc.asid)

    def run_kernel(self, proc: Process, trace: KernelTrace) -> int:
        """Run one GPU kernel to completion; returns elapsed ticks."""
        return self.gpu.run_kernel(proc.asid, trace)

    # -- reporting --------------------------------------------------------------

    def border_checks(self) -> int:
        return self.border_control.checks if self.border_control else 0

    def describe(self) -> str:
        return self.config.describe()
