"""Writeback recording for stale-epoch replay attacks.

The epoch fence exists for one scenario: a misbehaving accelerator is
reset mid-kernel, and the *pre*-reset device still has traffic in flight
— queued writebacks, half-issued DMA bursts — that drains onto the
memory path after the reset. :class:`RecordingPort` sits between the
accelerator L2 and the border and keeps a bounded log of the write
traffic that crossed it; the recovery harness later replays that log at
the border **stamped with the pre-reset epoch**, modeling exactly that
drain. Every replayed access must die at the fence
(``border.stale_epoch_rejections``) without a permission lookup.

The recorder is timing-transparent: it forwards every access unchanged
and never perturbs results.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator, Optional, Tuple

from repro.mem.port import MemoryPort

__all__ = ["RecordedWrite", "ReplayBuffer", "RecordingPort"]

# (addr, size, data) of one write that crossed the recorder.
RecordedWrite = Tuple[int, int, bytes]


class ReplayBuffer:
    """A bounded log of writes, oldest-first, for later stale replay."""

    def __init__(self, capacity: int = 64) -> None:
        self.capacity = capacity
        self.writes: Deque[RecordedWrite] = deque()
        self.recorded = 0  # total observed, including evicted ones

    def record(self, addr: int, size: int, data: Optional[bytes]) -> None:
        self.recorded += 1
        self.writes.append((addr, size, bytes(data) if data else b""))
        if len(self.writes) > self.capacity:
            self.writes.popleft()

    def __len__(self) -> int:
        return len(self.writes)


class RecordingPort(MemoryPort):
    """Transparent interposer that logs write traffic into a buffer."""

    name = "recorder"

    def __init__(self, downstream: MemoryPort, buffer: ReplayBuffer) -> None:
        self.downstream = downstream
        self.buffer = buffer

    def access(
        self, addr: int, size: int, write: bool, data: Optional[bytes] = None
    ) -> Generator:
        if write:
            self.buffer.record(addr, size, data)
        return (yield from self.downstream.access(addr, size, write, data))
