"""Fault injection & resilience — chaos testing for the sandbox.

The paper's argument (§2.1, §3.2.3) is that Border Control contains
*arbitrary* accelerator misbehavior. This package makes that claim
testable under *hardware failure*, not just adversarial logic:

* :mod:`repro.faults.plan` — seeded, deterministic, serializable
  :class:`FaultPlan` / :class:`FaultSpec` descriptions of what fails,
  where, and how often;
* :mod:`repro.faults.port` — :class:`FaultyPort`, a
  :class:`~repro.mem.port.MemoryPort` interposer injecting drops, hangs,
  delays, bit flips, and duplicated writebacks at any point in the
  hierarchy;
* :mod:`repro.faults.accel` — :class:`HangingAccelerator`, a GPU that
  wedges mid-kernel and only drains again when the OS quarantines it.

The matching resilience plumbing lives with the components it hardens:
``Engine.deadline``/``Engine.watchdog`` (:mod:`repro.sim.engine`),
timeout+retry in :class:`~repro.core.border_port.BorderControlPort` and
the ATS, ``ViolationPolicy.QUARANTINE`` in :mod:`repro.osmodel.kernel`,
and the ``run_chaos_campaign`` harness in :mod:`repro.sim.runner`.
"""

from repro.faults.accel import HangingAccelerator
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec, derive_seed
from repro.faults.port import FaultyPort
from repro.faults.replay import RecordingPort, ReplayBuffer

__all__ = [
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FaultyPort",
    "HangingAccelerator",
    "RecordingPort",
    "ReplayBuffer",
    "derive_seed",
]
