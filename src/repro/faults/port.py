"""A fault-injecting :class:`~repro.mem.port.MemoryPort` interposer.

``FaultyPort`` wraps any point in a port chain — between the accelerator
L2 and the border, between the border and the memory controller, or
around a Protection Table fetch path — and perturbs the accesses flowing
through it according to a :class:`~repro.faults.plan.FaultPlan`:

* **DROP** — the response is lost; the upstream component sees ``None``
  (exactly what a border block looks like, so nothing upstream needs a
  new failure mode).
* **HANG** — the access parks on an event that nobody ever triggers.
  The simulation does *not* deadlock — a parked process holds no queue
  entries — but whoever waits on the access is stuck until a watchdog
  calls :meth:`FaultyPort.release_hangs`.
* **DELAY** — the response is stalled ``spec.param`` extra ticks.
* **BIT_FLIP** — one deterministic-random bit of returned read data is
  inverted (corruption *inside* the sandbox; never a permission escape,
  because blocked reads return no data to flip).
* **DUP_WRITEBACK** — the write is committed downstream twice, modeling
  a replayed writeback; each copy is border-checked independently.

The interposer never sees, and therefore can never leak, data the layer
below it refused to return — faults compose with the Border Control
safety argument instead of weakening it.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.faults.plan import FaultKind, FaultPlan, SiteInjector
from repro.mem.port import MemoryPort
from repro.sim.engine import Engine, Event
from repro.sim.stats import StatDomain

__all__ = ["FaultyPort"]


class FaultyPort(MemoryPort):
    """Wraps ``downstream`` and injects faults drawn from a plan site."""

    name = "faulty"

    def __init__(
        self,
        engine: Engine,
        downstream: MemoryPort,
        plan: FaultPlan,
        site: str,
        stats: Optional[StatDomain] = None,
    ) -> None:
        self._engine = engine
        self.downstream = downstream
        self.site = site
        self.injector: SiteInjector = plan.for_site(site)
        stats = stats or StatDomain(f"faulty_{site}")
        self._injected = stats.counter("injected")
        self._by_kind = {
            kind: stats.counter(f"injected_{kind.value.replace('-', '_')}")
            for kind in FaultKind
        }
        self._released = stats.counter("released_hangs")
        self._pending_hangs: List[Event] = []

    @property
    def pending_hangs(self) -> int:
        return len(self._pending_hangs)

    def release_hangs(self) -> int:
        """Watchdog path: fail every in-flight hung access (as ``None``).

        Returns how many accesses were released; they complete as dropped
        responses, which upstream already knows how to absorb.
        """
        hung, self._pending_hangs = self._pending_hangs, []
        for event in hung:
            event.succeed(None)
        self._released.inc(len(hung))
        return len(hung)

    def access(
        self, addr: int, size: int, write: bool, data: Optional[bytes] = None
    ) -> Generator:
        spec = self.injector.draw(write)
        if spec is None:
            return (yield from self.downstream.access(addr, size, write, data))
        self._injected.inc()
        self._by_kind[spec.kind].inc()

        if spec.kind is FaultKind.DROP:
            # The request (and any response) vanishes in the interconnect.
            return None

        if spec.kind is FaultKind.HANG:
            park = self._engine.event()
            self._pending_hangs.append(park)
            released = yield park
            return released  # None once a watchdog released the hang

        if spec.kind is FaultKind.DELAY:
            if spec.param:
                yield spec.param
            return (yield from self.downstream.access(addr, size, write, data))

        if spec.kind is FaultKind.DUP_WRITEBACK:
            first = yield from self.downstream.access(addr, size, True, data)
            # The replayed copy is an independent request: checked (and
            # possibly blocked) at the border on its own.
            yield from self.downstream.access(addr, size, True, data)
            return first

        if spec.kind is FaultKind.BIT_FLIP:
            result = yield from self.downstream.access(addr, size, False)
            if not result:  # blocked or empty: no data exists to corrupt
                return result
            bit = self.injector.rand_below(len(result) * 8)
            flipped = bytearray(result)
            flipped[bit // 8] ^= 1 << (bit % 8)
            return bytes(flipped)

        # ATS_FAULT and future kinds don't apply to a memory port; pass
        # the access through untouched rather than guessing a behavior.
        return (yield from self.downstream.access(addr, size, write, data))
