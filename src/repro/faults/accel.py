"""An accelerator that wedges mid-kernel — the hang the OS must survive.

:class:`HangingAccelerator` is a GPU whose request engine stops draining
its queue after a configurable number of memory operations: in-flight
wavefront operations park on an internal event that the device itself
will never trigger (a wedged DMA engine, a deadlocked on-chip arbiter —
the paper's §2.1 "design faults" class). The host-side recovery story is
what's under test:

* a watchdog notices the kernel stopped making progress;
* the OS quarantines the accelerator (``ViolationPolicy.QUARANTINE`` or
  :meth:`Kernel.quarantine_accelerator`), which disables it;
* :meth:`disable` releases the parked operations, which complete as
  failed (``None``) — so every wavefront unwinds, the kernel barrier
  triggers, and ``Engine.run`` terminates with no simulated deadlock.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.accel.gpu import GPU

__all__ = ["HangingAccelerator"]


class HangingAccelerator(GPU):
    """A GPU that stops servicing its memory queue after N operations."""

    def __init__(self, *args, hang_after_ops: int = 50, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._ops_until_hang: Optional[int] = hang_after_ops
        self._park = None
        self.hangs = 0

    @property
    def hung(self) -> bool:
        return self._park is not None and not self._park.triggered

    def _do_op(self, cu_index: int, asid: int, vaddr: int, write: bool) -> Generator:
        if self._ops_until_hang is not None:
            self._ops_until_hang -= 1
            if self._ops_until_hang < 0:
                if self._park is None or self._park.triggered:
                    self._park = self.engine.event()
                    self.hangs += 1
                yield self._park  # the queue stops draining right here
                self._blocked.inc()
                return None  # released by recovery: the op is lost
        return (yield from super()._do_op(cu_index, asid, vaddr, write))

    def release(self) -> int:
        """Un-wedge the engine (hardware reset); parked ops fail out.

        Returns the number of park events released. After a release the
        device behaves normally again — the hang does not re-arm.
        """
        self._ops_until_hang = None
        if self._park is not None and not self._park.triggered:
            self._park.succeed(None)
            return 1
        return 0

    def disable(self) -> None:
        """OS sanction (quarantine): also resets the wedged engine so
        every parked request drains and the kernel can terminate."""
        super().disable()
        self.release()

    def reset(self, epoch: int) -> None:
        """Epoch-fenced hardware reset also clears the wedge: the stuck
        DMA engine's queue is flushed, so the device does not re-hang."""
        self.release()
        super().reset(epoch)
