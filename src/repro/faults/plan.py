"""Seeded, deterministic, serializable fault plans.

A :class:`FaultPlan` is the single source of randomness for a chaos run:
it owns one private PRNG stream per injection *site* (a named point in
the hierarchy, e.g. ``"border.mem"`` for the border→DRAM hop), so the
sequence of injected faults is a pure function of ``(seed, specs, the
deterministic access order)`` — the same seed replays the identical
fault sequence, which is what lets the chaos harness assert bitwise
reproducibility of its invariant reports.

The plan also keeps a log of every injected fault (site, per-site access
index, kind); :meth:`FaultPlan.signature` exposes it for the
reproducibility checks.
"""

from __future__ import annotations

import enum
import json
import random
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["FaultKind", "FaultSpec", "FaultPlan", "SiteInjector", "derive_seed"]


class FaultKind(enum.Enum):
    """The hardware failure modes the chaos layer can inject (paper §2.1
    enumerates the bug classes these model: design bugs that lose or
    duplicate requests, manufacturing defects flipping data bits, and
    wedged engines that stop responding)."""

    DROP = "drop"  # response lost: the access fails (upstream sees None)
    HANG = "hang"  # no response, ever — until a watchdog releases it
    BIT_FLIP = "bit-flip"  # one bit of returned read data is corrupted
    DUP_WRITEBACK = "dup-writeback"  # a writeback is committed twice
    DELAY = "delay"  # the response is stalled by a fixed extra latency
    ATS_FAULT = "ats-fault"  # a translation request transiently faults
    # Recovery-campaign kinds, interpreted by the harness rather than a
    # FaultyPort (which passes unknown kinds through untouched): a rogue
    # device issuing border writes outside its sandbox, and a pre-reset
    # device replaying recorded writebacks under a stale attach epoch.
    ROGUE_WRITE = "rogue-write"
    RESET_REPLAY = "reset-replay"
    # Fleet-network kinds, interpreted by repro.fleet's FaultyTransport
    # (frames between coordinator and workers): a frame sent twice, and
    # a symmetric partition that swallows the next ``param`` frames in
    # both directions. DROP and DELAY are reused as-is at fleet sites.
    DUP_FRAME = "dup-frame"
    PARTITION = "partition"

    @property
    def fleet_only(self) -> bool:
        """True for kinds that only the fleet transport interprets —
        they never inject into a chaos simulation run."""
        return self in (FaultKind.DUP_FRAME, FaultKind.PARTITION)

    @property
    def read_only(self) -> bool:
        return self is FaultKind.BIT_FLIP

    @property
    def write_only(self) -> bool:
        return self is FaultKind.DUP_WRITEBACK


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: *at this site, with this rate, this failure*."""

    kind: FaultKind
    site: str
    rate: float  # per-eligible-access injection probability in [0, 1]
    max_count: int = 0  # 0 = unbounded
    param: int = 0  # kind-specific (DELAY: extra ticks)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind.value,
            "site": self.site,
            "rate": self.rate,
            "max_count": self.max_count,
            "param": self.param,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultSpec":
        return cls(
            kind=FaultKind(data["kind"]),
            site=str(data["site"]),
            rate=float(data["rate"]),
            max_count=int(data.get("max_count", 0)),
            param=int(data.get("param", 0)),
        )


def derive_seed(seed: int, *parts: str) -> int:
    """A stable (hash-randomization-proof) sub-seed for ``parts``."""
    value = seed & 0xFFFFFFFF
    for part in parts:
        value = zlib.crc32(part.encode("utf-8"), value)
    return value


class SiteInjector:
    """The per-site view of a plan: one PRNG, one access counter.

    Every component that can fail holds exactly one injector and calls
    :meth:`draw` once per eligible operation, in simulation order — that
    discipline is what makes the fault sequence reproducible.
    """

    def __init__(self, plan: "FaultPlan", site: str, specs: List[FaultSpec]) -> None:
        self._plan = plan
        self.site = site
        self.specs = specs
        self._rng = random.Random(derive_seed(plan.seed, site))
        self._index = 0
        self._used: Dict[int, int] = {}  # spec position -> injections so far

    def draw(self, write: Optional[bool] = None) -> Optional[FaultSpec]:
        """Decide the fault (if any) for the next access at this site."""
        index = self._index
        self._index += 1
        for pos, spec in enumerate(self.specs):
            if write is not None:
                if spec.kind.read_only and write:
                    continue
                if spec.kind.write_only and not write:
                    continue
            # Draw unconditionally so exhausting one rule's budget never
            # perturbs the random stream seen by the rules after it.
            roll = self._rng.random()
            if spec.max_count and self._used.get(pos, 0) >= spec.max_count:
                continue
            if roll < spec.rate:
                self._used[pos] = self._used.get(pos, 0) + 1
                self._plan._record(self.site, index, spec.kind)
                return spec
        return None

    def rand_below(self, bound: int) -> int:
        """A deterministic auxiliary draw (e.g. which bit to flip)."""
        return self._rng.randrange(bound)


class FaultPlan:
    """A seeded set of :class:`FaultSpec` rules plus the injection log."""

    def __init__(self, seed: int, specs: Sequence[FaultSpec]) -> None:
        self.seed = int(seed)
        self.specs = list(specs)
        self.injected: List[Tuple[str, int, str]] = []
        self._counts: Dict[str, int] = {}
        self._injectors: Dict[str, SiteInjector] = {}

    # -- injection ---------------------------------------------------------

    def for_site(self, site: str) -> SiteInjector:
        """The injector for one named point in the hierarchy."""
        injector = self._injectors.get(site)
        if injector is None:
            specs = [s for s in self.specs if s.site == site]
            injector = SiteInjector(self, site, specs)
            self._injectors[site] = injector
        return injector

    def _record(self, site: str, index: int, kind: FaultKind) -> None:
        self.injected.append((site, index, kind.value))
        self._counts[kind.value] = self._counts.get(kind.value, 0) + 1

    # -- reporting ---------------------------------------------------------

    @property
    def total_injected(self) -> int:
        return len(self.injected)

    def counts_by_kind(self) -> Dict[str, int]:
        return dict(sorted(self._counts.items()))

    def signature(self) -> Tuple[Tuple[str, int, str], ...]:
        """The exact fault sequence — equal iff two runs injected
        identical faults at identical points."""
        return tuple(self.injected)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {"seed": self.seed, "specs": [s.to_dict() for s in self.specs]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        return cls(
            seed=int(data["seed"]),
            specs=[FaultSpec.from_dict(s) for s in data["specs"]],
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, blob: str) -> "FaultPlan":
        return cls.from_dict(json.loads(blob))

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"FaultPlan(seed={self.seed}, specs={len(self.specs)}, "
            f"injected={self.total_injected})"
        )
