"""``border-control`` command-line interface.

Subcommands:

* ``report`` — regenerate every table and figure (paper vs. measured).
* ``run`` — simulate one (workload, configuration) pair and print stats.
* ``tables`` — print Tables 1-3 only (no simulation).
* ``fig4|fig5|fig6|fig7`` — regenerate a single figure.
* ``chaos`` — run a fault-injection campaign; exits nonzero on any
  confidentiality/integrity/termination invariant violation.
* ``recovery`` — run the violation-recovery campaign (epoch-fenced
  reset, kernel retry, CPU fallback, violation-storm circuit breaker);
  exits nonzero if any victim is lost, any stale-epoch traffic lands,
  or any unaffected tenant stalls.
* ``sweep`` — fan a figure grid out across a process pool, optionally
  verify bit-identity against serial execution, and write the
  ``BENCH_sweep.json`` perf snapshot.
* ``verify`` — run the lockstep verifier (abstract reference monitor vs
  the real Border Control stack): a Hypothesis stateful search plus an
  exhaustive small-model sweep; counterexamples are written as
  replayable poison-cell bundles and the exit status is nonzero.
* ``replay-cell`` — re-run a quarantined poison-cell repro bundle
  in-process (no pool, no retries) so the failure surfaces directly.
* ``serve`` — run the multi-tenant simulation job server
  (``repro.service``): sweep/chaos/recovery/verify jobs over HTTP with
  per-tenant quotas, durable crash-tolerant job state, and graceful
  drain on SIGTERM. ``--fleet-listen`` accepts fleet workers so sweep
  jobs fan out across hosts; ``--retention-hours`` garbage-collects
  terminal jobs' run journals. See ``docs/API.md``.
* ``worker`` — join a fleet (``repro.fleet``): connect to a
  coordinator started by ``sweep --fleet`` or ``serve --fleet-listen``
  and execute leased cells, journaling each into a private shard.
* ``workloads`` — list the available workload specs.

``report``, ``export``, ``fig4``-``fig7``, ``chaos``, ``recovery``, and
``sweep`` all take ``--workers N`` (``--workers 0`` = one per core).
They also take ``--run-id``/``--resume`` (journaled checkpoint/resume:
an interrupted run exits 130 with a resume hint, and ``--resume
<run-id>`` skips every journal-complete cell) and — except
``sweep``/``chaos``/``recovery`` — take ``--allow-partial`` to render
explicit gaps for failed cells instead of aborting.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.sim.config import GPUThreading, SafetyMode

__all__ = ["main"]


def _threading(name: str) -> GPUThreading:
    return GPUThreading.HIGHLY if name == "highly" else GPUThreading.MODERATELY


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument(
        "--quick", action="store_true", help="4x shorter traces (fast smoke pass)"
    )
    parser.add_argument(
        "--workloads", nargs="*", default=None, help="subset of workloads"
    )


def _add_workers(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="parallel worker processes (0 = one per core; default 1 = serial)",
    )


def _workers(args: argparse.Namespace) -> Optional[int]:
    workers = getattr(args, "workers", 1)
    return None if workers == 0 else workers


def _endpoint(parser: argparse.ArgumentParser, value: str, flag: str):
    """Parse a ``HOST:PORT`` (or bare ``PORT``) CLI value."""
    host, _, port = value.rpartition(":")
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        parser.error(f"{flag} expects HOST:PORT, got {value!r}")


def _add_journal(parser: argparse.ArgumentParser, partial: bool = True) -> None:
    parser.add_argument(
        "--run-id",
        default=None,
        metavar="RUN_ID",
        help="journal this run under RUN_ID (enables a later --resume); "
        "fails if that journal already exists",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="RUN_ID",
        help="resume a journaled run: cells the journal records as "
        "complete are rehydrated instead of re-executed",
    )
    if partial:
        parser.add_argument(
            "--allow-partial",
            action="store_true",
            help="degrade gracefully: render explicit gap markers for "
            "failed cells instead of aborting the whole run",
        )


def _open_journal(parser: argparse.ArgumentParser, args: argparse.Namespace):
    """The run journal implied by --run-id/--resume (None if neither)."""
    run_id = getattr(args, "run_id", None)
    resume = getattr(args, "resume", None)
    if run_id and resume:
        parser.error("--run-id and --resume are mutually exclusive")
    if not run_id and not resume:
        return None
    from repro.journal import RunJournal

    try:
        if resume:
            return RunJournal.open(resume, create=False)
        return RunJournal.create(run_id)
    except (FileExistsError, FileNotFoundError) as exc:
        parser.error(str(exc))


def _interrupted(journal) -> int:
    """Exit path for Ctrl-C / SIGTERM: print the resume hint, exit 130."""
    if journal is not None:
        print(
            f"\ninterrupted; completed cells are journaled — resume with "
            f"--resume {journal.run_id}",
            file=sys.stderr,
        )
    else:
        print("\ninterrupted (no journal; rerun with --run-id to make "
              "runs resumable)", file=sys.stderr)
    return 130


def _run_sweep_command(
    parser: argparse.ArgumentParser,
    args: argparse.Namespace,
    ops_scale: float,
    journal=None,
) -> int:
    """``sweep``: parallel grid fan-out + bench snapshot (+ verification)."""
    from repro import sweep

    grids = list(args.grid or ["fig4"])
    if "all" in grids:
        grids = list(sweep.GRID_NAMES)
    unknown = [g for g in grids if g not in sweep.GRID_NAMES]
    if unknown:
        parser.error(
            f"unknown grid(s) {unknown}; choose from {list(sweep.GRID_NAMES)}"
        )
    threading = None if args.gpu == "both" else _threading(args.gpu)

    cells = []
    for grid_name in grids:
        cells.extend(
            sweep.grid_cells(
                grid_name,
                threading=threading,
                workloads=args.workloads,
                seed=args.seed,
                ops_scale=ops_scale,
            )
        )
    cells = sweep.dedup_cells(cells)

    def progress(done: int, total: int, label: str, error: Optional[str]) -> None:
        status = "FAIL" if error else "ok"
        print(f"  [{done}/{total}] {label} {status}", file=sys.stderr)

    coordinator = None
    if getattr(args, "fleet", None):
        from repro.fleet import FleetCoordinator

        host, port = _endpoint(parser, args.fleet, "--fleet")
        coordinator = FleetCoordinator(
            host=host,
            port=port,
            wait_seconds=args.fleet_wait,
            min_workers=args.fleet_min_workers,
            log=lambda message: print(message, file=sys.stderr, flush=True),
        ).start()
        print(
            f"fleet coordinator on {coordinator.host}:{coordinator.port} — "
            f"join with: border-control worker --connect "
            f"{coordinator.host}:{coordinator.port}",
            file=sys.stderr,
        )

    workers = _workers(args)
    try:
        report = sweep.run_sweep(
            cells,
            workers=workers,
            progress=progress,
            journal=journal,
            fleet=coordinator,
        )
    finally:
        if coordinator is not None:
            coordinator.shutdown_fleet()
            coordinator.stop()
    if journal is not None and report.resumed_cells:
        print(
            f"resumed {report.resumed_cells} cell(s) from journal "
            f"{journal.run_id}",
            file=sys.stderr,
        )

    warm_report = None
    if args.bench_repeat:
        print("repeat pass (warm caches) ...", file=sys.stderr)
        warm_report = sweep.run_sweep(cells, workers=workers, progress=progress)

    serial_wall = None
    verified: Optional[bool] = None
    mismatches: List[str] = []
    if args.verify:
        print("verifying against serial execution ...", file=sys.stderr)
        serial_report, mismatches = sweep.verify_identical(cells, report)
        serial_wall = serial_report.wall_seconds
        verified = not mismatches

    payload = sweep.write_bench(
        args.bench_out,
        report,
        grids,
        serial_wall_seconds=serial_wall,
        verified_identical=verified,
        warm_report=warm_report,
        extra={
            "seed": args.seed,
            "quick": args.quick,
            "run_id": journal.run_id if journal is not None else None,
        },
    )
    if args.json:
        import json

        print(json.dumps(payload, indent=2))
    else:
        print(report.render())
        if warm_report is not None:
            print(
                f"warm repeat: {warm_report.wall_seconds:.2f}s wall, "
                f"{warm_report.cache_hit_rate:.0%} cache hits"
            )
        if serial_wall is not None and report.wall_seconds > 0:
            if payload["speedup"] is not None:
                print(
                    f"serial reference: {serial_wall:.2f}s, measured speedup "
                    f"{payload['speedup']:.2f}x "
                    f"({payload['speedup_per_worker']:.2f}x per worker)"
                )
            else:
                print(
                    f"serial reference: {serial_wall:.2f}s; not a parallel "
                    f"speedup measurement: {payload['parallel_invalid_reason']}"
                )
        print(f"bench snapshot -> {args.bench_out}")
    for mismatch in mismatches:
        print(f"MISMATCH {mismatch}", file=sys.stderr)
    if mismatches:
        print(
            f"serial/parallel verification FAILED ({len(mismatches)} mismatches)",
            file=sys.stderr,
        )
        return 1
    if args.min_cache_hit_rate is not None:
        gate = warm_report if warm_report is not None else report
        if gate.cache_hit_rate + 1e-9 < args.min_cache_hit_rate:
            print(
                f"cache hit rate {gate.cache_hit_rate:.2%} is below the "
                f"required {args.min_cache_hit_rate:.2%}",
                file=sys.stderr,
            )
            return 1
    return 0 if report.ok else 1


def _print_result(result) -> None:
    print(f"workload:            {result.workload}")
    print(f"configuration:       {result.safety.label} / {result.threading.label}")
    print(f"runtime:             {result.gpu_cycles:.0f} GPU cycles")
    print(f"memory ops:          {result.mem_ops}")
    print(f"L1 hit ratio:        {result.l1_hit_ratio:.3f}")
    print(f"L2 hit ratio:        {result.l2_hit_ratio:.3f}")
    print(f"border checks:       {result.border_checks}")
    print(f"checks per cycle:    {result.checks_per_cycle:.3f}")
    print(f"BCC miss ratio:      {result.bcc_miss_ratio:.5f}")
    print(f"DRAM bytes:          {result.dram_bytes}")
    print(f"DRAM utilization:    {result.dram_utilization:.3f}")
    print(f"violations:          {result.violations}")


def _serve(args: argparse.Namespace) -> int:
    """``serve``: run the asyncio job server until a signal drains it."""
    import asyncio

    from repro.journal import JournalLockedError
    from repro.service import ServiceConfig, TenantQuota, serve_until_complete

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        service_id=args.service_id,
        quota=TenantQuota(
            max_queued=args.max_queued,
            max_running=args.max_running,
            submit_rate=args.submit_rate,
            submit_burst=args.submit_burst,
        ),
        max_total_queued=args.max_total_queued,
        max_concurrent=args.max_concurrent,
        drain_grace_seconds=args.drain_grace,
        retention_hours=args.retention_hours,
        fleet_listen=args.fleet_listen,
        log=lambda message: print(message, file=sys.stderr, flush=True),
    )
    try:
        return asyncio.run(serve_until_complete(config))
    except JournalLockedError as exc:
        print(
            f"error: another replica already serves "
            f"service id {args.service_id!r}: {exc}",
            file=sys.stderr,
        )
        return 2


def _replay_cell(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> int:
    """``replay-cell``: re-run a poison bundle in-process, no safety net.

    The replay deliberately skips the supervised pool: a deterministic
    failure reproduces right here with a full traceback, which is the
    debugging artifact the quarantine existed to preserve.
    """
    import json

    from repro.supervisor import BUNDLE_SCHEMA

    try:
        with open(args.bundle) as fh:
            bundle = json.load(fh)
    except (OSError, ValueError) as exc:
        parser.error(f"cannot read bundle {args.bundle!r}: {exc}")
    if bundle.get("schema") != BUNDLE_SCHEMA:
        parser.error(
            f"{args.bundle} is not a poison-cell bundle "
            f"(schema {bundle.get('schema')!r}, expected {BUNDLE_SCHEMA!r})"
        )
    kind = bundle.get("kind")
    print(
        f"replaying {kind} cell (quarantined after {bundle.get('attempts')} "
        f"attempt(s): {bundle.get('error', '?')})",
        file=sys.stderr,
    )

    if kind == "sweep":
        from repro.sim.runner import run_single
        from repro.sweep import Cell

        cell = Cell.from_dict(bundle["cell"])
        result = run_single(
            cell.workload,
            cell.safety,
            cell.threading,
            seed=cell.seed,
            ops_scale=cell.ops_scale,
            record_border=cell.record_border,
            downgrade_interval_cycles=cell.downgrade_interval_cycles,
        )
        if args.json:
            from repro.experiments.common import _result_to_dict

            print(json.dumps(_result_to_dict(result), indent=2))
        else:
            _print_result(result)
        print("replay completed without error (failure did not reproduce)",
              file=sys.stderr)
        return 0

    if kind == "chaos":
        from repro.faults import FaultKind
        from repro.sim.runner import chaos_result_to_dict, run_chaos_single

        spec = bundle["cell"]
        run = run_chaos_single(
            spec["workload"],
            [FaultKind(k) for k in spec["kinds"]],
            seed=spec["seed"],
            ops_scale=spec["ops_scale"],
        )
        if args.json:
            print(json.dumps(chaos_result_to_dict(run), indent=2))
        else:
            print(f"workload:       {run.workload}")
            print(f"fault kinds:    {', '.join(run.kinds)}")
            print(f"seed:           {run.seed}")
            print(f"faults:         {run.result.faults_injected}")
            print(f"ok:             {run.ok}")
        print("replay completed without error (failure did not reproduce)",
              file=sys.stderr)
        return 0 if run.ok else 1

    if kind == "verify":
        from repro.verify import replay_counterexample

        outcome = replay_counterexample(bundle["cell"])
        if args.json:
            print(json.dumps(outcome, indent=2))
        else:
            cell = bundle["cell"]
            print(f"source:         {cell.get('source')}")
            print(f"ops:            {len(cell.get('ops', []))}")
            print(f"reproduced:     {outcome['reproduced']}")
            if outcome["error"]:
                print(f"at step:        {outcome['step']}")
                print(f"error:          {outcome['error']}")
        if outcome["reproduced"]:
            print("replay reproduced the lockstep violation", file=sys.stderr)
            return 1
        print("replay completed without error (failure did not reproduce)",
              file=sys.stderr)
        return 0

    if kind == "recovery":
        from repro.recovery import recovery_result_to_dict, run_recovery_single

        spec = bundle["cell"]
        run = run_recovery_single(
            spec["workload"],
            spec["scenario"],
            seed=spec["seed"],
            ops_scale=spec["ops_scale"],
        )
        if args.json:
            print(json.dumps(recovery_result_to_dict(run), indent=2))
        else:
            print(f"workload:       {run.workload}")
            print(f"scenario:       {run.scenario}")
            print(f"seed:           {run.seed}")
            print(f"outcome:        {run.outcome}")
            print(f"ok:             {run.ok}")
        print("replay completed without error (failure did not reproduce)",
              file=sys.stderr)
        return 0 if run.ok else 1

    parser.error(f"bundle kind {kind!r} is not replayable")
    return 2  # pragma: no cover


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="border-control",
        description="Border Control (MICRO 2015) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser("report", help="full paper-vs-measured report")
    _add_common(p_report)
    _add_workers(p_report)
    _add_journal(p_report)

    p_run = sub.add_parser("run", help="simulate one workload/configuration")
    p_run.add_argument("workload")
    p_run.add_argument(
        "--safety",
        choices=[m.value for m in SafetyMode],
        default=SafetyMode.BC_BCC.value,
    )
    p_run.add_argument("--gpu", choices=["highly", "moderately"], default="highly")
    p_run.add_argument("--large-pages", action="store_true",
                       help="back the footprint with 2 MB pages (§3.4.4)")
    p_run.add_argument("--json", action="store_true",
                       help="emit the result as JSON instead of text")
    _add_common(p_run)

    sub.add_parser("tables", help="print Tables 1-3")
    for fig in ("fig4", "fig5", "fig6", "fig7"):
        p = sub.add_parser(fig, help=f"regenerate {fig}")
        _add_common(p)
        _add_workers(p)
        _add_journal(p)
        if fig == "fig4":
            p.add_argument(
                "--gpu", choices=["highly", "moderately", "both"], default="both"
            )

    p_chaos = sub.add_parser(
        "chaos", help="fault-injection campaign with invariant report"
    )
    _add_common(p_chaos)
    p_chaos.add_argument(
        "--fault-types",
        nargs="*",
        default=None,
        metavar="KIND",
        help="subset of fault kinds (drop hang bit-flip dup-writeback "
        "delay ats-fault); default injects all but delay",
    )
    p_chaos.add_argument("--json", action="store_true",
                         help="emit the invariant report as JSON")
    _add_workers(p_chaos)
    _add_journal(p_chaos, partial=False)

    p_recovery = sub.add_parser(
        "recovery",
        help="violation-recovery campaign: epoch-fenced reset, retry, "
        "CPU fallback, storm circuit breaker",
    )
    _add_common(p_recovery)
    p_recovery.add_argument(
        "--scenarios",
        nargs="*",
        default=None,
        metavar="SCENARIO",
        help="subset of recovery scenarios (hang rogue-write reset-replay "
        "fallback storm); default runs all",
    )
    p_recovery.add_argument("--json", action="store_true",
                            help="emit the recovery report as JSON")
    _add_workers(p_recovery)
    _add_journal(p_recovery, partial=False)

    p_sweep = sub.add_parser(
        "sweep",
        help="parallel grid sweep with bench snapshot and serial verification",
    )
    _add_common(p_sweep)
    _add_workers(p_sweep)
    _add_journal(p_sweep, partial=False)
    p_sweep.add_argument(
        "--grid",
        nargs="*",
        default=["fig4"],
        metavar="GRID",
        help="grids to sweep: fig4 fig5 fig6 fig7 workloads all (default: fig4)",
    )
    p_sweep.add_argument(
        "--gpu", choices=["highly", "moderately", "both"], default="both",
        help="GPU configurations for grids that sweep threading",
    )
    p_sweep.add_argument(
        "--verify",
        action="store_true",
        help="re-run the grid serially (caches bypassed) and fail on any "
        "field-level mismatch with the parallel results",
    )
    p_sweep.add_argument(
        "--bench-out",
        default="BENCH_sweep.json",
        metavar="PATH",
        help="where to write the perf snapshot (default: BENCH_sweep.json)",
    )
    p_sweep.add_argument(
        "--bench-repeat",
        action="store_true",
        help="run the grid a second time against the caches the first "
        "pass populated; records cold vs warm wall times and the warm "
        "pass's cache hit rate in the bench snapshot",
    )
    p_sweep.add_argument(
        "--min-cache-hit-rate",
        type=float,
        default=None,
        metavar="RATE",
        help="exit nonzero unless the (warm, with --bench-repeat) "
        "cache hit rate reaches RATE (e.g. 1.0); CI uses this to pin "
        "incremental caching",
    )
    p_sweep.add_argument("--json", action="store_true",
                         help="print the bench payload as JSON instead of text")
    p_sweep.add_argument(
        "--fleet", default=None, metavar="HOST:PORT",
        help="listen for fleet workers on HOST:PORT (port 0 = ephemeral) "
        "and fan cells out to them; cells the fleet cannot place fall "
        "back to the local pool",
    )
    p_sweep.add_argument(
        "--fleet-wait", type=float, default=10.0, metavar="SECONDS",
        help="how long to wait for the first workers before degrading to "
        "the local pool (default 10)",
    )
    p_sweep.add_argument(
        "--fleet-min-workers", type=int, default=1, metavar="N",
        help="workers to wait for before assigning leases (default 1)",
    )

    p_worker = sub.add_parser(
        "worker",
        help="join a fleet: execute leased sweep cells for a coordinator",
    )
    p_worker.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address (printed by `sweep --fleet` or "
        "`serve --fleet-listen`)",
    )
    p_worker.add_argument(
        "--worker-id", default=None, metavar="ID",
        help="stable identity; journal shards and lease books key on it "
        "(default: <hostname>-<pid>)",
    )
    p_worker.add_argument(
        "--slots", type=int, default=0, metavar="N",
        help="cells this worker executes in parallel (0 = one per core)",
    )

    sub.add_parser("workloads", help="list workload specs")

    p_export = sub.add_parser("export", help="write CSV/JSON artifacts")
    p_export.add_argument("--out", default="results", help="output directory")
    _add_common(p_export)
    _add_workers(p_export)
    _add_journal(p_export)

    p_verify = sub.add_parser(
        "verify",
        help="lockstep verification: reference monitor vs the real stack",
    )
    p_verify.add_argument(
        "--profile",
        choices=["ci", "dev", "nightly"],
        default=None,
        help="Hypothesis settings profile (default: $HYPOTHESIS_PROFILE, "
        "else ci when $CI is set, else dev)",
    )
    p_verify.add_argument(
        "--max-examples", type=int, default=None, metavar="N",
        help="override the profile's Hypothesis example count",
    )
    p_verify.add_argument(
        "--steps", type=int, default=None, metavar="N",
        help="override the profile's stateful step count per example",
    )
    p_verify.add_argument(
        "--depth", type=int, default=3, metavar="D",
        help="small-model exhaustive sweep depth (default 3)",
    )
    p_verify.add_argument(
        "--skip-machine", action="store_true",
        help="skip the Hypothesis machine (runs without hypothesis installed)",
    )
    p_verify.add_argument(
        "--skip-smallmodel", action="store_true",
        help="skip the exhaustive small-model sweep",
    )
    p_verify.add_argument(
        "--bundle-dir", default="verify-bundles", metavar="DIR",
        help="where counterexample bundles are written (default: verify-bundles)",
    )
    p_verify.add_argument("--json", action="store_true",
                          help="emit the verification report as JSON")

    p_replay = sub.add_parser(
        "replay-cell",
        help="re-run a quarantined poison-cell repro bundle in-process",
    )
    p_replay.add_argument(
        "bundle", help="path to a poison-*.json bundle from the quarantine dir"
    )
    p_replay.add_argument("--json", action="store_true",
                          help="emit the replayed result as JSON")

    p_serve = sub.add_parser(
        "serve",
        help="run the multi-tenant simulation job server (repro.service)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=7455,
        help="listen port (0 = ephemeral; default 7455)",
    )
    p_serve.add_argument(
        "--service-id", default="default",
        help="journal namespace; restarting with the same id recovers jobs",
    )
    p_serve.add_argument(
        "--max-concurrent", type=int, default=1,
        help="jobs executing at once (each may use its own worker pool)",
    )
    p_serve.add_argument(
        "--max-queued", type=int, default=8,
        help="per-tenant queued-job quota (excess is rejected with 429)",
    )
    p_serve.add_argument(
        "--max-running", type=int, default=2,
        help="per-tenant running-job quota (fair-share enforced)",
    )
    p_serve.add_argument(
        "--submit-rate", type=float, default=5.0,
        help="sustained submissions/second per tenant (token bucket)",
    )
    p_serve.add_argument(
        "--submit-burst", type=int, default=10,
        help="token-bucket burst size per tenant",
    )
    p_serve.add_argument(
        "--max-total-queued", type=int, default=64,
        help="global queue bound across all tenants",
    )
    p_serve.add_argument(
        "--drain-grace", type=float, default=30.0,
        help="seconds running jobs get to finish after SIGTERM",
    )
    p_serve.add_argument(
        "--retention-hours", type=float, default=None, metavar="HOURS",
        help="delete terminal jobs' run journals (and fleet shards) this "
        "many hours after they finish (default: keep forever)",
    )
    p_serve.add_argument(
        "--fleet-listen", default=None, metavar="HOST:PORT",
        help="accept fleet workers here; sweep jobs then fan out across "
        "the fleet (join with: border-control worker --connect ...)",
    )

    args = parser.parse_args(argv)
    ops_scale = 0.25 if getattr(args, "quick", False) else 1.0
    journal = _open_journal(parser, args)

    try:
        return _dispatch(parser, args, ops_scale, journal)
    except KeyboardInterrupt:
        return _interrupted(journal)
    finally:
        if journal is not None:
            journal.close()


def _dispatch(
    parser: argparse.ArgumentParser,
    args: argparse.Namespace,
    ops_scale: float,
    journal,
) -> int:
    if args.command == "report":
        from repro.analysis.report import full_report

        print(
            full_report(
                quick=args.quick,
                seed=args.seed,
                workloads=args.workloads,
                workers=_workers(args),
                allow_partial=args.allow_partial,
                journal=journal,
            )
        )
        return 0

    if args.command == "run":
        from repro.sim.runner import run_single

        result = run_single(
            args.workload,
            SafetyMode(args.safety),
            _threading(args.gpu),
            seed=args.seed,
            ops_scale=ops_scale,
            large_pages=args.large_pages,
        )
        if args.json:
            import json

            from repro.experiments.common import _result_to_dict

            print(json.dumps(_result_to_dict(result), indent=2))
            return 0
        _print_result(result)
        return 0

    if args.command == "tables":
        from repro.experiments import tables

        print(tables.table1())
        print()
        print(tables.table2())
        print()
        print(tables.table3())
        return 0

    if args.command == "fig4":
        from repro.experiments import fig4

        gpus = {
            "highly": [GPUThreading.HIGHLY],
            "moderately": [GPUThreading.MODERATELY],
            "both": [GPUThreading.HIGHLY, GPUThreading.MODERATELY],
        }[args.gpu]
        for threading in gpus:
            print(
                fig4.run(
                    threading,
                    workloads=args.workloads,
                    seed=args.seed,
                    ops_scale=ops_scale,
                    workers=_workers(args),
                    allow_partial=args.allow_partial,
                    journal=journal,
                ).render()
            )
            print()
        return 0

    if args.command in ("fig5", "fig6", "fig7"):
        from repro.experiments import fig5, fig6, fig7

        driver = {"fig5": fig5, "fig6": fig6, "fig7": fig7}[args.command]
        print(
            driver.run(
                workloads=args.workloads,
                seed=args.seed,
                ops_scale=ops_scale,
                workers=_workers(args),
                allow_partial=args.allow_partial,
                journal=journal,
            ).render()
        )
        return 0

    if args.command == "chaos":
        from repro.faults import FaultKind
        from repro.sim.runner import run_chaos_campaign

        kinds = None
        if args.fault_types:
            try:
                kinds = [FaultKind(name) for name in args.fault_types]
            except ValueError as exc:
                parser.error(str(exc))
        report = run_chaos_campaign(
            workloads=args.workloads,
            kinds=kinds,
            seed=args.seed,
            ops_scale=ops_scale,
            quick=args.quick,
            workers=_workers(args),
            journal=journal,
        )
        if args.json:
            import json

            print(json.dumps(report.to_dict(), indent=2))
        else:
            print(report.render())
        return 0 if report.ok else 1

    if args.command == "recovery":
        from repro.recovery import RECOVERY_SCENARIOS, run_recovery_campaign

        scenarios = None
        if args.scenarios:
            unknown = [s for s in args.scenarios if s not in RECOVERY_SCENARIOS]
            if unknown:
                parser.error(
                    f"unknown recovery scenario(s) {unknown}; "
                    f"choose from {list(RECOVERY_SCENARIOS)}"
                )
            scenarios = args.scenarios
        report = run_recovery_campaign(
            workloads=args.workloads,
            scenarios=scenarios,
            seed=args.seed,
            ops_scale=ops_scale,
            quick=args.quick,
            workers=_workers(args),
            journal=journal,
        )
        if args.json:
            import json

            print(json.dumps(report.to_dict(), indent=2))
        else:
            print(report.render())
        return 0 if report.ok else 1

    if args.command == "sweep":
        return _run_sweep_command(parser, args, ops_scale, journal=journal)

    if args.command == "verify":
        from pathlib import Path

        from repro.verify.campaign import run_verify_campaign

        if args.skip_machine and args.skip_smallmodel:
            parser.error("--skip-machine and --skip-smallmodel leave nothing to run")
        report = run_verify_campaign(
            profile=args.profile,
            max_examples=args.max_examples,
            stateful_steps=args.steps,
            smallmodel_depth=args.depth,
            run_machine=not args.skip_machine,
            run_smallmodel=not args.skip_smallmodel,
            bundle_dir=Path(args.bundle_dir),
            log=lambda message: print(message, file=sys.stderr),
        )
        if args.json:
            import json

            print(json.dumps(report.to_dict(), indent=2))
        else:
            status = "PASSED" if report.passed else "FAILED"
            print(f"lockstep verification {status}")
            if report.machine_ran:
                print(f"  machine ({report.profile}): "
                      f"{'ok' if report.machine_passed else report.machine_error}")
            if report.smallmodel_ran:
                print(f"  smallmodel (depth {args.depth}): "
                      f"{'ok' if report.smallmodel_passed else report.smallmodel_error}")
            for bundle_path in report.bundles:
                print(f"  counterexample bundle -> {bundle_path}")
        return 0 if report.passed else 1

    if args.command == "export":
        from repro.analysis.export import export_all

        written = export_all(
            args.out,
            quick=args.quick,
            seed=args.seed,
            workloads=args.workloads,
            workers=_workers(args),
            allow_partial=args.allow_partial,
            journal=journal,
        )
        for name, path in written.items():
            print(f"{name:<8s} -> {path}")
        return 0

    if args.command == "replay-cell":
        return _replay_cell(parser, args)

    if args.command == "serve":
        return _serve(args)

    if args.command == "worker":
        from repro.fleet import FleetWorker

        host, port = _endpoint(parser, args.connect, "--connect")
        worker = FleetWorker(
            host,
            port,
            worker_id=args.worker_id,
            slots=args.slots or None,
            log=lambda message: print(message, file=sys.stderr, flush=True),
        )
        print(
            f"fleet worker {worker.worker_id} ({worker.slots} slot(s)) "
            f"connecting to {host}:{port}",
            file=sys.stderr,
        )
        return worker.run()

    if args.command == "workloads":
        from repro.workloads import WORKLOADS

        for name, spec in WORKLOADS.items():
            print(
                f"{name:<12s} {spec.description} "
                f"(footprint {spec.footprint_bytes // 2**20} MiB, "
                f"pattern {spec.pattern}, writes {spec.write_fraction:.0%})"
            )
        return 0

    parser.error(f"unknown command {args.command}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `border-control workloads | head`
        sys.exit(0)
