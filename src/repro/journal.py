"""``repro.journal`` — append-only run journals for checkpoint/resume.

A *run journal* records, one JSON line per event, what a sweep or chaos
campaign has accomplished so far. Because every entry is flushed to the
OS as it is appended, a run killed at any instant (Ctrl-C, SIGTERM, OOM)
leaves a journal describing exactly the cells that completed; rerunning
with ``--resume <run-id>`` rehydrates those outcomes from the journal
and executes only the remainder.

Format (``<cache-dir>/journals/<run-id>.jsonl``)::

    {"schema": "repro-run-journal-v1", "run_id": "...", ...}   # header
    {"key": "<cell key>", "ok": true, "result": {...}, ...}    # entries

Replay is **idempotent**: loading dedupes by ``key`` (last entry wins),
so duplicate appends — a resumed run re-recording a cell, or two
interleaved half-written campaigns — never corrupt the recovered state.
Entries whose ``ok`` is false are kept for forensics but are *not*
resumable: failed cells always re-execute.

Journals are plain files under the cache dir; deleting them is always
safe (the cost is recomputation, never correctness).

**Shards** (PR 9): a fleet worker journals the cells it completes into
a private *shard* — ``<run-id>.shard-<worker-id>.jsonl`` next to the
authoritative journal — because the coordinator (or the network between
them) can die while the worker keeps computing. :class:`JournalShard`
is the append-only writer; :meth:`RunJournal.merge_shards` folds every
shard back into the authoritative journal, last-wins by each entry's
worker-local ``seq`` (ties broken by shard name, so the merge order is
a pure function of the on-disk bytes). The merge is idempotent and
crash-tolerant: re-running it after a coordinator killed mid-merge
appends only what is still missing, and last-wins replay makes any
duplicate appends harmless.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

try:  # advisory journal locking (POSIX; a no-op where flock is missing)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.errors import JournalLockedError

__all__ = [
    "JOURNAL_SCHEMA",
    "JournalLockedError",
    "JournalShard",
    "RunJournal",
    "journal_dir",
    "list_runs",
    "list_shards",
    "new_run_id",
    "SHARD_SCHEMA",
    "shard_path",
]

JOURNAL_SCHEMA = "repro-run-journal-v1"
SHARD_SCHEMA = "repro-journal-shard-v1"


def _pid_alive(pid: int) -> bool:
    """Is ``pid`` a live process we could signal? (liveness, not identity)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # alive, owned by someone else
        return True
    except OSError:
        return False
    return True


def _parse_holder_pid(holder: str) -> Optional[int]:
    """Extract the PID from a ``pid N since ...`` lock-sidecar line."""
    parts = holder.split()
    if len(parts) >= 2 and parts[0] == "pid":
        try:
            return int(parts[1])
        except ValueError:
            return None
    return None


def journal_dir(cache_dir: Optional[Path] = None) -> Path:
    """Where journals live: ``<cache-dir>/journals``.

    The cache dir honors ``REPRO_CACHE_DIR`` exactly like the result
    cache (see :mod:`repro.experiments.common`), so sweep workers,
    tests, and resumed runs all agree on the location. The path is
    resolved to an absolute one for the same reason sweep workers are
    pinned to a resolved cache dir: a process whose working directory
    differs from the parent's must not journal somewhere else.
    """
    if cache_dir is None:
        cache_dir = Path(os.environ.get("REPRO_CACHE_DIR", ".exp_cache"))
    return Path(cache_dir).resolve() / "journals"


def new_run_id() -> str:
    """A fresh, filesystem-safe run id (time-ordered + collision salt)."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    salt = os.urandom(3).hex()
    return f"run-{stamp}-{salt}"


def list_runs(directory: Optional[Path] = None) -> Dict[str, Path]:
    """Known run ids → journal paths, newest last (shards excluded)."""
    directory = directory or journal_dir()
    if not directory.is_dir():
        return {}
    paths = sorted(
        (p for p in directory.glob("*.jsonl") if ".shard-" not in p.name),
        key=lambda p: p.stat().st_mtime,
    )
    return {p.stem: p for p in paths}


def shard_path(
    run_id: str, worker_id: str, directory: Optional[Path] = None
) -> Path:
    """Where worker ``worker_id``'s shard for ``run_id`` lives.

    Shards sit next to the authoritative journal so a coordinator
    resuming a run finds them with one glob; ``worker_id`` must be
    filesystem-safe (the fleet sanitizes ids before opening shards).
    """
    directory = directory or journal_dir()
    return Path(directory) / f"{run_id}.shard-{worker_id}.jsonl"


def list_shards(run_id: str, directory: Optional[Path] = None) -> List[Path]:
    """Every journal shard for ``run_id``, sorted by shard name.

    Name order (not mtime) so that merge tie-breaking is a pure
    function of the on-disk bytes, independent of filesystem timing.
    """
    directory = directory or journal_dir()
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob(f"{run_id}.shard-*.jsonl"))


class JournalShard:
    """A fleet worker's private append-only slice of a run journal.

    Workers cannot append to the authoritative journal — it is
    single-writer and lives on the coordinator's host — so each worker
    journals the cells it completes into its own shard and the
    coordinator folds shards back in with
    :meth:`RunJournal.merge_shards`. Entries carry a worker-local
    monotonic ``seq`` so the merge can order duplicates without
    trusting wall clocks across hosts.

    Reopening an existing shard (a worker restarted after a crash)
    resumes ``seq`` past the highest value on disk, so a restarted
    worker never reuses sequence numbers.
    """

    def __init__(self, path: Path, run_id: str, worker_id: str) -> None:
        self.path = path
        self.run_id = run_id
        self.worker_id = worker_id
        self._fh = None
        self._seq = 0
        self._lock = threading.Lock()

    @classmethod
    def open(
        cls,
        run_id: str,
        worker_id: str,
        directory: Optional[Path] = None,
    ) -> "JournalShard":
        """Open (or create) this worker's shard, resuming ``seq``."""
        directory = directory or journal_dir()
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = shard_path(run_id, worker_id, directory)
        shard = cls(path, run_id, worker_id)
        fresh = True
        if path.exists():
            with open(path) as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    fresh = False
                    try:
                        entry = json.loads(line)
                    except ValueError:
                        continue  # torn tail of a killed worker
                    seq = entry.get("seq")
                    if isinstance(seq, int) and seq >= shard._seq:
                        shard._seq = seq + 1
        shard._fh = open(path, "a")
        if fresh:
            shard._fh.write(
                json.dumps(
                    {
                        "schema": SHARD_SCHEMA,
                        "run_id": run_id,
                        "worker_id": worker_id,
                        "created": time.time(),
                    }
                )
                + "\n"
            )
            shard._fh.flush()
        return shard

    def record(self, key: str, entry: dict) -> int:
        """Append one entry (flushed immediately); returns its ``seq``."""
        with self._lock:
            assert self._fh is not None, "shard is closed"
            seq = self._seq
            self._seq += 1
            payload = {"key": key, "seq": seq, **entry}
            self._fh.write(json.dumps(payload, default=str) + "\n")
            self._fh.flush()
            return seq

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                try:
                    self._fh.flush()
                finally:
                    self._fh.close()
                    self._fh = None

    def __enter__(self) -> "JournalShard":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class RunJournal:
    """One run's append-only completion log.

    Use :meth:`create` for a new run and :meth:`open` to resume one.
    ``record`` appends and flushes a single entry; ``completed`` answers
    "has this key already succeeded?" for the resume path.
    """

    def __init__(self, path: Path, run_id: str) -> None:
        self.path = path
        self.run_id = run_id
        self._entries: Dict[str, dict] = {}
        self._fh = None
        self._lock = threading.Lock()
        self._lock_fh = None
        #: True when the ``.lock`` sidecar we acquired still recorded a
        #: dead holder PID — a stale sidecar left by a SIGKILLed writer
        #: (the flock itself died with it) that we reclaimed safely.
        self.reclaimed_stale_lock = False

    # -- lifecycle ---------------------------------------------------------

    def _acquire_writer_lock(self) -> None:
        """Become this journal's single live writer (advisory ``flock``).

        Two server replicas (or a replica plus a CLI resume) must never
        interleave appends to one journal: last-wins replay is only
        sound when appends are totally ordered by a single writer. The
        lock lives in a ``<run-id>.jsonl.lock`` sidecar and is held for
        the journal's open lifetime; the kernel releases it when the
        holder dies (even via SIGKILL), so there is no stale-lease
        recovery problem. Raises :class:`JournalLockedError` when
        another live process (or another open journal in this process)
        already holds it — the error reports the recorded holder PID
        *and* whether that PID is still alive, so an operator can tell
        a genuine second writer from a lock inherited by a stray child.

        A sidecar whose recorded holder is dead but whose flock is free
        (the normal aftermath of SIGKILL) is reclaimed silently;
        :attr:`reclaimed_stale_lock` records that it happened.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            return
        lock_path = self.path.parent / (self.path.name + ".lock")
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        lock_fh = open(lock_path, "a+")
        try:
            fcntl.flock(lock_fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            try:
                lock_fh.seek(0)
                holder = lock_fh.read(256).strip()
            except OSError:
                holder = ""
            lock_fh.close()
            holder_pid = _parse_holder_pid(holder)
            holder_alive = None if holder_pid is None else _pid_alive(holder_pid)
            raise JournalLockedError(
                self.run_id, lock_path, holder, holder_alive=holder_alive
            ) from None
        # We hold the flock. If the sidecar still names a dead PID, the
        # previous writer was killed without unwinding — the kernel
        # already released its flock, so taking over is safe; note the
        # reclaim for observability.
        try:
            lock_fh.seek(0)
            previous = lock_fh.read(256).strip()
        except OSError:
            previous = ""
        previous_pid = _parse_holder_pid(previous)
        if (
            previous_pid is not None
            and previous_pid != os.getpid()
            and not _pid_alive(previous_pid)
        ):
            self.reclaimed_stale_lock = True
        # Diagnostics for the *next* contender's error message.
        lock_fh.seek(0)
        lock_fh.truncate()
        lock_fh.write(f"pid {os.getpid()} since {time.strftime('%Y-%m-%dT%H:%M:%S')}\n")
        lock_fh.flush()
        self._lock_fh = lock_fh

    def _release_writer_lock(self) -> None:
        if self._lock_fh is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(self._lock_fh.fileno(), fcntl.LOCK_UN)
        finally:
            self._lock_fh.close()
            self._lock_fh = None

    @classmethod
    def create(
        cls, run_id: Optional[str] = None, directory: Optional[Path] = None
    ) -> "RunJournal":
        """Start a new journal (overwrites nothing; fails if it exists)."""
        run_id = run_id or new_run_id()
        directory = directory or journal_dir()
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{run_id}.jsonl"
        if path.exists():
            raise FileExistsError(
                f"journal for run {run_id!r} already exists at {path}; "
                f"use --resume {run_id} or pick another --run-id"
            )
        journal = cls(path, run_id)
        journal._acquire_writer_lock()
        journal._fh = open(path, "a")
        journal._append(
            {"schema": JOURNAL_SCHEMA, "run_id": run_id, "created": time.time()}
        )
        return journal

    @classmethod
    def open(
        cls,
        run_id: str,
        directory: Optional[Path] = None,
        create: bool = True,
    ) -> "RunJournal":
        """Load an existing journal for resuming (optionally creating it).

        Duplicate keys in the file are deduped last-wins, making journal
        replay idempotent under duplicate appends.
        """
        directory = directory or journal_dir()
        path = directory / f"{run_id}.jsonl"
        if not path.exists():
            if not create:
                known = ", ".join(list_runs(directory)) or "<none>"
                raise FileNotFoundError(
                    f"no journal for run {run_id!r} under {directory} "
                    f"(known runs: {known})"
                )
            return cls.create(run_id, directory)
        journal = cls(path, run_id)
        journal._acquire_writer_lock()
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue  # torn tail of a killed run — everything before it is good
                key = entry.get("key")
                if key is not None:
                    journal._entries[key] = entry
        journal._fh = open(path, "a")
        return journal

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                try:
                    self._fh.flush()
                finally:
                    self._fh.close()
                    self._fh = None
            self._release_writer_lock()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- recording and lookup ---------------------------------------------

    def _append(self, payload: dict) -> None:
        assert self._fh is not None, "journal is closed"
        self._fh.write(json.dumps(payload, default=str) + "\n")
        self._fh.flush()

    def record(self, key: str, entry: dict) -> None:
        """Append one entry (idempotent: the latest entry per key wins)."""
        payload = {"key": key, **entry}
        with self._lock:
            self._append(payload)
            self._entries[key] = payload

    def lookup(self, key: str) -> Optional[dict]:
        return self._entries.get(key)

    def completed(self, key: str) -> Optional[dict]:
        """The entry for ``key`` if it recorded a *successful* outcome."""
        entry = self._entries.get(key)
        if entry is not None and entry.get("ok"):
            return entry
        return None

    def completed_keys(self) -> Dict[str, dict]:
        return {k: e for k, e in self._entries.items() if e.get("ok")}

    def entries(self) -> Dict[str, dict]:
        """Every keyed entry, deduped last-wins (success *and* failure).

        The job server replays its durable job records through this —
        unlike :meth:`completed_keys` it must see failed/cancelled
        states too, not just successful ones.
        """
        return dict(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # -- shard merge --------------------------------------------------------

    def merge_from(self, paths: Sequence[Path]) -> int:
        """Fold worker journal shards into this journal; returns #appended.

        For each key the winning shard entry is the one with the
        highest ``(seq, shard name)`` — last-wins by each worker's local
        sequence, ties broken by shard name so the outcome is a pure
        function of the on-disk bytes. Torn tails (a worker killed
        mid-append) and unreadable shards are skipped, never fatal.

        Idempotent and crash-tolerant: keys this journal already
        records as successful are skipped, so re-running the merge
        after a coordinator died mid-merge appends only what is still
        missing, and last-wins replay makes any duplicates harmless.
        """
        winners: Dict[str, Tuple[Tuple[int, str], dict]] = {}
        for path in paths:
            path = Path(path)
            try:
                fh = open(path)
            except OSError:
                continue  # shard vanished (GC raced us) — nothing to merge
            with fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except ValueError:
                        continue  # torn tail of a killed worker
                    key = entry.get("key")
                    if key is None:
                        continue  # shard header
                    seq = entry.get("seq")
                    rank = (seq if isinstance(seq, int) else -1, path.name)
                    best = winners.get(key)
                    if best is None or rank >= best[0]:
                        winners[key] = (rank, {**entry, "shard": path.name})
        merged = 0
        for key in sorted(winners):
            _, entry = winners[key]
            existing = self._entries.get(key)
            if existing is not None and existing.get("ok"):
                continue  # already authoritative — idempotent re-merge
            self.record(key, {k: v for k, v in entry.items() if k != "key"})
            merged += 1
        return merged

    def merge_shards(self, remove_merged: bool = False) -> int:
        """Merge every on-disk shard of this run; returns #appended.

        With ``remove_merged`` the shards are deleted afterwards —
        safe because their entries now live in the authoritative
        journal (and deleting a journal file only ever costs
        recomputation, never correctness).
        """
        paths = list_shards(self.run_id, self.path.parent)
        merged = self.merge_from(paths)
        if remove_merged:
            for path in paths:
                try:
                    path.unlink()
                except OSError:
                    pass  # already gone, or racing a late writer append
        return merged

    # -- interrupt safety --------------------------------------------------

    @contextmanager
    def signal_guard(
        self, on_signal: Optional[Callable[[int], None]] = None
    ) -> Iterator[None]:
        """Make SIGINT/SIGTERM resumable while a campaign runs.

        Synchronous path (no running asyncio loop): converts the first
        SIGTERM into a :class:`KeyboardInterrupt` so the normal unwind
        path (pool teardown, journal close) runs, and flushes the
        journal on the way out. Entries are already flushed per-append;
        the guard exists so a TERM'd run dies through Python's exception
        machinery instead of mid-write.

        Asyncio path: when a loop is running in this thread, a bare
        ``signal.signal`` handler would raise ``KeyboardInterrupt`` at
        an arbitrary bytecode boundary — mid-request, mid-callback —
        bypassing the loop entirely (the old ``exit 130`` path). The
        guard instead installs handlers via ``loop.add_signal_handler``
        so the signal is delivered *between* loop callbacks: it flushes
        the journal, then invokes ``on_signal(signum)`` (the job
        server passes its drain initiator) or, with no callback,
        cancels the current task so the signal unwinds through
        ``CancelledError`` like a normal async cancellation.

        No-op when not called from the main thread (signal handlers can
        only be installed there).
        """
        if threading.current_thread() is not threading.main_thread():
            yield
            return

        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            loop = None

        if loop is not None:
            task = asyncio.current_task()

            def on_loop_signal(signum: int) -> None:
                with self._lock:
                    if self._fh is not None:
                        self._fh.flush()
                if on_signal is not None:
                    on_signal(signum)
                elif task is not None:
                    task.cancel(f"terminated by signal {signum}")

            installed = []
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, on_loop_signal, sig)
                    installed.append(sig)
                except (NotImplementedError, RuntimeError, ValueError, OSError):
                    pass  # pragma: no cover - non-unix event loops
            try:
                yield
            finally:
                for sig in installed:
                    try:
                        loop.remove_signal_handler(sig)
                    except (NotImplementedError, RuntimeError, ValueError):
                        pass  # pragma: no cover
                with self._lock:
                    if self._fh is not None:
                        self._fh.flush()
            return

        def on_term(signum, frame):
            if on_signal is not None:
                on_signal(signum)
                return
            raise KeyboardInterrupt(f"terminated by signal {signum}")

        previous = {}
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[sig] = signal.signal(sig, on_term)
            except (ValueError, OSError):  # pragma: no cover - exotic platforms
                pass
        try:
            yield
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
            with self._lock:
                if self._fh is not None:
                    self._fh.flush()
