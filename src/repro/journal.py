"""``repro.journal`` — append-only run journals for checkpoint/resume.

A *run journal* records, one JSON line per event, what a sweep or chaos
campaign has accomplished so far. Because every entry is flushed to the
OS as it is appended, a run killed at any instant (Ctrl-C, SIGTERM, OOM)
leaves a journal describing exactly the cells that completed; rerunning
with ``--resume <run-id>`` rehydrates those outcomes from the journal
and executes only the remainder.

Format (``<cache-dir>/journals/<run-id>.jsonl``)::

    {"schema": "repro-run-journal-v1", "run_id": "...", ...}   # header
    {"key": "<cell key>", "ok": true, "result": {...}, ...}    # entries

Replay is **idempotent**: loading dedupes by ``key`` (last entry wins),
so duplicate appends — a resumed run re-recording a cell, or two
interleaved half-written campaigns — never corrupt the recovered state.
Entries whose ``ok`` is false are kept for forensics but are *not*
resumable: failed cells always re-execute.

Journals are plain files under the cache dir; deleting them is always
safe (the cost is recomputation, never correctness).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Dict, Iterator, Optional

try:  # advisory journal locking (POSIX; a no-op where flock is missing)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.errors import JournalLockedError

__all__ = [
    "JOURNAL_SCHEMA",
    "JournalLockedError",
    "RunJournal",
    "journal_dir",
    "list_runs",
    "new_run_id",
]

JOURNAL_SCHEMA = "repro-run-journal-v1"


def journal_dir(cache_dir: Optional[Path] = None) -> Path:
    """Where journals live: ``<cache-dir>/journals``.

    The cache dir honors ``REPRO_CACHE_DIR`` exactly like the result
    cache (see :mod:`repro.experiments.common`), so sweep workers,
    tests, and resumed runs all agree on the location. The path is
    resolved to an absolute one for the same reason sweep workers are
    pinned to a resolved cache dir: a process whose working directory
    differs from the parent's must not journal somewhere else.
    """
    if cache_dir is None:
        cache_dir = Path(os.environ.get("REPRO_CACHE_DIR", ".exp_cache"))
    return Path(cache_dir).resolve() / "journals"


def new_run_id() -> str:
    """A fresh, filesystem-safe run id (time-ordered + collision salt)."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    salt = os.urandom(3).hex()
    return f"run-{stamp}-{salt}"


def list_runs(directory: Optional[Path] = None) -> Dict[str, Path]:
    """Known run ids → journal paths, newest last."""
    directory = directory or journal_dir()
    if not directory.is_dir():
        return {}
    paths = sorted(directory.glob("*.jsonl"), key=lambda p: p.stat().st_mtime)
    return {p.stem: p for p in paths}


class RunJournal:
    """One run's append-only completion log.

    Use :meth:`create` for a new run and :meth:`open` to resume one.
    ``record`` appends and flushes a single entry; ``completed`` answers
    "has this key already succeeded?" for the resume path.
    """

    def __init__(self, path: Path, run_id: str) -> None:
        self.path = path
        self.run_id = run_id
        self._entries: Dict[str, dict] = {}
        self._fh = None
        self._lock = threading.Lock()
        self._lock_fh = None

    # -- lifecycle ---------------------------------------------------------

    def _acquire_writer_lock(self) -> None:
        """Become this journal's single live writer (advisory ``flock``).

        Two server replicas (or a replica plus a CLI resume) must never
        interleave appends to one journal: last-wins replay is only
        sound when appends are totally ordered by a single writer. The
        lock lives in a ``<run-id>.jsonl.lock`` sidecar and is held for
        the journal's open lifetime; the kernel releases it when the
        holder dies (even via SIGKILL), so there is no stale-lease
        recovery problem. Raises :class:`JournalLockedError` when
        another live process (or another open journal in this process)
        already holds it.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            return
        lock_path = self.path.parent / (self.path.name + ".lock")
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        lock_fh = open(lock_path, "a+")
        try:
            fcntl.flock(lock_fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            try:
                lock_fh.seek(0)
                holder = lock_fh.read(256).strip()
            except OSError:
                holder = ""
            lock_fh.close()
            raise JournalLockedError(self.run_id, lock_path, holder) from None
        # Diagnostics for the *next* contender's error message.
        lock_fh.seek(0)
        lock_fh.truncate()
        lock_fh.write(f"pid {os.getpid()} since {time.strftime('%Y-%m-%dT%H:%M:%S')}\n")
        lock_fh.flush()
        self._lock_fh = lock_fh

    def _release_writer_lock(self) -> None:
        if self._lock_fh is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(self._lock_fh.fileno(), fcntl.LOCK_UN)
        finally:
            self._lock_fh.close()
            self._lock_fh = None

    @classmethod
    def create(
        cls, run_id: Optional[str] = None, directory: Optional[Path] = None
    ) -> "RunJournal":
        """Start a new journal (overwrites nothing; fails if it exists)."""
        run_id = run_id or new_run_id()
        directory = directory or journal_dir()
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{run_id}.jsonl"
        if path.exists():
            raise FileExistsError(
                f"journal for run {run_id!r} already exists at {path}; "
                f"use --resume {run_id} or pick another --run-id"
            )
        journal = cls(path, run_id)
        journal._acquire_writer_lock()
        journal._fh = open(path, "a")
        journal._append(
            {"schema": JOURNAL_SCHEMA, "run_id": run_id, "created": time.time()}
        )
        return journal

    @classmethod
    def open(
        cls,
        run_id: str,
        directory: Optional[Path] = None,
        create: bool = True,
    ) -> "RunJournal":
        """Load an existing journal for resuming (optionally creating it).

        Duplicate keys in the file are deduped last-wins, making journal
        replay idempotent under duplicate appends.
        """
        directory = directory or journal_dir()
        path = directory / f"{run_id}.jsonl"
        if not path.exists():
            if not create:
                known = ", ".join(list_runs(directory)) or "<none>"
                raise FileNotFoundError(
                    f"no journal for run {run_id!r} under {directory} "
                    f"(known runs: {known})"
                )
            return cls.create(run_id, directory)
        journal = cls(path, run_id)
        journal._acquire_writer_lock()
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue  # torn tail of a killed run — everything before it is good
                key = entry.get("key")
                if key is not None:
                    journal._entries[key] = entry
        journal._fh = open(path, "a")
        return journal

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                try:
                    self._fh.flush()
                finally:
                    self._fh.close()
                    self._fh = None
            self._release_writer_lock()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- recording and lookup ---------------------------------------------

    def _append(self, payload: dict) -> None:
        assert self._fh is not None, "journal is closed"
        self._fh.write(json.dumps(payload, default=str) + "\n")
        self._fh.flush()

    def record(self, key: str, entry: dict) -> None:
        """Append one entry (idempotent: the latest entry per key wins)."""
        payload = {"key": key, **entry}
        with self._lock:
            self._append(payload)
            self._entries[key] = payload

    def lookup(self, key: str) -> Optional[dict]:
        return self._entries.get(key)

    def completed(self, key: str) -> Optional[dict]:
        """The entry for ``key`` if it recorded a *successful* outcome."""
        entry = self._entries.get(key)
        if entry is not None and entry.get("ok"):
            return entry
        return None

    def completed_keys(self) -> Dict[str, dict]:
        return {k: e for k, e in self._entries.items() if e.get("ok")}

    def entries(self) -> Dict[str, dict]:
        """Every keyed entry, deduped last-wins (success *and* failure).

        The job server replays its durable job records through this —
        unlike :meth:`completed_keys` it must see failed/cancelled
        states too, not just successful ones.
        """
        return dict(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # -- interrupt safety --------------------------------------------------

    @contextmanager
    def signal_guard(
        self, on_signal: Optional[Callable[[int], None]] = None
    ) -> Iterator[None]:
        """Make SIGINT/SIGTERM resumable while a campaign runs.

        Synchronous path (no running asyncio loop): converts the first
        SIGTERM into a :class:`KeyboardInterrupt` so the normal unwind
        path (pool teardown, journal close) runs, and flushes the
        journal on the way out. Entries are already flushed per-append;
        the guard exists so a TERM'd run dies through Python's exception
        machinery instead of mid-write.

        Asyncio path: when a loop is running in this thread, a bare
        ``signal.signal`` handler would raise ``KeyboardInterrupt`` at
        an arbitrary bytecode boundary — mid-request, mid-callback —
        bypassing the loop entirely (the old ``exit 130`` path). The
        guard instead installs handlers via ``loop.add_signal_handler``
        so the signal is delivered *between* loop callbacks: it flushes
        the journal, then invokes ``on_signal(signum)`` (the job
        server passes its drain initiator) or, with no callback,
        cancels the current task so the signal unwinds through
        ``CancelledError`` like a normal async cancellation.

        No-op when not called from the main thread (signal handlers can
        only be installed there).
        """
        if threading.current_thread() is not threading.main_thread():
            yield
            return

        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            loop = None

        if loop is not None:
            task = asyncio.current_task()

            def on_loop_signal(signum: int) -> None:
                with self._lock:
                    if self._fh is not None:
                        self._fh.flush()
                if on_signal is not None:
                    on_signal(signum)
                elif task is not None:
                    task.cancel(f"terminated by signal {signum}")

            installed = []
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, on_loop_signal, sig)
                    installed.append(sig)
                except (NotImplementedError, RuntimeError, ValueError, OSError):
                    pass  # pragma: no cover - non-unix event loops
            try:
                yield
            finally:
                for sig in installed:
                    try:
                        loop.remove_signal_handler(sig)
                    except (NotImplementedError, RuntimeError, ValueError):
                        pass  # pragma: no cover
                with self._lock:
                    if self._fh is not None:
                        self._fh.flush()
            return

        def on_term(signum, frame):
            if on_signal is not None:
                on_signal(signum)
                return
            raise KeyboardInterrupt(f"terminated by signal {signum}")

        previous = {}
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[sig] = signal.signal(sig, on_term)
            except (ValueError, OSError):  # pragma: no cover - exotic platforms
                pass
        try:
            yield
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
            with self._lock:
                if self._fh is not None:
                    self._fh.flush()
