"""Border Control: Sandboxing Accelerators — a full-system reproduction.

This library reimplements the system of Olson, Power, Hill & Wood,
*Border Control: Sandboxing Accelerators* (MICRO-48, 2015): a hardware
sandboxing mechanism that guarantees untrusted accelerators respect the
OS's page-table permissions, implemented as a per-accelerator Protection
Table in physical memory plus a small Border Control Cache.

Quick start::

    from repro import SafetyMode, GPUThreading, run_single

    baseline = run_single("bfs", SafetyMode.ATS_ONLY)
    protected = run_single("bfs", SafetyMode.BC_BCC)
    print(protected.ticks / baseline.ticks - 1.0)  # ~1% overhead

Layers (see DESIGN.md for the full inventory):

* :mod:`repro.core` — the paper's contribution: Protection Table, BCC,
  Border Control engine, sandbox lifecycle.
* :mod:`repro.mem`, :mod:`repro.vm`, :mod:`repro.osmodel`,
  :mod:`repro.iommu`, :mod:`repro.accel` — the simulated substrate:
  memory hierarchy, virtual memory, OS kernel, IOMMU/ATS, GPU.
* :mod:`repro.sim` — discrete-event kernel, configurations, runner.
* :mod:`repro.workloads` — Rodinia-proxy trace generators.
* :mod:`repro.experiments`, :mod:`repro.analysis` — the paper's tables
  and figures, regenerated.
"""

from repro.core import (
    AccessDecision,
    BCCConfig,
    BorderControl,
    BorderControlCache,
    Perm,
    ProtectionTable,
    SandboxManager,
    ViolationRecord,
)
from repro.errors import (
    AcceleratorDisabledError,
    AcceleratorHangError,
    BorderControlViolation,
    BorderTimeoutError,
    ConfigurationError,
    PageFault,
    ProtectionFault,
    ReproError,
    SimulationIncompleteError,
    SweepError,
    TransientCellError,
    UnmappedAddressError,
)
from repro.faults import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    FaultyPort,
    HangingAccelerator,
    RecordingPort,
    ReplayBuffer,
)
from repro.recovery import (
    RecoveryManager,
    RecoveryPolicy,
    RecoveryReport,
    RecoveryRunResult,
    run_recovery_campaign,
    run_recovery_single,
)
from repro.sim.config import GPUThreading, SafetyMode, SystemConfig, TimingParams
from repro.sim.runner import (
    ChaosReport,
    ChaosRunResult,
    RunResult,
    geometric_mean,
    run_chaos_campaign,
    run_chaos_single,
    run_single,
    runtime_overhead,
)
from repro.sim.system import System
from repro.journal import RunJournal, journal_dir, list_runs, new_run_id
from repro.osmodel import Kernel, Process, ViolationPolicy
from repro.supervisor import SupervisorPolicy, SupervisorStats, supervised_map
from repro.sweep import Cell, SweepReport, run_sweep, verify_identical
from repro.workloads import WORKLOADS, WorkloadSpec, generate_trace

__version__ = "1.0.0"

__all__ = [
    "AcceleratorDisabledError",
    "AcceleratorHangError",
    "AccessDecision",
    "BCCConfig",
    "BorderControl",
    "BorderControlCache",
    "BorderControlViolation",
    "BorderTimeoutError",
    "Cell",
    "ChaosReport",
    "ChaosRunResult",
    "ConfigurationError",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FaultyPort",
    "GPUThreading",
    "HangingAccelerator",
    "Kernel",
    "PageFault",
    "Perm",
    "Process",
    "ProtectionFault",
    "ProtectionTable",
    "RecordingPort",
    "RecoveryManager",
    "RecoveryPolicy",
    "RecoveryReport",
    "RecoveryRunResult",
    "ReplayBuffer",
    "ReproError",
    "RunJournal",
    "RunResult",
    "SafetyMode",
    "SandboxManager",
    "SimulationIncompleteError",
    "SupervisorPolicy",
    "SupervisorStats",
    "SweepError",
    "SweepReport",
    "System",
    "SystemConfig",
    "TimingParams",
    "TransientCellError",
    "UnmappedAddressError",
    "ViolationPolicy",
    "ViolationRecord",
    "WORKLOADS",
    "WorkloadSpec",
    "generate_trace",
    "geometric_mean",
    "journal_dir",
    "list_runs",
    "new_run_id",
    "run_chaos_campaign",
    "run_chaos_single",
    "run_recovery_campaign",
    "run_recovery_single",
    "run_single",
    "run_sweep",
    "runtime_overhead",
    "supervised_map",
    "verify_identical",
    "__version__",
]
