"""``repro.sweep`` — parallel fan-out of deterministic simulation cells.

Every paper figure and chaos campaign is a grid of independent
(workload × safety × threading × seed) *cells*, and each cell is a pure
function of its parameters. This module runs such grids across cores:

* :class:`Cell` — one declarative simulation point. The figure drivers
  (:mod:`repro.experiments.fig4` … ``fig7``, ``workload_table``) each
  expose a ``grid(...)`` returning their cells; their ``run(...)``
  entry points stay serial consumers of the shared result cache.
* :func:`run_sweep` — dispatch cells to a supervised process pool
  (:mod:`repro.supervisor`), collect per-cell wall times / failures /
  cache hits, and adopt results into the parent's caches. Results are
  **bit-identical** to serial execution: workers run the same
  deterministic ``run_single`` and ship the ``RunResult`` back whole.
  One crashed or wedged worker no longer poisons sibling cells: the
  supervisor rebuilds the pool, resubmits only the affected cells, and
  retries transient failures with bounded backoff. Workers are *warm*:
  the grid is pickled once into the pool initializer (tasks are bare
  indexes), each worker is pinned to the parent's resolved cache dir,
  and a per-worker registry reuses constructed ``System`` instances
  between cells via in-place reset instead of rebuilding them.
* :func:`fan_out` — the generic ordered fan-out primitive
  (``run_chaos_campaign`` uses it for :class:`ChaosRunResult` cells,
  which bypass the disk cache).
* **Checkpoint/resume** — pass a :class:`repro.journal.RunJournal` and
  every completed cell is persisted as it lands; a later run with the
  same journal rehydrates those outcomes instead of recomputing them
  (``border-control sweep --resume <run-id>``). SIGINT/SIGTERM are
  converted into a clean unwind so an interrupted run is always
  resumable.
* :func:`verify_identical` — re-run a grid serially with every cache
  bypassed and field-compare against the parallel results.
* :class:`SweepReport` / :func:`write_bench` — perf accounting
  (sims/minute, speedup, cache hit rate, supervisor recovery counters)
  and the ``BENCH_sweep.json`` snapshot the CI trajectory tracks,
  written atomically so a killed run never leaves a truncated snapshot.

Workers share the repaired atomic disk cache (see
:func:`repro.experiments.common.cached_run`): entries are published via
temp-file + ``os.replace``, so concurrent writers never expose a
truncated JSON document to readers. Cache-hit accounting is the
provenance fact returned by
:func:`repro.experiments.common.cached_run_ex` — never a separate
file-existence probe, which races against concurrent publishers.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import SweepError
from repro.experiments import common
from repro.faults.plan import derive_seed
from repro.journal import RunJournal

if TYPE_CHECKING:  # repro.fleet imports this module; no runtime cycle
    from repro.fleet import FleetCoordinator
from repro.sim.config import GPUThreading, SafetyMode
from repro.sim.runner import RunResult, clear_warm_registry, run_single
from repro.supervisor import (
    SupervisorPolicy,
    SupervisorStats,
    TaskOutcome,
    supervised_map,
)

__all__ = [
    "BENCH_SCHEMA",
    "Cell",
    "CellOutcome",
    "GRID_NAMES",
    "SupervisorPolicy",
    "SupervisorStats",
    "SweepReport",
    "dedup_cells",
    "fan_out",
    "grid_cells",
    "parallel_measurement_validity",
    "prewarm",
    "resolve_workers",
    "run_sweep",
    "verify_identical",
    "write_bench",
]

BENCH_SCHEMA = "repro-sweep-bench-v3"

#: Grids :func:`grid_cells` knows how to build (``chaos`` is separate —
#: see :func:`repro.sim.runner.run_chaos_campaign`, which takes
#: ``workers`` directly).
GRID_NAMES = ("fig4", "fig5", "fig6", "fig7", "workloads")

ProgressFn = Callable[[int, int, str, Optional[str]], None]


@dataclass(frozen=True)
class Cell:
    """One deterministic simulation point of a sweep grid."""

    workload: str
    safety: SafetyMode
    threading: GPUThreading = GPUThreading.HIGHLY
    seed: int = 1234
    ops_scale: float = 1.0
    downgrade_interval_cycles: Optional[float] = None
    record_border: bool = False
    tag: str = ""

    @property
    def label(self) -> str:
        parts = [self.workload, self.safety.value, self.threading.value]
        if self.downgrade_interval_cycles is not None:
            parts.append(f"dgi={self.downgrade_interval_cycles:g}")
        if self.record_border:
            parts.append("trace")
        if self.tag:
            parts.insert(0, self.tag)
        return "/".join(parts)

    @property
    def cacheable(self) -> bool:
        """Border traces are never cached; everything else is."""
        return not self.record_border

    def key(self) -> str:
        return common.cache_key(
            self.workload,
            self.safety,
            self.threading,
            seed=self.seed,
            ops_scale=self.ops_scale,
            downgrade_interval_cycles=self.downgrade_interval_cycles,
        )

    def journal_key(self) -> str:
        """The run-journal key (distinguishes trace cells from cached ones)."""
        return self.key() + ("#trace" if self.record_border else "")

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable parameters, for repro bundles and journals."""
        return {
            "workload": self.workload,
            "safety": self.safety.value,
            "threading": self.threading.value,
            "seed": self.seed,
            "ops_scale": self.ops_scale,
            "downgrade_interval_cycles": self.downgrade_interval_cycles,
            "record_border": self.record_border,
            "tag": self.tag,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Cell":
        data = dict(data)
        data["safety"] = SafetyMode(data["safety"])
        data["threading"] = GPUThreading(data["threading"])
        return cls(**data)  # type: ignore[arg-type]


@dataclass
class CellOutcome:
    """What happened to one cell: its result or a formatted failure."""

    cell: Cell
    result: Optional[RunResult]
    error: Optional[str]
    wall_seconds: float
    cache_hit: bool
    attempts: int = 1
    error_kind: Optional[str] = None
    resumed: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SweepReport:
    """Results plus the perf accounting for one sweep invocation."""

    outcomes: List[CellOutcome]
    workers: int
    wall_seconds: float
    mode: str  # "parallel" | "serial" | "fleet"
    stats: SupervisorStats = field(default_factory=SupervisorStats)
    #: Coordinator counters when the run used a fleet (else ``None``).
    fleet: Optional[Dict[str, int]] = None

    @property
    def results(self) -> List[RunResult]:
        """Per-cell results in grid order (raises if any cell failed)."""
        self.raise_failures()
        return [out.result for out in self.outcomes]  # type: ignore[misc]

    @property
    def ok(self) -> bool:
        return all(out.ok for out in self.outcomes)

    def failures(self) -> List[str]:
        return [
            f"{out.cell.label}: {out.error}"
            for out in self.outcomes
            if not out.ok
        ]

    def raise_failures(self) -> None:
        if not self.ok:
            raise SweepError(self.failures(), outcomes=self.outcomes)

    def partial_results(self) -> List[Tuple[Cell, RunResult]]:
        """Every cell that *did* complete, in grid order.

        The graceful-degradation companion to :attr:`results`: figure
        drivers and reports use it (via ``--allow-partial``) to render
        what survived a partially failed sweep instead of aborting.
        """
        return [
            (out.cell, out.result)
            for out in self.outcomes
            if out.ok and out.result is not None
        ]

    @property
    def completion_rate(self) -> float:
        """Fraction of cells that completed successfully (1.0 == all)."""
        if not self.outcomes:
            return 1.0
        return sum(out.ok for out in self.outcomes) / len(self.outcomes)

    @property
    def resumed_cells(self) -> int:
        return sum(out.resumed for out in self.outcomes)

    @property
    def cell_seconds(self) -> float:
        """Summed per-cell compute time — the serial-cost estimate."""
        return sum(out.wall_seconds for out in self.outcomes)

    @property
    def cache_hit_rate(self) -> float:
        cacheable = [out for out in self.outcomes if out.cell.cacheable]
        if not cacheable:
            return 0.0
        return sum(out.cache_hit for out in cacheable) / len(cacheable)

    @property
    def sims_per_minute(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return 60.0 * len(self.outcomes) / self.wall_seconds

    @property
    def speedup_estimate(self) -> float:
        """Summed cell time / wall time (1.0 ≈ no parallel benefit)."""
        if self.wall_seconds <= 0:
            return 1.0
        return self.cell_seconds / self.wall_seconds

    def render(self) -> str:
        def cache_col(out: CellOutcome) -> str:
            if out.resumed:
                return "journal"
            if out.cache_hit:
                return "hit"
            return "-" if out.cell.cacheable else "n/c"

        rows = [
            [
                out.cell.label,
                f"{out.wall_seconds:.2f}s",
                cache_col(out),
                ("ok" if out.ok else "FAIL")
                + (f" (x{out.attempts})" if out.attempts > 1 else ""),
            ]
            for out in self.outcomes
        ]
        table = common.text_table(
            ["cell", "wall", "cache", "status"],
            rows,
            title=(
                f"sweep: {len(self.outcomes)} cells, {self.workers} worker(s) "
                f"[{self.mode}], {self.wall_seconds:.2f}s wall"
            ),
        )
        summary = (
            f"{self.sims_per_minute:.1f} sims/min, "
            f"{self.cache_hit_rate:.0%} cache hits, "
            f"estimated speedup {self.speedup_estimate:.2f}x, "
            f"completion {self.completion_rate:.0%}"
        )
        stats = self.stats.as_dict()
        stats["resumed_cells"] = max(stats["resumed_cells"], self.resumed_cells)
        supervisor = "supervisor: " + ", ".join(
            f"{name} {value}" for name, value in stats.items()
        )
        lines = [table, summary, supervisor]
        if self.fleet:
            interesting = (
                "workers_seen",
                "results",
                "expired_leases",
                "reassigned",
                "stolen",
                "duplicate_results",
                "dead_workers",
            )
            lines.append(
                "fleet: "
                + ", ".join(
                    f"{name} {self.fleet.get(name, 0)}" for name in interesting
                )
            )
        # Surface recovery activity (epoch-fenced resets, retries, CPU
        # fallbacks) whenever any cell's RunResult recorded some — quiet
        # sweeps keep their old output.
        recovered = [
            out.result
            for out in self.outcomes
            if out.result is not None
            and (
                getattr(out.result, "recoveries_attempted", 0)
                or getattr(out.result, "fallback_executions", 0)
                or getattr(out.result, "stale_epoch_rejections", 0)
            )
        ]
        if recovered:
            lines.append(
                "recovery: "
                f"{sum(r.recoveries_attempted for r in recovered)} attempts, "
                f"{sum(r.recoveries_succeeded for r in recovered)} succeeded, "
                f"{sum(r.fallback_executions for r in recovered)} CPU fallbacks, "
                f"{sum(r.recovery_ticks for r in recovered)} recovery ticks, "
                f"{sum(r.stale_epoch_rejections for r in recovered)} "
                "stale-epoch rejections"
            )
        lines.extend(f"  FAIL {failure}" for failure in self.failures())
        return "\n".join(lines)


def resolve_workers(workers: Optional[int]) -> int:
    """``None`` → one worker per core; floors at 1."""
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, workers)


# ---------------------------------------------------------------------------
# worker-side entry points (must be module-level: they cross the pickle
# boundary into pool processes)
# ---------------------------------------------------------------------------


#: The sweep's shared task context: ``(cells, use_disk, fresh)``. Cells
#: are pickled *once* per sweep into the worker initializer and installed
#: here, so each task crossing the pool boundary afterwards is a bare
#: int index instead of a re-pickled Cell per submission. The parent
#: installs the same context around the supervisor's in-process serial
#: path (which never runs pool initializers).
_grid_context: Optional[Tuple[Tuple[Cell, ...], bool, bool]] = None


def _install_grid(cells: Sequence[Cell], use_disk: bool, fresh: bool) -> None:
    global _grid_context
    _grid_context = (tuple(cells), use_disk, fresh)


def _clear_grid() -> None:
    global _grid_context
    _grid_context = None


def _worker_init(
    cache_dir: Optional[str],
    grid_blob: Optional[bytes] = None,
    warm: bool = False,
) -> None:
    """Initialize one pool worker: cache pinning, warm reuse, task context.

    * **Cache dir** — the worker is pinned to the parent's *resolved*
      cache dir, unconditionally. The old behavior popped
      ``REPRO_CACHE_DIR`` when the parent's environment lacked it, so a
      parent using the default dir and a worker with a different working
      directory (or an inherited stale env under ``fork``) silently
      cached to different places. A ``None`` argument now means "resolve
      the default here" rather than "unpin".
    * **Memory cache** — cleared. With ``fork`` workers inherit the
      parent's memoized results; clearing them makes every worker's
      hit accounting (and its actual compute) independent of parent
      state, and keeps behavior identical under ``spawn``.
    * **Warm registry** — ``warm=True`` turns on per-worker ``System``
      reuse (:mod:`repro.sim.runner`); any instances inherited via
      ``fork`` are dropped so the worker warms up from its own runs.
    * **Task context** — ``grid_blob`` (the sweep's cells, pickled once
      in the parent) is installed for :func:`_run_cell`'s int tasks.

    Pool rebuilds after a worker crash re-run this initializer in every
    replacement worker, so the context and warm state re-establish
    themselves lazily — no parent-side bookkeeping.
    """
    if cache_dir is None:
        cache_dir = str(Path(common._cache_dir()).resolve())
    os.environ["REPRO_CACHE_DIR"] = cache_dir
    os.environ["REPRO_WARM"] = "1" if warm else "0"
    common._memory_cache.clear()
    clear_warm_registry()
    if grid_blob is not None:
        _install_grid(*pickle.loads(grid_blob))
    else:
        _clear_grid()


def _run_cell(task: Union[int, Tuple[Cell, bool, bool]]) -> Tuple[RunResult, bool]:
    """Execute one cell; returns ``(result, cache_hit)``.

    Tasks are normally int indexes into the installed grid context;
    legacy ``(Cell, use_disk, fresh)`` tuples are still accepted (repro
    bundles and direct callers use them).

    The hit flag is the provenance fact reported by
    :func:`repro.experiments.common.cached_run_ex` — *not* a separate
    existence probe of the cache file, which races against concurrent
    workers publishing the same key and misreports either way.
    """
    if isinstance(task, int):
        if _grid_context is None:
            raise RuntimeError(
                "sweep task is an index but no grid context is installed "
                "in this process (worker initializer did not run?)"
            )
        cells, use_disk, fresh = _grid_context
        cell = cells[task]
    else:
        cell, use_disk, fresh = task
    if fresh or not cell.cacheable:
        result = run_single(
            cell.workload,
            cell.safety,
            cell.threading,
            seed=cell.seed,
            ops_scale=cell.ops_scale,
            record_border=cell.record_border,
            downgrade_interval_cycles=cell.downgrade_interval_cycles,
        )
        return result, False
    result, source = common.cached_run_ex(
        cell.workload,
        cell.safety,
        cell.threading,
        seed=cell.seed,
        ops_scale=cell.ops_scale,
        downgrade_interval_cycles=cell.downgrade_interval_cycles,
        use_disk=use_disk,
    )
    return result, source != "computed"


def _describe_cell_task(task: Any) -> Optional[Dict[str, Any]]:
    """Repro-bundle recipe for a sweep task (``replay-cell`` consumes it).

    Bundles always embed the full cell parameters — int tasks are
    resolved through the installed grid context so a quarantined cell
    stays replayable long after the sweep (and its context) is gone.
    """
    if isinstance(task, int) and _grid_context is not None:
        cells = _grid_context[0]
        if 0 <= task < len(cells):
            return {"kind": "sweep", "cell": cells[task].to_dict()}
    if (
        isinstance(task, tuple)
        and len(task) == 3
        and isinstance(task[0], Cell)
    ):
        return {"kind": "sweep", "cell": task[0].to_dict()}
    return None


# ---------------------------------------------------------------------------
# the fan-out core
# ---------------------------------------------------------------------------


def _default_policy(policy: Optional[SupervisorPolicy]) -> SupervisorPolicy:
    """Fill in the quarantine dir when the caller didn't pick one."""
    if policy is None:
        policy = SupervisorPolicy()
    if policy.quarantine_dir is None:
        policy = dataclasses.replace(
            policy, quarantine_dir=common._cache_dir() / "quarantine"
        )
    return policy


def fan_out(
    fn: Callable,
    tasks: Sequence[Any],
    workers: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
    label_of: Optional[Callable[[Any], str]] = None,
    policy: Optional[SupervisorPolicy] = None,
    stats: Optional[SupervisorStats] = None,
    describe_task: Optional[Callable[[Any], Optional[Dict[str, Any]]]] = None,
    on_outcome: Optional[Callable[[int, TaskOutcome], None]] = None,
    grid: Optional[Tuple[Sequence[Cell], bool, bool]] = None,
    should_abort: Optional[Callable[[], bool]] = None,
) -> Tuple[List[TaskOutcome], str]:
    """Run ``fn`` over ``tasks`` on a supervised process pool, in order.

    ``fn`` and every task must be picklable. Returns ``(outcomes,
    mode)`` where each outcome is a
    :class:`~repro.supervisor.TaskOutcome` in task order and ``mode``
    is ``"parallel"`` or ``"serial"`` (the serial path is taken
    in-process for ``workers <= 1`` or a single task — no pool
    overhead, bit-identical results).

    Workers are always pinned to the parent's *resolved* cache dir (the
    initializer receives it explicitly — a worker never falls back to
    its own environment or working directory).

    ``grid=(cells, use_disk, fresh)`` ships the sweep's cell list to
    the workers **once**, pickled into the pool initializer, and turns
    on per-worker warm ``System`` reuse; ``fn``'s tasks can then be
    bare int indexes into that list. On the in-process serial path the
    same context is installed directly (pool initializers never run
    there) — but warm reuse stays *off* in the parent, so a serial
    reference run (``verify_identical``) is always an independent
    fresh-construction build.

    Supervision (see :mod:`repro.supervisor`): a dead worker fails only
    the cells it was actually running — with the real exception type in
    the outcome — and the pool is rebuilt for the rest; transient
    failures retry with bounded backoff; repeating deterministic
    failures are quarantined as poison with a replayable repro bundle
    under ``<cache-dir>/quarantine/``. ``SupervisorPolicy(retries=0)``
    disables retries but keeps the crash containment. Replacement
    workers re-run the initializer, so the shipped grid and warm
    registry re-establish themselves lazily after every rebuild.

    ``progress(done, total, label, error)`` fires as each cell's fate
    is sealed, in completion order.
    """
    workers = resolve_workers(workers)
    cache_dir = str(Path(common._cache_dir()).resolve())
    grid_blob: Optional[bytes] = None
    serial_setup = serial_teardown = None
    if grid is not None:
        cells, use_disk, fresh = grid
        grid_blob = pickle.dumps(
            (tuple(cells), use_disk, fresh), protocol=pickle.HIGHEST_PROTOCOL
        )

        def serial_setup() -> None:
            _install_grid(cells, use_disk, fresh)

        serial_teardown = _clear_grid
    return supervised_map(
        fn,
        tasks,
        workers,
        policy=_default_policy(policy),
        stats=stats,
        progress=progress,
        label_of=label_of,
        describe_task=describe_task,
        on_outcome=on_outcome,
        initializer=_worker_init,
        initargs=(cache_dir, grid_blob, grid is not None),
        serial_setup=serial_setup,
        serial_teardown=serial_teardown,
        should_abort=should_abort,
    )


def run_sweep(
    cells: Sequence[Cell],
    workers: Optional[int] = None,
    use_disk: bool = True,
    fresh: bool = False,
    progress: Optional[ProgressFn] = None,
    policy: Optional[SupervisorPolicy] = None,
    journal: Optional[RunJournal] = None,
    should_abort: Optional[Callable[[], bool]] = None,
    fleet: Optional["FleetCoordinator"] = None,
) -> SweepReport:
    """Run a grid of cells, in parallel when ``workers`` allows.

    Worker results are adopted into the calling process's memory cache
    (and the shared disk cache), so a subsequent serial consumer — a
    figure driver's ``run()`` — sees exactly the worker-computed
    ``RunResult`` objects. ``fresh=True`` bypasses every cache layer
    (each cell recomputed from scratch); :func:`verify_identical` uses
    it to build an independent serial reference.

    Parallel workers build their interpreter/import/System state once:
    each keeps a warm registry of constructed ``System`` instances
    (keyed by config) and resets one in place between cells instead of
    re-constructing — construction reuse, not result caching, and
    proven bit-identical to fresh builds by :func:`verify_identical`.
    The parent process never warms, so serial runs (and the verify
    reference) stay independent fresh-construction builds.

    With a ``journal``, cells whose key already has a successful entry
    are rehydrated from it (``resumed`` outcomes — zero recompute), and
    every newly executed cell is journaled as it lands, making the run
    resumable after any interruption. Trace-recording cells are never
    resumed (their payload is deliberately not persisted).

    ``should_abort`` enables cooperative cancellation (see
    :func:`repro.supervisor.supervised_map`): once it turns true the
    sweep stops dispatching, in-flight workers are killed, and the
    unfinished cells come back as ``aborted`` failures — already
    completed cells stay journaled, so a resume runs only the rest.

    ``fleet`` (a started :class:`repro.fleet.FleetCoordinator`) fans
    pending cells out to remote workers first; whatever the fleet could
    not place — no workers connected, a mid-campaign abort — runs on
    the local supervised pool, so a workerless fleet degrades to
    exactly the single-host behavior. Trace-recording (non-cacheable)
    cells always stay on the local pool: their payloads are not
    serialized over the wire, and shipping them would silently drop
    the trace from the report. Fleet results are journaled as
    they arrive, and any journal shards left by workers of a previous
    (killed) coordinator are merged before the resume scan, which is
    what makes coordinator SIGKILL + restart a zero-re-execution event.
    """
    start = time.perf_counter()
    stats = SupervisorStats()
    total = len(cells)
    outcomes: List[Optional[CellOutcome]] = [None] * total

    if journal is not None:
        # Fold in worker shards (no-op without any): cells a fleet
        # worker completed while the coordinator was dead rehydrate
        # below exactly like locally journaled ones.
        try:
            journal.merge_shards()
        except OSError:  # shard dir unreadable — recompute instead
            pass
        # Retry backoff jitter is seeded from the run id so a resumed
        # run replays identical delays while runs decorrelate.
        if policy is None or (policy.jitter > 0 and policy.jitter_seed == 0):
            policy = dataclasses.replace(
                policy or SupervisorPolicy(),
                jitter_seed=derive_seed(0, journal.run_id),
            )

    pending: List[int] = []
    for i, cell in enumerate(cells):
        entry = None
        if journal is not None and cell.cacheable and not fresh:
            entry = journal.completed(cell.journal_key())
        if entry is not None and entry.get("result") is not None:
            result = common._result_from_dict(entry["result"])
            outcomes[i] = CellOutcome(
                cell,
                result,
                None,
                float(entry.get("wall_seconds", 0.0)),
                cache_hit=True,
                attempts=int(entry.get("attempts", 1)),
                resumed=True,
            )
            stats.resumed_cells += 1
            common.store_result(cell.key(), result, use_disk=use_disk)
        else:
            pending.append(i)

    def on_outcome(task_index: int, out: TaskOutcome) -> None:
        cell = cells[pending[task_index]]
        if journal is None:
            return
        result_payload = None
        cache_hit = False
        if out.ok and out.value is not None and cell.cacheable:
            result_payload = common._result_to_dict(out.value[0])
            cache_hit = bool(out.value[1])
        journal.record(
            cell.journal_key(),
            {
                "label": cell.label,
                "ok": out.ok,
                "error": out.error,
                "wall_seconds": round(out.wall_seconds, 6),
                "attempts": out.attempts,
                "cacheable": cell.cacheable,
                "cache_hit": cache_hit,
                "result": result_payload,
            },
        )

    mode = "serial"
    fleet_stats: Optional[Dict[str, int]] = None
    # Trace-recording (non-cacheable) cells never ride the fleet: their
    # result payload is deliberately not serialized over the wire (or
    # into journals), so a remote execution would come back as a silent
    # ``result=None``. They always run on the local pool instead.
    fleet_pending = (
        [i for i in pending if cells[i].cacheable] if fleet is not None else []
    )
    if fleet is not None and fleet_pending:
        local_only = [i for i in pending if not cells[i].cacheable]
        fleet_cells = [cells[i] for i in fleet_pending]
        done_lock = threading.Lock()
        done_boxed = [total - len(pending)]

        def on_entry(local_index: int, entry: dict) -> None:
            # Runs on the coordinator thread as each RESULT lands:
            # journal immediately (record is thread-safe) so a killed
            # run resumes from everything the fleet finished.
            cell = fleet_cells[local_index]
            if journal is not None:
                journal.record(cell.journal_key(), entry)
            with done_lock:
                done_boxed[0] += 1
                done_now = done_boxed[0]
            if progress is not None:
                progress(done_now, total, cell.label, entry.get("error"))

        placed, leftovers = fleet.map_cells(
            fleet_cells,
            use_disk=use_disk,
            fresh=fresh,
            run_id=journal.run_id if journal is not None else None,
            journal_dir=(
                journal.path.parent if journal is not None else None
            ),
            on_entry=on_entry,
            should_abort=should_abort,
        )
        for local_index, entry in placed.items():
            i = fleet_pending[local_index]
            cell = cells[i]
            result = None
            if entry.get("result") is not None:
                result = common._result_from_dict(entry["result"])
            outcomes[i] = CellOutcome(
                cell,
                result,
                entry.get("error"),
                float(entry.get("wall_seconds", 0.0)),
                cache_hit=bool(entry.get("cache_hit")),
                attempts=int(entry.get("attempts", 1)),
                error_kind=entry.get("error_kind"),
            )
            if result is not None and cell.cacheable and not fresh:
                common.store_result(cell.key(), result, use_disk=use_disk)
        if placed:
            mode = "fleet"
        fleet_stats = fleet.stats_snapshot()
        # Whatever the fleet could not place degrades to the local
        # pool, alongside the trace cells that never left.
        pending = sorted(local_only + [fleet_pending[j] for j in leftovers])
    if pending:
        # Tasks are bare indexes; the cells themselves are pickled once
        # into the worker initializer (and installed around the serial
        # path), not re-shipped per task.
        task_cells = [cells[i] for i in pending]
        tasks = list(range(len(task_cells)))

        def label_of(task: Any) -> str:
            return task_cells[task].label if isinstance(task, int) else str(task)

        def describe_task(task: Any) -> Optional[Dict[str, Any]]:
            if isinstance(task, int):
                return {"kind": "sweep", "cell": task_cells[task].to_dict()}
            return _describe_cell_task(task)

        def guarded() -> Tuple[List[TaskOutcome], str]:
            return fan_out(
                _run_cell,
                tasks,
                workers=workers,
                progress=progress,
                label_of=label_of,
                policy=policy,
                stats=stats,
                describe_task=describe_task,
                on_outcome=on_outcome,
                grid=(task_cells, use_disk, fresh),
                should_abort=should_abort,
            )

        if journal is not None:
            with journal.signal_guard():
                raw, local_mode = guarded()
        else:
            raw, local_mode = guarded()
        if mode != "fleet":  # fleet placements outrank the local tail
            mode = local_mode
        for i, out in zip(pending, raw):
            cell = cells[i]
            result, hit = (None, False) if out.value is None else out.value
            outcomes[i] = CellOutcome(
                cell,
                result,
                out.error,
                out.wall_seconds,
                hit,
                attempts=out.attempts,
                error_kind=out.error_kind,
            )
            if result is not None and cell.cacheable and not fresh:
                common.store_result(cell.key(), result, use_disk=use_disk)
    wall = time.perf_counter() - start
    assert all(out is not None for out in outcomes)
    return SweepReport(
        outcomes=[out for out in outcomes if out is not None],
        workers=resolve_workers(workers),
        wall_seconds=wall,
        mode=mode,
        stats=stats,
        fleet=fleet_stats,
    )


def prewarm(
    cells: Sequence[Cell],
    workers: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
    policy: Optional[SupervisorPolicy] = None,
    journal: Optional[RunJournal] = None,
    allow_partial: bool = False,
) -> SweepReport:
    """Fan a grid out across cores so later serial reads are cache hits.

    This is how the figure drivers parallelize without changing their
    result-assembly logic: ``run(..., workers=N)`` prewarms the grid,
    then the existing serial loop consumes memoized results. Raises
    :class:`~repro.errors.SweepError` if any cell failed — unless
    ``allow_partial``, in which case the surviving cells are kept and
    the caller renders explicit gaps for the rest.
    """
    report = run_sweep(
        cells, workers=workers, progress=progress, policy=policy, journal=journal
    )
    if not allow_partial:
        report.raise_failures()
    return report


# ---------------------------------------------------------------------------
# serial/parallel equivalence
# ---------------------------------------------------------------------------


def compare_results(a: RunResult, b: RunResult) -> List[str]:
    """Field-by-field differences between two results (empty == identical)."""
    diffs = []
    for fld in dataclasses.fields(RunResult):
        va, vb = getattr(a, fld.name), getattr(b, fld.name)
        if va != vb:
            diffs.append(f"{fld.name}: {va!r} != {vb!r}")
    return diffs


def verify_identical(
    cells: Sequence[Cell],
    parallel: SweepReport,
    progress: Optional[ProgressFn] = None,
) -> Tuple[SweepReport, List[str]]:
    """Prove a parallel sweep matches serial execution bit for bit.

    Recomputes every cell serially with all caches bypassed and
    field-compares against the parallel results. Returns the serial
    report (its ``wall_seconds`` is the honest serial baseline) and the
    list of mismatches (empty == identical). Resumed (journal-recovered)
    outcomes are compared exactly like freshly computed ones, so the
    identity proof covers the checkpoint/resume path too.
    """
    serial = run_sweep(cells, workers=1, fresh=True, progress=progress)
    mismatches: List[str] = []
    for cell, par_out, ser_out in zip(cells, parallel.outcomes, serial.outcomes):
        if par_out.result is None or ser_out.result is None:
            mismatches.append(
                f"{cell.label}: missing result "
                f"(parallel={par_out.error}, serial={ser_out.error})"
            )
            continue
        for diff in compare_results(par_out.result, ser_out.result):
            mismatches.append(f"{cell.label}: {diff}")
    return serial, mismatches


# ---------------------------------------------------------------------------
# grid definitions and the bench snapshot
# ---------------------------------------------------------------------------


def grid_cells(
    name: str,
    threading: Union[GPUThreading, str, None] = None,
    workloads: Optional[List[str]] = None,
    seed: int = 1234,
    ops_scale: float = 1.0,
) -> List[Cell]:
    """Build a named figure grid (see :data:`GRID_NAMES`).

    ``threading`` narrows grids that sweep both GPU configurations;
    figure grids with a fixed configuration ignore it.
    """
    from repro.experiments import fig4, fig5, fig6, fig7, workload_table

    if isinstance(threading, str):
        threading = GPUThreading(threading)
    both = (GPUThreading.HIGHLY, GPUThreading.MODERATELY)
    threadings = both if threading is None else (threading,)
    kwargs = dict(workloads=workloads, seed=seed, ops_scale=ops_scale)
    if name == "fig4":
        cells: List[Cell] = []
        for thr in threadings:
            cells.extend(fig4.grid(thr, **kwargs))
        return cells
    if name == "fig5":
        return fig5.grid(threading or GPUThreading.HIGHLY, **kwargs)
    if name == "fig6":
        return fig6.grid(threading or GPUThreading.HIGHLY, **kwargs)
    if name == "fig7":
        return fig7.grid(**kwargs)
    if name == "workloads":
        return workload_table.grid(threading or GPUThreading.HIGHLY, **kwargs)
    raise ValueError(f"unknown grid {name!r} (expected one of {GRID_NAMES})")


def dedup_cells(cells: Sequence[Cell]) -> List[Cell]:
    """Drop cells whose cache key duplicates an earlier one.

    Figure grids overlap (fig4's BC-BCC cells are fig5's whole grid);
    when sweeping a union, running each key once is enough — every
    consumer reads the shared cache. Uncacheable cells are kept as-is.
    """
    seen = set()
    unique: List[Cell] = []
    for cell in cells:
        if not cell.cacheable:
            unique.append(cell)
            continue
        key = cell.key()
        if key not in seen:
            seen.add(key)
            unique.append(cell)
    return unique


def parallel_measurement_validity(
    report: SweepReport, cpu_count: Optional[int] = None
) -> Tuple[bool, Optional[str]]:
    """Can this report honestly be labeled a *parallel speedup* measurement?

    Returns ``(valid, reason)`` with ``reason`` set when invalid. A run
    on a single CPU core, in serial mode, or with one worker measures
    scheduling overhead, not parallelism — a previous snapshot claimed
    a 2-worker "speedup" from a ``cpu_count: 1`` box, which this refuses
    to repeat.
    """
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    if report.mode != "parallel":
        return False, f"serial mode ({report.workers} worker(s))"
    if report.workers < 2:
        return False, "fewer than 2 workers"
    if cpus < 2:
        return (
            False,
            f"only {cpus} CPU core available — {report.workers} workers "
            "time-slice one core, so wall-clock ratios measure scheduling, "
            "not parallelism",
        )
    if report.workers > cpus:
        return (
            False,
            f"{report.workers} workers oversubscribe {cpus} CPU cores",
        )
    return True, None


def write_bench(
    path: Union[str, Path],
    report: SweepReport,
    grids: Sequence[str],
    serial_wall_seconds: Optional[float] = None,
    verified_identical: Optional[bool] = None,
    warm_report: Optional["SweepReport"] = None,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Write the ``BENCH_sweep.json`` perf snapshot; returns the payload.

    ``speedup`` is measured (parallel vs. a real serial run) when
    ``serial_wall_seconds`` is given **and** the run qualifies as a
    parallel measurement (see :func:`parallel_measurement_validity`) —
    otherwise it is ``null`` with the refusal recorded in
    ``parallel_invalid_reason``. ``speedup_per_worker`` is the measured
    speedup normalized by worker count (1.0 == perfect scaling).

    ``warm_report`` is a repeat run of the same grid against the caches
    the first run populated; its wall time and hit rate land in the
    ``warm_*`` fields (``cold_wall_seconds`` is then the first run's).

    The file is published atomically (temp file + ``os.replace``) so a
    killed run never leaves a truncated snapshot. Schema:
    :data:`BENCH_SCHEMA`.
    """
    walls = sorted(out.wall_seconds for out in report.outcomes)
    cpus = os.cpu_count()
    parallel_valid, invalid_reason = parallel_measurement_validity(report, cpus)
    speedup = None
    if (
        parallel_valid
        and serial_wall_seconds is not None
        and report.wall_seconds > 0
    ):
        speedup = serial_wall_seconds / report.wall_seconds
    supervisor = report.stats.as_dict()
    supervisor["resumed_cells"] = max(
        supervisor["resumed_cells"], report.resumed_cells
    )
    payload: Dict[str, object] = {
        "schema": BENCH_SCHEMA,
        "grids": list(grids),
        "cells": len(report.outcomes),
        "workers": report.workers,
        "cpu_count": cpus,
        "mode": report.mode,
        "parallel_measurement_valid": parallel_valid,
        "parallel_invalid_reason": invalid_reason,
        "wall_seconds": round(report.wall_seconds, 4),
        "cold_wall_seconds": round(report.wall_seconds, 4),
        "warm_wall_seconds": (
            None if warm_report is None else round(warm_report.wall_seconds, 4)
        ),
        "warm_cache_hit_rate": (
            None if warm_report is None else round(warm_report.cache_hit_rate, 4)
        ),
        "warm_speedup": (
            None
            if warm_report is None or warm_report.wall_seconds <= 0
            else round(report.wall_seconds / warm_report.wall_seconds, 3)
        ),
        "serial_wall_seconds": (
            None if serial_wall_seconds is None else round(serial_wall_seconds, 4)
        ),
        "speedup": None if speedup is None else round(speedup, 3),
        "speedup_per_worker": (
            None if speedup is None else round(speedup / report.workers, 3)
        ),
        "speedup_estimate": round(report.speedup_estimate, 3),
        "sims_per_minute": round(report.sims_per_minute, 2),
        "cache_hit_rate": round(report.cache_hit_rate, 4),
        "completion_rate": round(report.completion_rate, 4),
        "cell_seconds_total": round(report.cell_seconds, 4),
        "cell_seconds_max": round(walls[-1], 4) if walls else 0.0,
        "cell_seconds_median": round(walls[len(walls) // 2], 4) if walls else 0.0,
        "failures": report.failures(),
        "verified_identical": verified_identical,
        "supervisor": supervisor,
        "cells_detail": [
            {
                "label": out.cell.label,
                "wall_seconds": round(out.wall_seconds, 4),
                "cache_hit": out.cache_hit,
                "ok": out.ok,
                "attempts": out.attempts,
                "resumed": out.resumed,
            }
            for out in report.outcomes
        ],
    }
    if extra:
        payload.update(extra)
    out_path = Path(path)
    if out_path.parent != Path(""):
        out_path.parent.mkdir(parents=True, exist_ok=True)
    common._write_atomic(out_path, json.dumps(payload, indent=2) + "\n")
    return payload
