"""``repro.sweep`` — parallel fan-out of deterministic simulation cells.

Every paper figure and chaos campaign is a grid of independent
(workload × safety × threading × seed) *cells*, and each cell is a pure
function of its parameters. This module runs such grids across cores:

* :class:`Cell` — one declarative simulation point. The figure drivers
  (:mod:`repro.experiments.fig4` … ``fig7``, ``workload_table``) each
  expose a ``grid(...)`` returning their cells; their ``run(...)``
  entry points stay serial consumers of the shared result cache.
* :func:`run_sweep` — dispatch cells to a
  :class:`~concurrent.futures.ProcessPoolExecutor`, collect
  per-cell wall times / failures / cache hits, and adopt results into
  the parent's caches. Results are **bit-identical** to serial
  execution: workers run the same deterministic ``run_single`` and
  ship the ``RunResult`` back whole.
* :func:`fan_out` — the generic ordered fan-out primitive
  (``run_chaos_campaign`` uses it for :class:`ChaosRunResult` cells,
  which bypass the disk cache).
* :func:`verify_identical` — re-run a grid serially with every cache
  bypassed and field-compare against the parallel results.
* :class:`SweepReport` / :func:`write_bench` — perf accounting
  (sims/minute, speedup, cache hit rate) and the ``BENCH_sweep.json``
  snapshot the CI trajectory tracks.

Workers share the repaired atomic disk cache (see
:func:`repro.experiments.common.cached_run`): entries are published via
temp-file + ``os.replace``, so concurrent writers never expose a
truncated JSON document to readers.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import SweepError
from repro.experiments import common
from repro.sim.config import GPUThreading, SafetyMode
from repro.sim.runner import RunResult, run_single

__all__ = [
    "BENCH_SCHEMA",
    "Cell",
    "CellOutcome",
    "GRID_NAMES",
    "SweepReport",
    "dedup_cells",
    "fan_out",
    "grid_cells",
    "prewarm",
    "resolve_workers",
    "run_sweep",
    "verify_identical",
    "write_bench",
]

BENCH_SCHEMA = "repro-sweep-bench-v1"

#: Grids :func:`grid_cells` knows how to build (``chaos`` is separate —
#: see :func:`repro.sim.runner.run_chaos_campaign`, which takes
#: ``workers`` directly).
GRID_NAMES = ("fig4", "fig5", "fig6", "fig7", "workloads")

ProgressFn = Callable[[int, int, str, Optional[str]], None]


@dataclass(frozen=True)
class Cell:
    """One deterministic simulation point of a sweep grid."""

    workload: str
    safety: SafetyMode
    threading: GPUThreading = GPUThreading.HIGHLY
    seed: int = 1234
    ops_scale: float = 1.0
    downgrade_interval_cycles: Optional[float] = None
    record_border: bool = False
    tag: str = ""

    @property
    def label(self) -> str:
        parts = [self.workload, self.safety.value, self.threading.value]
        if self.downgrade_interval_cycles is not None:
            parts.append(f"dgi={self.downgrade_interval_cycles:g}")
        if self.record_border:
            parts.append("trace")
        if self.tag:
            parts.insert(0, self.tag)
        return "/".join(parts)

    @property
    def cacheable(self) -> bool:
        """Border traces are never cached; everything else is."""
        return not self.record_border

    def key(self) -> str:
        return common.cache_key(
            self.workload,
            self.safety,
            self.threading,
            seed=self.seed,
            ops_scale=self.ops_scale,
            downgrade_interval_cycles=self.downgrade_interval_cycles,
        )


@dataclass
class CellOutcome:
    """What happened to one cell: its result or a formatted failure."""

    cell: Cell
    result: Optional[RunResult]
    error: Optional[str]
    wall_seconds: float
    cache_hit: bool

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SweepReport:
    """Results plus the perf accounting for one sweep invocation."""

    outcomes: List[CellOutcome]
    workers: int
    wall_seconds: float
    mode: str  # "parallel" | "serial"

    @property
    def results(self) -> List[RunResult]:
        """Per-cell results in grid order (raises if any cell failed)."""
        self.raise_failures()
        return [out.result for out in self.outcomes]  # type: ignore[misc]

    @property
    def ok(self) -> bool:
        return all(out.ok for out in self.outcomes)

    def failures(self) -> List[str]:
        return [
            f"{out.cell.label}: {out.error}"
            for out in self.outcomes
            if not out.ok
        ]

    def raise_failures(self) -> None:
        if not self.ok:
            raise SweepError(self.failures())

    @property
    def cell_seconds(self) -> float:
        """Summed per-cell compute time — the serial-cost estimate."""
        return sum(out.wall_seconds for out in self.outcomes)

    @property
    def cache_hit_rate(self) -> float:
        cacheable = [out for out in self.outcomes if out.cell.cacheable]
        if not cacheable:
            return 0.0
        return sum(out.cache_hit for out in cacheable) / len(cacheable)

    @property
    def sims_per_minute(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return 60.0 * len(self.outcomes) / self.wall_seconds

    @property
    def speedup_estimate(self) -> float:
        """Summed cell time / wall time (1.0 ≈ no parallel benefit)."""
        if self.wall_seconds <= 0:
            return 1.0
        return self.cell_seconds / self.wall_seconds

    def render(self) -> str:
        rows = [
            [
                out.cell.label,
                f"{out.wall_seconds:.2f}s",
                "hit" if out.cache_hit else ("-" if out.cell.cacheable else "n/c"),
                "ok" if out.ok else "FAIL",
            ]
            for out in self.outcomes
        ]
        table = common.text_table(
            ["cell", "wall", "cache", "status"],
            rows,
            title=(
                f"sweep: {len(self.outcomes)} cells, {self.workers} worker(s) "
                f"[{self.mode}], {self.wall_seconds:.2f}s wall"
            ),
        )
        summary = (
            f"{self.sims_per_minute:.1f} sims/min, "
            f"{self.cache_hit_rate:.0%} cache hits, "
            f"estimated speedup {self.speedup_estimate:.2f}x"
        )
        lines = [table, summary]
        lines.extend(f"  FAIL {failure}" for failure in self.failures())
        return "\n".join(lines)


def resolve_workers(workers: Optional[int]) -> int:
    """``None`` → one worker per core; floors at 1."""
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, workers)


# ---------------------------------------------------------------------------
# worker-side entry points (must be module-level: they cross the pickle
# boundary into pool processes)
# ---------------------------------------------------------------------------


def _worker_init(cache_dir: Optional[str]) -> None:
    """Pin the worker to the parent's cache dir with a cold memory cache.

    With the ``fork`` start method workers inherit the parent's memoized
    results; clearing them makes every worker's disk-hit accounting (and
    its actual compute) independent of parent state, and keeps behavior
    identical under ``spawn``.
    """
    if cache_dir is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = cache_dir
    common._memory_cache.clear()


def _run_cell(task: Tuple[Cell, bool, bool]) -> Tuple[RunResult, bool]:
    """Execute one cell; returns (result, disk-cache hit)."""
    cell, use_disk, fresh = task
    if fresh or not cell.cacheable:
        result = run_single(
            cell.workload,
            cell.safety,
            cell.threading,
            seed=cell.seed,
            ops_scale=cell.ops_scale,
            record_border=cell.record_border,
            downgrade_interval_cycles=cell.downgrade_interval_cycles,
        )
        return result, False
    hit = use_disk and common.cache_path(cell.key()).exists()
    result = common.cached_run(
        cell.workload,
        cell.safety,
        cell.threading,
        seed=cell.seed,
        ops_scale=cell.ops_scale,
        downgrade_interval_cycles=cell.downgrade_interval_cycles,
        use_disk=use_disk,
    )
    return result, hit


def _traced_call(fn: Callable, task: Any) -> Tuple[Any, Optional[str], float]:
    """Run one call, capturing wall time and a formatted traceback.

    Exceptions are flattened to strings *inside* the worker — raw
    exception objects don't always survive pickling, and the parent
    wants every failure, not just the first.
    """
    start = time.perf_counter()
    try:
        value = fn(task)
        return value, None, time.perf_counter() - start
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        tb = traceback.format_exc(limit=8)
        return None, f"{type(exc).__name__}: {exc}\n{tb}", time.perf_counter() - start


# ---------------------------------------------------------------------------
# the fan-out core
# ---------------------------------------------------------------------------


def fan_out(
    fn: Callable,
    tasks: Sequence[Any],
    workers: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
    label_of: Optional[Callable[[Any], str]] = None,
) -> Tuple[List[Tuple[Any, Optional[str], float]], str]:
    """Run ``fn`` over ``tasks`` on a process pool, preserving order.

    ``fn`` and every task must be picklable. Returns ``(outcomes,
    mode)`` where each outcome is ``(value, error, wall_seconds)`` in
    task order and ``mode`` is ``"parallel"`` or ``"serial"`` (the
    serial path is taken in-process for ``workers <= 1`` or a single
    task — no pool overhead, bit-identical results).

    ``progress(done, total, label, error)`` fires as each cell lands,
    in completion order.
    """
    workers = resolve_workers(workers)
    total = len(tasks)
    label_of = label_of or (lambda task: str(task))
    outcomes: List[Optional[Tuple[Any, Optional[str], float]]] = [None] * total

    def report(done: int, index: int) -> None:
        if progress is not None:
            outcome = outcomes[index]
            assert outcome is not None
            progress(done, total, label_of(tasks[index]), outcome[1])

    if workers <= 1 or total <= 1:
        for i, task in enumerate(tasks):
            outcomes[i] = _traced_call(fn, task)
            report(i + 1, i)
        return outcomes, "serial"  # type: ignore[return-value]

    with ProcessPoolExecutor(
        max_workers=min(workers, total),
        initializer=_worker_init,
        initargs=(os.environ.get("REPRO_CACHE_DIR"),),
    ) as pool:
        futures = {
            pool.submit(_traced_call, fn, task): i for i, task in enumerate(tasks)
        }
        pending = set(futures)
        done_count = 0
        while pending:
            finished, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in finished:
                index = futures[fut]
                try:
                    outcomes[index] = fut.result()
                except Exception as exc:  # worker died (OOM, signal, ...)
                    outcomes[index] = (
                        None,
                        f"worker failure: {type(exc).__name__}: {exc}",
                        0.0,
                    )
                done_count += 1
                report(done_count, index)
    return outcomes, "parallel"  # type: ignore[return-value]


def run_sweep(
    cells: Sequence[Cell],
    workers: Optional[int] = None,
    use_disk: bool = True,
    fresh: bool = False,
    progress: Optional[ProgressFn] = None,
) -> SweepReport:
    """Run a grid of cells, in parallel when ``workers`` allows.

    Worker results are adopted into the calling process's memory cache
    (and the shared disk cache), so a subsequent serial consumer — a
    figure driver's ``run()`` — sees exactly the worker-computed
    ``RunResult`` objects. ``fresh=True`` bypasses every cache layer
    (each cell recomputed from scratch); :func:`verify_identical` uses
    it to build an independent serial reference.
    """
    start = time.perf_counter()
    raw, mode = fan_out(
        _run_cell,
        [(cell, use_disk, fresh) for cell in cells],
        workers=workers,
        progress=progress,
        label_of=lambda task: task[0].label,
    )
    wall = time.perf_counter() - start
    outcomes: List[CellOutcome] = []
    for cell, (value, error, cell_wall) in zip(cells, raw):
        result, hit = (None, False) if value is None else value
        outcomes.append(CellOutcome(cell, result, error, cell_wall, hit))
        if result is not None and cell.cacheable and not fresh:
            common.store_result(cell.key(), result, use_disk=use_disk)
    return SweepReport(
        outcomes=outcomes,
        workers=resolve_workers(workers),
        wall_seconds=wall,
        mode=mode,
    )


def prewarm(
    cells: Sequence[Cell],
    workers: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
) -> SweepReport:
    """Fan a grid out across cores so later serial reads are cache hits.

    This is how the figure drivers parallelize without changing their
    result-assembly logic: ``run(..., workers=N)`` prewarms the grid,
    then the existing serial loop consumes memoized results. Raises
    :class:`~repro.errors.SweepError` if any cell failed.
    """
    report = run_sweep(cells, workers=workers, progress=progress)
    report.raise_failures()
    return report


# ---------------------------------------------------------------------------
# serial/parallel equivalence
# ---------------------------------------------------------------------------


def compare_results(a: RunResult, b: RunResult) -> List[str]:
    """Field-by-field differences between two results (empty == identical)."""
    diffs = []
    for fld in dataclasses.fields(RunResult):
        va, vb = getattr(a, fld.name), getattr(b, fld.name)
        if va != vb:
            diffs.append(f"{fld.name}: {va!r} != {vb!r}")
    return diffs


def verify_identical(
    cells: Sequence[Cell],
    parallel: SweepReport,
    progress: Optional[ProgressFn] = None,
) -> Tuple[SweepReport, List[str]]:
    """Prove a parallel sweep matches serial execution bit for bit.

    Recomputes every cell serially with all caches bypassed and
    field-compares against the parallel results. Returns the serial
    report (its ``wall_seconds`` is the honest serial baseline) and the
    list of mismatches (empty == identical).
    """
    serial = run_sweep(cells, workers=1, fresh=True, progress=progress)
    mismatches: List[str] = []
    for cell, par_out, ser_out in zip(cells, parallel.outcomes, serial.outcomes):
        if par_out.result is None or ser_out.result is None:
            mismatches.append(
                f"{cell.label}: missing result "
                f"(parallel={par_out.error}, serial={ser_out.error})"
            )
            continue
        for diff in compare_results(par_out.result, ser_out.result):
            mismatches.append(f"{cell.label}: {diff}")
    return serial, mismatches


# ---------------------------------------------------------------------------
# grid definitions and the bench snapshot
# ---------------------------------------------------------------------------


def grid_cells(
    name: str,
    threading: Union[GPUThreading, str, None] = None,
    workloads: Optional[List[str]] = None,
    seed: int = 1234,
    ops_scale: float = 1.0,
) -> List[Cell]:
    """Build a named figure grid (see :data:`GRID_NAMES`).

    ``threading`` narrows grids that sweep both GPU configurations;
    figure grids with a fixed configuration ignore it.
    """
    from repro.experiments import fig4, fig5, fig6, fig7, workload_table

    if isinstance(threading, str):
        threading = GPUThreading(threading)
    both = (GPUThreading.HIGHLY, GPUThreading.MODERATELY)
    threadings = both if threading is None else (threading,)
    kwargs = dict(workloads=workloads, seed=seed, ops_scale=ops_scale)
    if name == "fig4":
        cells: List[Cell] = []
        for thr in threadings:
            cells.extend(fig4.grid(thr, **kwargs))
        return cells
    if name == "fig5":
        return fig5.grid(threading or GPUThreading.HIGHLY, **kwargs)
    if name == "fig6":
        return fig6.grid(threading or GPUThreading.HIGHLY, **kwargs)
    if name == "fig7":
        return fig7.grid(**kwargs)
    if name == "workloads":
        return workload_table.grid(threading or GPUThreading.HIGHLY, **kwargs)
    raise ValueError(f"unknown grid {name!r} (expected one of {GRID_NAMES})")


def dedup_cells(cells: Sequence[Cell]) -> List[Cell]:
    """Drop cells whose cache key duplicates an earlier one.

    Figure grids overlap (fig4's BC-BCC cells are fig5's whole grid);
    when sweeping a union, running each key once is enough — every
    consumer reads the shared cache. Uncacheable cells are kept as-is.
    """
    seen = set()
    unique: List[Cell] = []
    for cell in cells:
        if not cell.cacheable:
            unique.append(cell)
            continue
        key = cell.key()
        if key not in seen:
            seen.add(key)
            unique.append(cell)
    return unique


def write_bench(
    path: Union[str, Path],
    report: SweepReport,
    grids: Sequence[str],
    serial_wall_seconds: Optional[float] = None,
    verified_identical: Optional[bool] = None,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Write the ``BENCH_sweep.json`` perf snapshot; returns the payload.

    ``speedup`` is measured (parallel vs. a real serial run) when
    ``serial_wall_seconds`` is given, otherwise estimated from summed
    per-cell times. Schema: :data:`BENCH_SCHEMA`.
    """
    walls = sorted(out.wall_seconds for out in report.outcomes)
    speedup = None
    if serial_wall_seconds is not None and report.wall_seconds > 0:
        speedup = serial_wall_seconds / report.wall_seconds
    payload: Dict[str, object] = {
        "schema": BENCH_SCHEMA,
        "grids": list(grids),
        "cells": len(report.outcomes),
        "workers": report.workers,
        "cpu_count": os.cpu_count(),
        "mode": report.mode,
        "wall_seconds": round(report.wall_seconds, 4),
        "serial_wall_seconds": (
            None if serial_wall_seconds is None else round(serial_wall_seconds, 4)
        ),
        "speedup": None if speedup is None else round(speedup, 3),
        "speedup_estimate": round(report.speedup_estimate, 3),
        "sims_per_minute": round(report.sims_per_minute, 2),
        "cache_hit_rate": round(report.cache_hit_rate, 4),
        "cell_seconds_total": round(report.cell_seconds, 4),
        "cell_seconds_max": round(walls[-1], 4) if walls else 0.0,
        "cell_seconds_median": round(walls[len(walls) // 2], 4) if walls else 0.0,
        "failures": report.failures(),
        "verified_identical": verified_identical,
        "cells_detail": [
            {
                "label": out.cell.label,
                "wall_seconds": round(out.wall_seconds, 4),
                "cache_hit": out.cache_hit,
                "ok": out.ok,
            }
            for out in report.outcomes
        ],
    }
    if extra:
        payload.update(extra)
    out_path = Path(path)
    if out_path.parent != Path(""):
        out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload
