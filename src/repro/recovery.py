"""End-to-end violation recovery — close the loop after containment.

Border Control's containment story (quarantine + sandbox downgrade,
§3.2.3/§3.2.4) leaves the interrupted workload dead in the water. This
subsystem adds the *recover* and *degrade* stages of the pipeline:

* **Epoch-fenced reset** — every attach and every reset advances the
  sandbox's attach epoch (:meth:`BorderControl.advance_epoch`);
  :meth:`Kernel.reset_accelerator` advances the epoch *before* touching
  the device, so anything the pre-reset hardware still replays — queued
  writebacks, half-issued DMA — carries a stale epoch and dies at the
  border (``stale_epoch_rejections``) without a permission lookup.
* **Kernel retry with CPU fallback** — :class:`RecoveryManager` resets
  the device and relaunches the victim's interrupted kernel under a
  bounded retry budget with exponential backoff; when the budget is
  exhausted the kernel trace is flattened into a :class:`CPUProgram`
  and executed on the trusted CPU — slower, but the process completes
  instead of dying.
* **Violation-storm circuit breaker** — ``Kernel.violation_storm_threshold``
  escalates repeated strikes to a permanent quarantine plus
  ``KILL_PROCESS``; the recovery loop reports those victims as
  explicitly ``killed`` rather than lost.
* **Multi-tenant forward progress** — an unaffected CPU tenant keeps
  iterating through the whole recovery window; the harness asserts its
  per-iteration slowdown stays within tolerance.

The campaign (:func:`run_recovery_campaign`) sweeps scenarios —
``hang``, ``rogue-write``, ``reset-replay``, ``storm`` — across
workloads with per-cell sub-seeds, mirroring the chaos campaign's
determinism contract: the same seed reproduces the same
:meth:`RecoveryReport.signature`, serial or parallel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.permissions import Perm
from repro.cpu.core import CPUProgram
from repro.errors import AcceleratorDisabledError, AcceleratorHangError
from repro.faults import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    HangingAccelerator,
    RecordingPort,
    ReplayBuffer,
    derive_seed,
)
from repro.accel.gpu import GPUGeometry, KernelTrace
from repro.mem.address import BLOCK_SIZE, PAGE_SIZE
from repro.osmodel.kernel import ViolationPolicy
from repro.sim.config import GPUThreading, SafetyMode, SystemConfig
from repro.sim.runner import _SECRET, RunResult, collect_result
from repro.sim.system import GPU_ID, System
from repro.workloads.base import WorkloadSpec, generate_trace
from repro.workloads.registry import get_workload

__all__ = [
    "RecoveryPolicy",
    "RecoveryManager",
    "RecoveryRunResult",
    "RecoveryReport",
    "trace_to_cpu_program",
    "run_recovery_single",
    "run_recovery_campaign",
    "recovery_grid",
    "recovery_cell_key",
    "recovery_result_to_dict",
    "recovery_result_from_dict",
    "DEFAULT_RECOVERY_WORKLOADS",
    "RECOVERY_SCENARIOS",
]


#: Workloads a recovery campaign sweeps by default.
DEFAULT_RECOVERY_WORKLOADS: Tuple[str, ...] = ("backprop", "bfs")

#: The disruption scenarios a campaign exercises. Each cell stages one
#: scenario and asserts the matching end state (see EXPECTED_OUTCOMES).
RECOVERY_SCENARIOS: Tuple[str, ...] = (
    "hang",
    "rogue-write",
    "reset-replay",
    "fallback",
    "storm",
)

#: The outcomes each scenario is allowed to end in. ``completed`` never
#: appears: a cell whose disruption failed to trigger tests nothing and
#: is reported as a harness failure. ``fallback`` stages a device that
#: re-wedges after every reset, so the retry budget must exhaust and the
#: victim must degrade to the CPU.
EXPECTED_OUTCOMES: Dict[str, Tuple[str, ...]] = {
    "hang": ("retried", "fallback"),
    "rogue-write": ("retried", "fallback"),
    "reset-replay": ("retried", "fallback"),
    "fallback": ("fallback",),
    "storm": ("killed",),
}


@dataclass(frozen=True)
class RecoveryPolicy:
    """How far the kernel goes to keep a victim process alive."""

    max_retries: int = 3
    retry_backoff_cycles: float = 5_000.0  # doubles per failed attempt
    cpu_fallback: bool = True
    cpu_op_gap_cycles: int = 2  # compute gap per fallback CPU op


def trace_to_cpu_program(trace: KernelTrace, gap_cycles: int = 2) -> CPUProgram:
    """Flatten a GPU kernel trace into a sequential CPU instruction stream.

    The degraded path: every wavefront's operations run back-to-back on
    one in-order core — functionally equivalent work, none of the GPU's
    latency-hiding parallelism.
    """
    ops = []
    for cu in trace.cu_wavefronts:
        for wavefront in cu:
            for _gap, vaddr, write in wavefront:
                ops.append((gap_cycles, vaddr, write))
    return CPUProgram(name=f"fallback-{trace.name}", ops=ops)


class RecoveryManager:
    """Drives the reset → retry → degrade sequence for one victim."""

    def __init__(
        self,
        system: System,
        policy: RecoveryPolicy = RecoveryPolicy(),
        replay_hook=None,
        observer=None,
    ) -> None:
        self.system = system
        self.policy = policy
        # Called with the pre-reset epoch right after every reset; the
        # reset-replay scenario uses it to drain recorded writebacks at
        # the stale epoch (all of which must die at the fence).
        self.replay_hook = replay_hook
        # Stage observer (repro.verify): called with (stage, info) at each
        # step of the detect → contain → recover → degrade pipeline
        # ("reset", "relaunch", "retry", "outcome"). Pure observation.
        self.observer = observer
        self.backoff_ticks = system.gpu_clock.cycles_to_ticks(
            policy.retry_backoff_cycles
        )
        stats = system.stats.child("recovery")
        self._attempted = stats.counter("attempted")
        self._succeeded = stats.counter("succeeded")
        self._fallbacks = stats.counter("fallbacks")
        self._retries = stats.counter("retries")
        self._recovery_ticks = stats.counter("recovery_ticks")
        # True while a (re)launched kernel is outstanding; the harness
        # watchdog only intervenes inside that window.
        self.launch_active = False

    def _observe(self, stage: str, **info) -> None:
        if self.observer is not None:
            self.observer(stage, info)

    # The recovery loop is a simulation generator so retries, backoff
    # waits, and the fallback execution all consume simulated time and
    # interleave with unaffected tenants.

    def recover_g(self, proc, trace: KernelTrace):
        """Recover one interrupted kernel; returns the outcome string:
        ``retried`` | ``fallback`` | ``killed`` | ``failed``."""
        system = self.system
        engine = system.engine
        kernel = system.kernel
        start = engine.now
        backoff = self.backoff_ticks
        for attempt in range(1, self.policy.max_retries + 1):
            if not proc.alive:
                break
            self._attempted.inc()
            old_epoch = getattr(system.gpu, "epoch", 0)
            kernel.reset_accelerator(GPU_ID)
            self._observe("reset", attempt=attempt, stale_epoch=old_epoch)
            if self.replay_hook is not None:
                # The pre-reset device drains its queues *now*, under the
                # epoch that just became stale.
                yield from self.replay_hook(old_epoch)
            if not proc.alive:
                break
            try:
                done = system.gpu.launch(proc.asid, trace)
            except AcceleratorDisabledError:
                done = None
            if done is not None:
                self._observe("relaunch", attempt=attempt)
                self.launch_active = True
                yield done
                self.launch_active = False
                if (
                    system.gpu.enabled
                    and not kernel.is_quarantined(GPU_ID)
                    and proc.alive
                ):
                    self._succeeded.inc()
                    self._recovery_ticks.inc(engine.now - start)
                    self._observe("outcome", outcome="retried")
                    return "retried"
            if not proc.alive:
                break
            if attempt < self.policy.max_retries:
                self._retries.inc()
                self._observe("retry", attempt=attempt)
                if backoff:
                    yield backoff
                backoff *= 2
        self._recovery_ticks.inc(engine.now - start)
        if not proc.alive:
            self._observe("outcome", outcome="killed")
            return "killed"
        if self.policy.cpu_fallback:
            # Degrade: the retry budget is spent; finish the work on the
            # trusted CPU so the process completes instead of dying.
            self._fallbacks.inc()
            program = trace_to_cpu_program(trace, self.policy.cpu_op_gap_cycles)
            yield from system.cpu.run_program(proc, program)
            self._observe("outcome", outcome="fallback")
            return "fallback"
        self._observe("outcome", outcome="failed")
        return "failed"


# ---------------------------------------------------------------------------
# single recovery run
# ---------------------------------------------------------------------------


def recovery_fault_specs(scenario: str) -> List[FaultSpec]:
    """The seeded injection rules for one scenario. ``hang`` needs none
    (the wedge comes from :class:`HangingAccelerator`); the others drive
    harness-interpreted kinds at dedicated sites."""
    if scenario == "rogue-write":
        return [FaultSpec(FaultKind.ROGUE_WRITE, "accel.rogue", 1.0, max_count=3)]
    if scenario == "reset-replay":
        return [
            FaultSpec(FaultKind.RESET_REPLAY, "border.replay", 1.0, max_count=32)
        ]
    if scenario == "storm":
        return [FaultSpec(FaultKind.ROGUE_WRITE, "accel.rogue", 1.0, max_count=12)]
    return []


@dataclass
class RecoveryRunResult:
    """One recovery run: measurements plus the recovery verdicts."""

    workload: str
    scenario: str
    seed: int
    result: RunResult
    plan_signature: Tuple[Tuple[str, int, str], ...]
    fault_counts: Dict[str, int]
    trace_ops: int
    outcome: str  # completed | retried | fallback | killed | failed
    victim_alive: bool
    victim_exit_reason: Optional[str]
    rogue_writes: int
    rogue_conf_escapes: int
    rogue_integ_escapes: int
    replayed: int
    replay_commits: int
    secret_intact: bool
    resets: int
    watchdog_fires: int
    tenant_iterations: int
    tenant_baseline_ticks: int
    tenant_max_iteration_ticks: int
    tenant_tolerance: float = 8.0

    @property
    def tenant_slowdown(self) -> float:
        """Worst contended tenant iteration relative to its solo baseline."""
        if not self.tenant_baseline_ticks:
            return 0.0
        return self.tenant_max_iteration_ticks / self.tenant_baseline_ticks

    def invariant_failures(self) -> List[str]:
        """Empty iff detect → contain → recover → degrade all held."""
        failures: List[str] = []
        if self.rogue_conf_escapes:
            failures.append(
                f"confidentiality: {self.rogue_conf_escapes} rogue read(s) "
                "returned data during recovery"
            )
        if self.rogue_integ_escapes:
            failures.append(
                f"integrity: {self.rogue_integ_escapes} rogue write(s) committed"
            )
        if self.replay_commits:
            failures.append(
                f"integrity: {self.replay_commits} stale-epoch replay(s) committed"
            )
        if not self.secret_intact:
            failures.append("integrity: victim page bytes changed")
        if self.outcome == "completed":
            failures.append(
                f"harness: scenario {self.scenario!r} never disrupted the kernel"
            )
        elif self.outcome not in EXPECTED_OUTCOMES.get(self.scenario, ()):
            failures.append(
                f"recovery: outcome {self.outcome!r} not in "
                f"{EXPECTED_OUTCOMES.get(self.scenario, ())} for {self.scenario!r}"
            )
        if self.scenario == "reset-replay" and not self.result.stale_epoch_rejections:
            failures.append(
                "epoch fence: no stale-epoch rejections recorded under replay"
            )
        if self.tenant_iterations == 0:
            failures.append("forward progress: tenant completed no iterations")
        elif self.tenant_slowdown > self.tenant_tolerance:
            failures.append(
                f"forward progress: tenant slowdown {self.tenant_slowdown:.1f}x "
                f"exceeds {self.tenant_tolerance:.1f}x tolerance"
            )
        return failures

    @property
    def ok(self) -> bool:
        return not self.invariant_failures()

    def signature(self) -> Tuple:
        """Everything that must replay identically for the same seed."""
        return (
            self.workload,
            self.scenario,
            self.seed,
            self.plan_signature,
            self.outcome,
            self.victim_alive,
            self.result.ticks,
            self.result.mem_ops,
            self.result.blocked_ops,
            self.result.quarantines,
            self.result.recoveries_attempted,
            self.result.recoveries_succeeded,
            self.result.fallback_executions,
            self.result.recovery_ticks,
            self.result.stale_epoch_rejections,
            self.rogue_writes,
            self.rogue_conf_escapes,
            self.rogue_integ_escapes,
            self.replayed,
            self.replay_commits,
            self.secret_intact,
            self.resets,
            self.watchdog_fires,
            self.tenant_iterations,
            self.tenant_baseline_ticks,
            self.tenant_max_iteration_ticks,
        )


def run_recovery_single(
    workload: str,
    scenario: str,
    seed: int = 1234,
    safety: SafetyMode = SafetyMode.BC_BCC,
    threading: GPUThreading = GPUThreading.MODERATELY,
    ops_scale: float = 1.0,
    config: Optional[SystemConfig] = None,
    workload_spec: Optional[WorkloadSpec] = None,
    policy: Optional[RecoveryPolicy] = None,
    watchdog_cycles: float = 50_000.0,
    quarantine_backoff_cycles: float = 20_000.0,
    rogue_interval_cycles: float = 250.0,
    storm_threshold: int = 3,
    tenant_tolerance: float = 8.0,
    max_stalled_fires: int = 8,
    observer=None,
) -> RecoveryRunResult:
    """One seeded end-to-end recovery run.

    A victim process launches the workload's GPU kernel and is disrupted
    per ``scenario``; the harness then drives the full recovery pipeline
    — watchdog detection, quarantine containment, epoch-fenced reset,
    bounded retry, CPU fallback or circuit-breaker kill — while a secret
    holder (never granted to the accelerator) and an unaffected CPU
    tenant monitor confidentiality/integrity and forward progress.
    """
    if scenario not in RECOVERY_SCENARIOS:
        raise ValueError(f"unknown recovery scenario {scenario!r}")
    if not safety.uses_border_control:
        raise ValueError("recovery runs require a Border Control configuration")
    workload_spec = workload_spec or get_workload(workload)
    policy = policy or RecoveryPolicy()
    cfg = (config or SystemConfig()).with_safety(safety).with_threading(threading)
    system = System(cfg, violation_policy=ViolationPolicy.QUARANTINE)
    engine = system.engine
    kernel = system.kernel
    ticks_of = system.gpu_clock.cycles_to_ticks
    kernel.quarantine_backoff_ticks = ticks_of(quarantine_backoff_cycles)
    if scenario == "storm":
        kernel.violation_storm_threshold = storm_threshold

    plan = FaultPlan(seed, recovery_fault_specs(scenario))
    border = system.border_port
    assert border is not None and system.gpu_l2 is not None

    hang = scenario in ("hang", "reset-replay", "fallback")
    if hang:
        system.gpu = HangingAccelerator(
            engine,
            system.gpu_clock,
            GPUGeometry(num_cus=cfg.num_cus, l1_tlb_entries=cfg.gpu_l1_tlb_entries),
            system.gpu.path,
            stats=system.stats.child("gpu"),
            accel_id=GPU_ID,
        )

    replay_buffer: Optional[ReplayBuffer] = None
    if scenario == "reset-replay":
        replay_buffer = ReplayBuffer()
        system.gpu_l2.downstream = RecordingPort(border, replay_buffer)

    # The secret holder: a process never granted to the accelerator.
    secret_holder = system.new_process("secret-holder")
    secret_vaddr = kernel.mmap(secret_holder, 1, Perm.RW)
    kernel.proc_write(secret_holder, secret_vaddr, _SECRET)
    translation = secret_holder.page_table.translate(secret_vaddr)
    assert translation is not None
    secret_paddr = translation.ppn * PAGE_SIZE

    # The victim: the GPU workload whose kernel gets interrupted.
    victim = system.new_process(workload_spec.name)
    system.attach_process(victim)
    trace = generate_trace(
        workload_spec, kernel, victim, threading, seed=seed, ops_scale=ops_scale
    )
    if hang:
        system.gpu._ops_until_hang = max(8, trace.total_mem_ops // 3)

    # The unaffected tenant: CPU-only work whose forward progress must
    # not depend on the victim's recovery. Baseline measured solo,
    # before any disruption exists.
    tenant = system.new_process("tenant")
    tenant_vaddr = kernel.mmap(tenant, 4, Perm.RW)
    tenant_program = CPUProgram(
        name="tenant-loop",
        ops=CPUProgram.memset(tenant_vaddr, 4 * PAGE_SIZE, gap=4).ops
        + CPUProgram.memscan(tenant_vaddr, 4 * PAGE_SIZE, gap=4).ops,
    )
    tenant_baseline = system.cpu.execute(tenant, tenant_program)
    tenant_stats = {"iterations": 0, "max_ticks": 0}

    replay_stats = {"replayed": 0, "commits": 0}
    replay_injector = plan.for_site("border.replay")

    def replay_stale(old_epoch: int):
        """Drain the pre-reset device's recorded queue at the old epoch."""
        writes = list(replay_buffer.writes) if replay_buffer else []
        if not writes:
            # Nothing crossed the border before the wedge; the queued DMA
            # burst still exists — model it as one arbitrary stale write.
            writes = [(secret_paddr, BLOCK_SIZE, b"\xaa" * BLOCK_SIZE)]
        for addr, size, data in writes:
            spec = replay_injector.draw(write=True)
            if spec is None:
                continue
            replay_stats["replayed"] += 1
            committed = yield from border.access(
                addr,
                size or BLOCK_SIZE,
                True,
                data or b"\x00" * (size or BLOCK_SIZE),
                epoch=old_epoch,
            )
            if committed is not None:
                replay_stats["commits"] += 1

    def rearm_wedge(old_epoch: int):
        # The post-reset device is still broken: it wedges again a third
        # of the way into every relaunch, so the retry budget exhausts
        # and recovery must degrade to the CPU.
        system.gpu._ops_until_hang = max(8, trace.total_mem_ops // 3)
        return
        yield  # pragma: no cover - empty generator

    post_reset_hooks = {"reset-replay": replay_stale, "fallback": rearm_wedge}
    manager = RecoveryManager(
        system,
        policy,
        replay_hook=post_reset_hooks.get(scenario),
        observer=observer,
    )

    resolved = [False]
    outcome_box = ["failed"]
    start = engine.now
    end_time = [start]

    def victim_driver():
        try:
            manager.launch_active = True
            done = system.gpu.launch(victim.asid, trace)
        except AcceleratorDisabledError:
            done = None
        if done is not None:
            yield done
        manager.launch_active = False
        healthy = (
            done is not None
            and system.gpu.enabled
            and not kernel.is_quarantined(GPU_ID)
            and victim.alive
        )
        if healthy:
            outcome_box[0] = "completed"
        else:
            outcome_box[0] = yield from manager.recover_g(victim, trace)
        resolved[0] = True
        end_time[0] = engine.now

    # The rogue driver: the misbehaving device firing border requests at
    # the secret holder's page — real violations, really sanctioned
    # (unlike the chaos prober, this models the accelerator itself).
    # Injections are paced by *device progress*, not wall time: one
    # eligible shot per ``ops_step`` of retired kernel work, so short
    # traces and long ones see proportionally timed rogue bursts.
    rogue_stats = {"writes": 0, "conf": 0, "integ": 0}
    rogue_injector = plan.for_site("accel.rogue")
    rogue_poll = max(1, ticks_of(rogue_interval_cycles))
    ops_step = max(4, trace.total_mem_ops // 8)
    next_fire = [ops_step]

    def rogue_driver():
        while not resolved[0]:
            yield rogue_poll
            if resolved[0]:
                return
            if not system.gpu.enabled or not victim.alive:
                continue
            if system.gpu.mem_ops < next_fire[0]:
                continue
            next_fire[0] = system.gpu.mem_ops + ops_step
            spec = rogue_injector.draw(write=True)
            if spec is None:
                continue
            rogue_stats["writes"] += 1
            data = yield from border.access(secret_paddr, BLOCK_SIZE, False)
            if data is not None:
                rogue_stats["conf"] += 1
            committed = yield from border.access(
                secret_paddr, BLOCK_SIZE, True, b"\x66" * BLOCK_SIZE
            )
            if committed is not None:
                rogue_stats["integ"] += 1

    def tenant_driver():
        while not resolved[0]:
            t0 = engine.now
            yield from system.cpu.run_program(tenant, tenant_program)
            elapsed = engine.now - t0
            tenant_stats["iterations"] += 1
            tenant_stats["max_ticks"] = max(tenant_stats["max_ticks"], elapsed)

    # Progress watchdog: quarantines the device when an outstanding
    # launch stops issuing (a wedge the violation path cannot see).
    watchdog_ticks = max(1, ticks_of(watchdog_cycles))
    sup = {"fires": 0, "last": -1, "stalled": 0}

    def supervisor():
        while not resolved[0]:
            yield watchdog_ticks
            if resolved[0]:
                return
            if not manager.launch_active:
                continue
            progress = system.gpu.mem_ops + system.gpu.blocked_ops
            if progress != sup["last"]:
                sup["last"] = progress
                sup["stalled"] = 0
                continue
            sup["fires"] += 1
            if kernel.quarantine_accelerator(
                GPU_ID, "recovery watchdog: accelerator stopped making progress"
            ):
                continue
            # Already quarantined yet still wedged: force the release.
            if hasattr(system.gpu, "disable"):
                system.gpu.disable()
            sup["stalled"] += 1
            if sup["stalled"] >= max_stalled_fires:
                raise AcceleratorHangError(GPU_ID, sup["fires"])

    engine.process(victim_driver(), name="recovery-victim")
    if scenario in ("rogue-write", "storm"):
        engine.process(rogue_driver(), name="recovery-rogue")
    engine.process(tenant_driver(), name="recovery-tenant")
    engine.process(supervisor(), name="recovery-supervisor")
    engine.run()

    ticks = end_time[0] - start
    system.gpu.last_kernel_ticks = ticks
    result = collect_result(system, workload_spec.name, trace, ticks)
    result.faults_injected = plan.total_injected
    result.watchdog_fires = sup["fires"]

    secret_intact = system.phys.read(secret_paddr, PAGE_SIZE) == _SECRET
    return RecoveryRunResult(
        workload=workload_spec.name,
        scenario=scenario,
        seed=seed,
        result=result,
        plan_signature=plan.signature(),
        fault_counts=plan.counts_by_kind(),
        trace_ops=trace.total_mem_ops,
        outcome=outcome_box[0],
        victim_alive=victim.alive,
        victim_exit_reason=victim.exit_reason,
        rogue_writes=rogue_stats["writes"],
        rogue_conf_escapes=rogue_stats["conf"],
        rogue_integ_escapes=rogue_stats["integ"],
        replayed=replay_stats["replayed"],
        replay_commits=replay_stats["commits"],
        secret_intact=secret_intact,
        resets=system.stats.get("kernel.resets"),
        watchdog_fires=sup["fires"],
        tenant_iterations=tenant_stats["iterations"],
        tenant_baseline_ticks=tenant_baseline,
        tenant_max_iteration_ticks=tenant_stats["max_ticks"],
        tenant_tolerance=tenant_tolerance,
    )


# ---------------------------------------------------------------------------
# campaign
# ---------------------------------------------------------------------------


@dataclass
class RecoveryReport:
    """A campaign's verdicts across every (workload, scenario) cell."""

    seed: int
    runs: List[RecoveryRunResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(run.ok for run in self.runs)

    @property
    def stale_epoch_rejections(self) -> int:
        return sum(run.result.stale_epoch_rejections for run in self.runs)

    def invariant_failures(self) -> List[str]:
        out: List[str] = []
        for run in self.runs:
            for failure in run.invariant_failures():
                out.append(f"{run.workload} [{run.scenario}]: {failure}")
        return out

    def signature(self) -> Tuple:
        return tuple(run.signature() for run in self.runs)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "failures": self.invariant_failures(),
            "stale_epoch_rejections": self.stale_epoch_rejections,
            "runs": [
                {
                    "workload": run.workload,
                    "scenario": run.scenario,
                    "seed": run.seed,
                    "ok": run.ok,
                    "outcome": run.outcome,
                    "victim_alive": run.victim_alive,
                    "victim_exit_reason": run.victim_exit_reason,
                    "recoveries_attempted": run.result.recoveries_attempted,
                    "recoveries_succeeded": run.result.recoveries_succeeded,
                    "fallback_executions": run.result.fallback_executions,
                    "recovery_ticks": run.result.recovery_ticks,
                    "stale_epoch_rejections": run.result.stale_epoch_rejections,
                    "quarantines": run.result.quarantines,
                    "resets": run.resets,
                    "rogue_writes": run.rogue_writes,
                    "replayed": run.replayed,
                    "secret_intact": run.secret_intact,
                    "tenant_iterations": run.tenant_iterations,
                    "tenant_slowdown": round(run.tenant_slowdown, 3),
                    "ticks": run.result.ticks,
                }
                for run in self.runs
            ],
        }

    def render(self) -> str:
        """Human-readable recovery report."""
        lines = [
            f"recovery campaign (seed {self.seed}): "
            f"{len(self.runs)} runs, {'PASS' if self.ok else 'FAIL'}",
            f"{'workload':<12} {'scenario':<14} {'outcome':<10} {'att':>3} "
            f"{'ok':>3} {'fb':>3} {'stale':>5} {'quar':>4} {'tenant':>7}  status",
        ]
        for run in self.runs:
            lines.append(
                f"{run.workload:<12} {run.scenario:<14} {run.outcome:<10} "
                f"{run.result.recoveries_attempted:>3} "
                f"{run.result.recoveries_succeeded:>3} "
                f"{run.result.fallback_executions:>3} "
                f"{run.result.stale_epoch_rejections:>5} "
                f"{run.result.quarantines:>4} "
                f"{run.tenant_slowdown:>6.1f}x  "
                f"{'ok' if run.ok else 'FAIL'}"
            )
        lines.append(
            "recovery: "
            f"{sum(r.result.recoveries_attempted for r in self.runs)} attempts, "
            f"{sum(r.result.recoveries_succeeded for r in self.runs)} succeeded, "
            f"{sum(r.result.fallback_executions for r in self.runs)} CPU fallbacks, "
            f"{self.stale_epoch_rejections} stale-epoch rejections, "
            f"{sum(1 for r in self.runs if r.outcome == 'killed')} storm kill(s)"
        )
        for failure in self.invariant_failures():
            lines.append(f"  FAIL {failure}")
        return "\n".join(lines)


def recovery_grid(
    workloads: Optional[Sequence[str]] = None,
    scenarios: Optional[Sequence[str]] = None,
    seed: int = 1234,
    ops_scale: float = 1.0,
    quick: bool = False,
) -> List[Dict[str, object]]:
    """The campaign's declarative grid: one kwargs dict per run, each
    sub-seeded from ``(seed, workload, scenario)`` so the report is a
    pure function of its arguments regardless of execution order."""
    workloads = list(workloads or DEFAULT_RECOVERY_WORKLOADS)
    scenarios = list(scenarios or RECOVERY_SCENARIOS)
    if quick:
        ops_scale = min(ops_scale, 0.25)
        workloads = workloads[:1]
    cells: List[Dict[str, object]] = []
    for workload in workloads:
        for scenario in scenarios:
            cells.append(
                dict(
                    workload=workload,
                    scenario=scenario,
                    seed=derive_seed(seed, workload, scenario),
                    ops_scale=ops_scale,
                )
            )
    return cells


def _recovery_cell(kwargs: Dict[str, object]) -> RecoveryRunResult:
    """Picklable worker entry point for one recovery grid cell."""
    return run_recovery_single(**kwargs)  # type: ignore[arg-type]


def recovery_cell_key(cell: Dict[str, object]) -> str:
    """Stable journal/bundle key for one recovery grid cell."""
    import hashlib
    import json

    blob = json.dumps(
        {
            "workload": cell["workload"],
            "scenario": cell["scenario"],
            "seed": cell["seed"],
            "ops_scale": cell["ops_scale"],
        },
        sort_keys=True,
    )
    return "recovery-" + hashlib.sha256(blob.encode()).hexdigest()[:24]


def _recovery_cell_label(cell: Dict[str, object]) -> str:
    return "{}[{}]".format(cell["workload"], cell["scenario"])


def recovery_result_to_dict(run: RecoveryRunResult) -> Dict[str, object]:
    """Lossless JSON form of one recovery run (journal checkpointing)."""
    from repro.experiments.common import _result_to_dict  # local: avoids cycle

    return {
        "workload": run.workload,
        "scenario": run.scenario,
        "seed": run.seed,
        "result": _result_to_dict(run.result),
        "plan_signature": [list(sig) for sig in run.plan_signature],
        "fault_counts": dict(run.fault_counts),
        "trace_ops": run.trace_ops,
        "outcome": run.outcome,
        "victim_alive": run.victim_alive,
        "victim_exit_reason": run.victim_exit_reason,
        "rogue_writes": run.rogue_writes,
        "rogue_conf_escapes": run.rogue_conf_escapes,
        "rogue_integ_escapes": run.rogue_integ_escapes,
        "replayed": run.replayed,
        "replay_commits": run.replay_commits,
        "secret_intact": run.secret_intact,
        "resets": run.resets,
        "watchdog_fires": run.watchdog_fires,
        "tenant_iterations": run.tenant_iterations,
        "tenant_baseline_ticks": run.tenant_baseline_ticks,
        "tenant_max_iteration_ticks": run.tenant_max_iteration_ticks,
        "tenant_tolerance": run.tenant_tolerance,
    }


def recovery_result_from_dict(data: Dict[str, object]) -> RecoveryRunResult:
    """Inverse of :func:`recovery_result_to_dict`."""
    from repro.experiments.common import _result_from_dict  # local: avoids cycle

    return RecoveryRunResult(
        workload=data["workload"],  # type: ignore[arg-type]
        scenario=data["scenario"],  # type: ignore[arg-type]
        seed=data["seed"],  # type: ignore[arg-type]
        result=_result_from_dict(data["result"]),  # type: ignore[arg-type]
        plan_signature=tuple(
            tuple(sig) for sig in data["plan_signature"]  # type: ignore[union-attr]
        ),
        fault_counts=dict(data["fault_counts"]),  # type: ignore[arg-type]
        trace_ops=data["trace_ops"],  # type: ignore[arg-type]
        outcome=data["outcome"],  # type: ignore[arg-type]
        victim_alive=data["victim_alive"],  # type: ignore[arg-type]
        victim_exit_reason=data["victim_exit_reason"],  # type: ignore[arg-type]
        rogue_writes=data["rogue_writes"],  # type: ignore[arg-type]
        rogue_conf_escapes=data["rogue_conf_escapes"],  # type: ignore[arg-type]
        rogue_integ_escapes=data["rogue_integ_escapes"],  # type: ignore[arg-type]
        replayed=data["replayed"],  # type: ignore[arg-type]
        replay_commits=data["replay_commits"],  # type: ignore[arg-type]
        secret_intact=data["secret_intact"],  # type: ignore[arg-type]
        resets=data["resets"],  # type: ignore[arg-type]
        watchdog_fires=data["watchdog_fires"],  # type: ignore[arg-type]
        tenant_iterations=data["tenant_iterations"],  # type: ignore[arg-type]
        tenant_baseline_ticks=data["tenant_baseline_ticks"],  # type: ignore[arg-type]
        tenant_max_iteration_ticks=data["tenant_max_iteration_ticks"],  # type: ignore[arg-type]
        tenant_tolerance=data.get("tenant_tolerance", 8.0),  # type: ignore[arg-type]
    )


def _describe_recovery_task(cell) -> Optional[Dict[str, object]]:
    """Repro-bundle recipe for a recovery cell (``replay-cell`` consumes it)."""
    if not isinstance(cell, dict):
        return None
    return {
        "kind": "recovery",
        "cell": {
            "workload": cell["workload"],
            "scenario": cell["scenario"],
            "seed": cell["seed"],
            "ops_scale": cell["ops_scale"],
        },
    }


def run_recovery_campaign(
    workloads: Optional[Sequence[str]] = None,
    scenarios: Optional[Sequence[str]] = None,
    seed: int = 1234,
    ops_scale: float = 1.0,
    quick: bool = False,
    config: Optional[SystemConfig] = None,
    workers: Optional[int] = 1,
    policy=None,
    journal=None,
    should_abort=None,
) -> RecoveryReport:
    """Sweep recovery scenarios across workloads; returns the report.

    Mirrors :func:`repro.sim.runner.run_chaos_campaign`: per-cell
    sub-seeding makes the report signature-identical whatever the
    execution order or worker count; with a ``journal`` every finished
    run is checkpointed and an interrupted campaign resumes with zero
    re-execution. ``policy`` here is the *supervisor* policy forwarded
    to :func:`repro.sweep.fan_out` (the recovery retry policy is a
    per-run :class:`RecoveryPolicy`).
    """
    cells = recovery_grid(
        workloads, scenarios, seed=seed, ops_scale=ops_scale, quick=quick
    )
    if config is not None:
        for cell in cells:
            cell["config"] = config
    report = RecoveryReport(seed=seed)

    runs: List[Optional[RecoveryRunResult]] = [None] * len(cells)
    pending: List[int] = []
    for i, cell in enumerate(cells):
        entry = journal.completed(recovery_cell_key(cell)) if journal else None
        if entry is not None and entry.get("result") is not None:
            runs[i] = recovery_result_from_dict(entry["result"])
        else:
            pending.append(i)

    def record(task_index: int, ok: bool, error, wall: float, result) -> None:
        if journal is None:
            return
        cell = cells[pending[task_index]]
        journal.record(
            recovery_cell_key(cell),
            {
                "label": _recovery_cell_label(cell),
                "ok": ok,
                "error": error,
                "wall_seconds": round(wall, 6),
                "cacheable": False,
                "result": recovery_result_to_dict(result) if ok else None,
            },
        )

    if workers is not None and workers <= 1:
        import time as _time

        from repro.errors import JobCancelled

        for task_index, i in enumerate(pending):
            if should_abort is not None and should_abort():
                raise JobCancelled("recovery campaign aborted between cells")
            t0 = _time.perf_counter()
            result = _recovery_cell(cells[i])
            runs[i] = result
            record(task_index, True, None, _time.perf_counter() - t0, result)
        report.runs.extend(runs)  # type: ignore[arg-type]
        return report
    from repro.sweep import SweepError, fan_out  # local: avoids cycle

    def on_outcome(task_index: int, out) -> None:
        record(task_index, out.ok, out.error, out.wall_seconds, out.value)

    def dispatch():
        return fan_out(
            _recovery_cell,
            [cells[i] for i in pending],
            workers=workers,
            label_of=_recovery_cell_label,
            policy=policy,
            describe_task=_describe_recovery_task,
            on_outcome=on_outcome,
            should_abort=should_abort,
        )

    if pending:
        if journal is not None:
            with journal.signal_guard():
                outcomes, _mode = dispatch()
        else:
            outcomes, _mode = dispatch()
        for i, out in zip(pending, outcomes):
            runs[i] = out.value
        if should_abort is not None and should_abort():
            from repro.errors import JobCancelled

            raise JobCancelled("recovery campaign aborted mid-sweep")
        failures = [out.error for out in outcomes if out.error]
        if failures:
            raise SweepError(
                failures, outcomes=[run for run in runs if run is not None]
            )
    report.runs.extend(runs)  # type: ignore[arg-type]
    return report
