"""Experiment drivers — one module per table/figure of the paper.

========  =======================================================
Module    Regenerates
========  =======================================================
tables    Table 1 (approach comparison), Table 2 (configurations
          under study), Table 3 (simulation configuration)
fig4      Fig. 4a/4b — runtime overhead vs. the unsafe baseline
fig5      Fig. 5 — border-crossing requests per cycle
fig6      Fig. 6 — BCC miss ratio vs. size and pages/entry
fig7      Fig. 7 — overhead vs. permission-downgrade rate
storage   §5.2.3 — Protection Table / BCC space overheads
========  =======================================================

Every driver exposes ``run(...)`` returning a plain-data result object
with a ``render()`` method producing the text table/series, plus the
paper's reference numbers for side-by-side comparison. Results are
memoized in-process and cached on disk (``.exp_cache/``), so benchmarks
and report generation don't re-simulate unchanged configurations.
"""

from repro.experiments import (
    fig4,
    fig5,
    fig6,
    fig7,
    storage,
    tables,
    workload_table,
)
from repro.experiments.common import cached_run, clear_cache

__all__ = [
    "cached_run",
    "clear_cache",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "storage",
    "tables",
    "workload_table",
]
