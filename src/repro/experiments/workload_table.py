"""Workload characterization table (companion to §5.1's workload list).

The paper describes its Rodinia workloads qualitatively ("regular memory
access patterns (e.g., lud) to irregular, data-dependent accesses (e.g.,
bfs)"). This driver renders the measured characteristics of our proxies
so a reader can audit the calibration: cold/locality mixture, cache hit
ratios, border traffic, and DRAM pressure under the Border Control-BCC
configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.experiments.common import cached_run, text_table
from repro.sim.config import GPUThreading, SafetyMode
from repro.sim.runner import RunResult
from repro.workloads.registry import WORKLOADS, workload_names

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from repro.sweep import Cell

__all__ = ["WorkloadTable", "grid", "run"]


@dataclass
class WorkloadTable:
    threading: GPUThreading
    results: Dict[str, RunResult] = field(default_factory=dict)
    #: Workloads whose cell failed under ``allow_partial``.
    missing: List[str] = field(default_factory=list)

    def render(self) -> str:
        rows: List[List[str]] = []
        for name, res in self.results.items():
            spec = WORKLOADS[name]
            rows.append(
                [
                    name,
                    spec.pattern,
                    f"{spec.footprint_bytes // 2**20} MiB",
                    f"{spec.write_fraction:.0%}",
                    f"{spec.compute_gap_mean:g}",
                    f"{res.l1_hit_ratio:.2f}",
                    f"{res.l2_hit_ratio:.2f}",
                    f"{res.checks_per_cycle:.3f}",
                    f"{res.dram_utilization:.2f}",
                ]
            )
        title = (
            f"Workload characteristics under Border Control-BCC "
            f"({self.threading.label})"
        )
        if self.missing:
            title += f"  [PARTIAL: missing {', '.join(self.missing)}]"
        return text_table(
            [
                "workload",
                "pattern",
                "footprint",
                "writes",
                "gap",
                "L1 hit",
                "L2 hit",
                "border/cyc",
                "DRAM util",
            ],
            rows,
            title=title,
        )


def grid(
    threading: GPUThreading = GPUThreading.HIGHLY,
    workloads: Optional[List[str]] = None,
    seed: int = 1234,
    ops_scale: float = 1.0,
) -> List["Cell"]:
    """The table's simulation grid: BC-BCC per workload."""
    from repro.sweep import Cell

    names = workloads or workload_names()
    return [
        Cell(name, SafetyMode.BC_BCC, threading, seed, ops_scale, tag="workloads")
        for name in names
    ]


def run(
    threading: GPUThreading = GPUThreading.HIGHLY,
    workloads: Optional[List[str]] = None,
    seed: int = 1234,
    ops_scale: float = 1.0,
    workers: Optional[int] = 1,
    allow_partial: bool = False,
    journal=None,
) -> WorkloadTable:
    """``allow_partial`` drops failed workloads from the table with a
    note instead of aborting; ``journal`` makes the prewarm resumable."""
    if workers is None or workers > 1 or journal is not None:
        from repro.sweep import prewarm

        prewarm(
            grid(threading, workloads, seed, ops_scale),
            workers=workers,
            journal=journal,
            allow_partial=allow_partial,
        )
    names = workloads or workload_names()
    table = WorkloadTable(threading=threading)
    for name in names:
        try:
            table.results[name] = cached_run(
                name, SafetyMode.BC_BCC, threading, seed, ops_scale
            )
        except Exception:
            if not allow_partial:
                raise
            table.missing.append(name)
    return table
