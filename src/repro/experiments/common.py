"""Shared infrastructure for experiment drivers: caching and formatting.

Simulations are deterministic given their parameters, so results are
cached — in memory for a process's lifetime and as JSON on disk under
``.exp_cache/`` in the working directory. Bump :data:`CACHE_VERSION`
whenever the timing model changes in a way that invalidates old numbers.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.sim.config import GPUThreading, SafetyMode
from repro.sim.runner import RunResult, run_single

__all__ = [
    "CACHE_VERSION",
    "cache_key",
    "cache_path",
    "cached_run",
    "cached_run_ex",
    "clear_cache",
    "fmt_percent",
    "fmt_ratio",
    "store_result",
    "text_table",
]

CACHE_VERSION = 5

# Memoized results, keyed by (cache dir, parameter key). The cache dir is
# part of the key so that pointing REPRO_CACHE_DIR elsewhere (tests and
# sweep workers do) never resurrects results memoized under the old dir.
_memory_cache: Dict[Tuple[str, str], RunResult] = {}


def _cache_dir() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", ".exp_cache"))


def _memory_key(key: str) -> Tuple[str, str]:
    return (str(_cache_dir()), key)


def _key(workload: str, safety: SafetyMode, threading: GPUThreading, **kwargs) -> str:
    blob = json.dumps(
        {
            "v": CACHE_VERSION,
            "workload": workload,
            "safety": safety.value,
            "threading": threading.value,
            **{k: v for k, v in sorted(kwargs.items())},
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


_SKIP_FIELDS = {"border_trace"}


def _result_to_dict(result: RunResult) -> dict:
    out = {}
    for field in dataclasses.fields(RunResult):
        if field.name in _SKIP_FIELDS:
            continue
        value = getattr(result, field.name)
        if isinstance(value, (SafetyMode, GPUThreading)):
            value = value.value
        out[field.name] = value
    return out


def _result_from_dict(data: dict) -> RunResult:
    data = dict(data)
    data["safety"] = SafetyMode(data["safety"])
    data["threading"] = GPUThreading(data["threading"])
    return RunResult(**data)


def cache_key(
    workload: str,
    safety: SafetyMode,
    threading: GPUThreading = GPUThreading.HIGHLY,
    seed: int = 1234,
    ops_scale: float = 1.0,
    downgrade_interval_cycles: Optional[float] = None,
) -> str:
    """The cache key :func:`cached_run` uses for these parameters."""
    return _key(
        workload,
        safety,
        threading,
        seed=seed,
        ops_scale=ops_scale,
        dgi=downgrade_interval_cycles,
    )


def cache_path(key: str) -> Path:
    """On-disk location of one cache entry (may not exist yet)."""
    return _cache_dir() / f"{key}.json"


def _write_atomic(path: Path, text: str) -> None:
    """Publish a cache entry atomically.

    Concurrent sweep workers share ``.exp_cache/``; a plain
    ``write_text`` lets a reader observe a truncated JSON document
    mid-write. Writing to a temp file in the same directory and
    ``os.replace``-ing it in guarantees readers only ever see complete
    entries (POSIX rename is atomic within a filesystem).
    """
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.stem + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def store_result(key: str, result: RunResult, use_disk: bool = True) -> None:
    """Adopt an externally computed result into the caches.

    The parallel sweep uses this to publish worker results into the
    parent process's memory cache (and the shared disk cache, in case
    the worker died between computing and persisting).
    """
    _memory_cache[_memory_key(key)] = result
    if use_disk:
        path = cache_path(key)
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            _write_atomic(path, json.dumps(_result_to_dict(result)))


def cached_run_ex(
    workload: str,
    safety: SafetyMode,
    threading: GPUThreading = GPUThreading.HIGHLY,
    seed: int = 1234,
    ops_scale: float = 1.0,
    downgrade_interval_cycles: Optional[float] = None,
    use_disk: bool = True,
) -> Tuple[RunResult, str]:
    """Run (or retrieve) one simulation, reporting where the result came from.

    Returns ``(result, source)`` with ``source`` one of ``"memory"``,
    ``"disk"``, or ``"computed"``. The provenance is the ground truth for
    cache-hit accounting: callers must not re-derive it from a separate
    ``cache_path(...).exists()`` probe, which races against concurrent
    writers (another worker can publish the entry between the probe and
    the lookup, or vice versa) and misreports hits either way.
    """
    key = _key(
        workload,
        safety,
        threading,
        seed=seed,
        ops_scale=ops_scale,
        dgi=downgrade_interval_cycles,
    )
    mem_key = _memory_key(key)
    if mem_key in _memory_cache:
        return _memory_cache[mem_key], "memory"
    path = cache_path(key)
    if use_disk and path.exists():
        try:
            result = _result_from_dict(json.loads(path.read_text()))
            _memory_cache[mem_key] = result
            return result, "disk"
        except FileNotFoundError:
            pass  # another process replaced/unlinked it mid-read; recompute
        except (ValueError, TypeError, KeyError):
            # Stale or corrupt entry. A racing process may have detected
            # (and unlinked) the same corruption first — that's fine.
            try:
                path.unlink()
            except FileNotFoundError:
                pass
    result = run_single(
        workload,
        safety,
        threading,
        seed=seed,
        ops_scale=ops_scale,
        downgrade_interval_cycles=downgrade_interval_cycles,
    )
    _memory_cache[mem_key] = result
    if use_disk:
        path.parent.mkdir(parents=True, exist_ok=True)
        _write_atomic(path, json.dumps(_result_to_dict(result)))
    return result, "computed"


def cached_run(
    workload: str,
    safety: SafetyMode,
    threading: GPUThreading = GPUThreading.HIGHLY,
    seed: int = 1234,
    ops_scale: float = 1.0,
    downgrade_interval_cycles: Optional[float] = None,
    use_disk: bool = True,
) -> RunResult:
    """Run (or retrieve) one simulation. Border traces are never cached."""
    result, _source = cached_run_ex(
        workload,
        safety,
        threading,
        seed=seed,
        ops_scale=ops_scale,
        downgrade_interval_cycles=downgrade_interval_cycles,
        use_disk=use_disk,
    )
    return result


def clear_cache(disk: bool = False) -> None:
    """Drop memoized results (and optionally the on-disk cache)."""
    _memory_cache.clear()
    if disk and _cache_dir().is_dir():
        for path in _cache_dir().glob("*.json"):
            try:
                path.unlink()
            except FileNotFoundError:
                pass


# -- text rendering helpers ---------------------------------------------------


def fmt_percent(value: float) -> str:
    return f"{value * 100:.2f}%"


def fmt_ratio(value: float) -> str:
    return f"{value:.2f}x"


def text_table(headers: List[str], rows: List[List[str]], title: str = "") -> str:
    """Render an aligned monospace table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines.append(fmt.format(*headers))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(fmt.format(*row))
    return "\n".join(lines)
