"""Shared infrastructure for experiment drivers: caching and formatting.

Simulations are deterministic given their parameters, so results are
cached — in memory for a process's lifetime and as JSON on disk under
``.exp_cache/`` in the working directory. Bump :data:`CACHE_VERSION`
whenever the timing model changes in a way that invalidates old numbers.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional

from repro.sim.config import GPUThreading, SafetyMode
from repro.sim.runner import RunResult, run_single

__all__ = [
    "CACHE_VERSION",
    "cached_run",
    "clear_cache",
    "fmt_percent",
    "fmt_ratio",
    "text_table",
]

CACHE_VERSION = 5

_memory_cache: Dict[str, RunResult] = {}


def _cache_dir() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", ".exp_cache"))


def _key(workload: str, safety: SafetyMode, threading: GPUThreading, **kwargs) -> str:
    blob = json.dumps(
        {
            "v": CACHE_VERSION,
            "workload": workload,
            "safety": safety.value,
            "threading": threading.value,
            **{k: v for k, v in sorted(kwargs.items())},
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


_SKIP_FIELDS = {"border_trace"}


def _result_to_dict(result: RunResult) -> dict:
    out = {}
    for field in dataclasses.fields(RunResult):
        if field.name in _SKIP_FIELDS:
            continue
        value = getattr(result, field.name)
        if isinstance(value, (SafetyMode, GPUThreading)):
            value = value.value
        out[field.name] = value
    return out


def _result_from_dict(data: dict) -> RunResult:
    data = dict(data)
    data["safety"] = SafetyMode(data["safety"])
    data["threading"] = GPUThreading(data["threading"])
    return RunResult(**data)


def cached_run(
    workload: str,
    safety: SafetyMode,
    threading: GPUThreading = GPUThreading.HIGHLY,
    seed: int = 1234,
    ops_scale: float = 1.0,
    downgrade_interval_cycles: Optional[float] = None,
    use_disk: bool = True,
) -> RunResult:
    """Run (or retrieve) one simulation. Border traces are never cached."""
    key = _key(
        workload,
        safety,
        threading,
        seed=seed,
        ops_scale=ops_scale,
        dgi=downgrade_interval_cycles,
    )
    if key in _memory_cache:
        return _memory_cache[key]
    path = _cache_dir() / f"{key}.json"
    if use_disk and path.exists():
        try:
            result = _result_from_dict(json.loads(path.read_text()))
            _memory_cache[key] = result
            return result
        except (ValueError, TypeError, KeyError):
            path.unlink()  # stale or corrupt cache entry
    result = run_single(
        workload,
        safety,
        threading,
        seed=seed,
        ops_scale=ops_scale,
        downgrade_interval_cycles=downgrade_interval_cycles,
    )
    _memory_cache[key] = result
    if use_disk:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(_result_to_dict(result)))
    return result


def clear_cache(disk: bool = False) -> None:
    """Drop memoized results (and optionally the on-disk cache)."""
    _memory_cache.clear()
    if disk and _cache_dir().is_dir():
        for path in _cache_dir().glob("*.json"):
            path.unlink()


# -- text rendering helpers ---------------------------------------------------


def fmt_percent(value: float) -> str:
    return f"{value * 100:.2f}%"


def fmt_ratio(value: float) -> str:
    return f"{value:.2f}x"


def text_table(headers: List[str], rows: List[List[str]], title: str = "") -> str:
    """Render an aligned monospace table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines.append(fmt.format(*headers))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(fmt.format(*row))
    return "\n".join(lines)
