"""Figure 5 — requests per cycle checked by Border Control.

The paper reports, per workload, how many requests Border Control checks
per GPU cycle on the highly threaded GPU: ~0.11 on average, ranging from
0.025 (backprop) to 0.29 (bfs). The conclusion it supports: bandwidth at
Border Control is not a bottleneck, because the accelerator's private
caches filter most traffic before the border (paper §5.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.experiments.common import cached_run, text_table
from repro.sim.config import GPUThreading, SafetyMode

from repro.workloads.registry import workload_names

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from repro.sweep import Cell

__all__ = ["Fig5Result", "grid", "run", "PAPER_REQUESTS_PER_CYCLE"]

# Values readable from Fig. 5's bars (backprop and bfs are called out in
# the text; the rest are approximate bar heights).
PAPER_REQUESTS_PER_CYCLE = {
    "backprop": 0.025,
    "bfs": 0.29,
    "hotspot": 0.08,
    "lud": 0.05,
    "nn": 0.17,
    "nw": 0.10,
    "pathfinder": 0.05,
}
PAPER_AVERAGE = 0.11


@dataclass
class Fig5Result:
    threading: GPUThreading
    # None marks a gap (cell failed, partial rendering allowed)
    requests_per_cycle: Dict[str, Optional[float]] = field(default_factory=dict)

    @property
    def average(self) -> float:
        values = [v for v in self.requests_per_cycle.values() if v is not None]
        return sum(values) / len(values) if values else 0.0

    @property
    def complete(self) -> bool:
        return all(v is not None for v in self.requests_per_cycle.values())

    def render(self) -> str:
        rows = [
            [
                name,
                "—" if value is None else f"{value:.3f}",
                f"{PAPER_REQUESTS_PER_CYCLE.get(name, 0):.3f}",
            ]
            for name, value in self.requests_per_cycle.items()
        ]
        rows.append(["AVG", f"{self.average:.3f}", f"{PAPER_AVERAGE:.3f}"])
        title = (
            "Figure 5: requests per cycle checked by Border Control "
            f"({self.threading.label})"
        )
        if not self.complete:
            title += "  [PARTIAL: — marks failed cells]"
        return text_table(["workload", "req/cycle", "paper"], rows, title=title)


def grid(
    threading: GPUThreading = GPUThreading.HIGHLY,
    workloads: Optional[List[str]] = None,
    seed: int = 1234,
    ops_scale: float = 1.0,
) -> List["Cell"]:
    """The figure's simulation grid: BC-BCC per workload."""
    from repro.sweep import Cell

    names = workloads or workload_names()
    return [
        Cell(name, SafetyMode.BC_BCC, threading, seed, ops_scale, tag="fig5")
        for name in names
    ]


def run(
    threading: GPUThreading = GPUThreading.HIGHLY,
    workloads: Optional[List[str]] = None,
    seed: int = 1234,
    ops_scale: float = 1.0,
    workers: Optional[int] = 1,
    allow_partial: bool = False,
    journal=None,
) -> Fig5Result:
    """Measure border-crossing request rates under Border Control-BCC.

    ``allow_partial`` renders gaps for failed cells instead of aborting;
    ``journal`` makes the parallel prewarm resumable.
    """
    if workers is None or workers > 1 or journal is not None:
        from repro.sweep import prewarm

        prewarm(
            grid(threading, workloads, seed, ops_scale),
            workers=workers,
            journal=journal,
            allow_partial=allow_partial,
        )
    names = workloads or workload_names()
    result = Fig5Result(threading=threading)
    for name in names:
        try:
            res = cached_run(name, SafetyMode.BC_BCC, threading, seed, ops_scale)
        except Exception:
            if not allow_partial:
                raise
            result.requests_per_cycle[name] = None
            continue
        result.requests_per_cycle[name] = res.checks_per_cycle
    return result
