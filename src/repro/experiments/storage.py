"""§5.2.3 — area and memory storage overheads.

The paper's claims:

* the Protection Table costs 0.006% of physical memory capacity per
  active accelerator (1 MB for a 16 GB system, 196 KB for the ~3 GB
  simulated machine);
* the BCC is 64 entries x 128 B = 8 KB of SRAM per accelerator.

This driver verifies both against live structures, not arithmetic alone:
it allocates a real Protection Table inside simulated physical memory and
reports the sizes the allocator actually carved out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.bcc import BCCConfig
from repro.core.protection_table import ProtectionTable
from repro.experiments.common import text_table
from repro.mem.phys_memory import PhysicalMemory
from repro.sim.config import GIB, SystemConfig
from repro.vm.frame_allocator import FrameAllocator

__all__ = ["StorageResult", "run"]

PAPER_FRACTION = 0.00006103515625  # 2 bits per 4 KB page == 1/16384


@dataclass
class StorageResult:
    phys_bytes: int
    table_bytes: int
    table_fraction: float
    bcc_bytes: float
    bcc_reach_bytes: int
    sixteen_gib_table_bytes: int

    def render(self) -> str:
        rows = [
            ["simulated physical memory", f"{self.phys_bytes / 2**20:.0f} MiB"],
            ["Protection Table size", f"{self.table_bytes / 1024:.0f} KiB"],
            [
                "Protection Table fraction",
                f"{self.table_fraction * 100:.4f}% (paper: 0.006%)",
            ],
            ["BCC size", f"{self.bcc_bytes / 1024:.2f} KiB (paper: 8 KB + tags)"],
            ["BCC reach", f"{self.bcc_reach_bytes / 2**20:.0f} MiB (paper: 128 MB)"],
            [
                "table for a 16 GiB system",
                f"{self.sixteen_gib_table_bytes / 2**20:.0f} MiB (paper: 1 MB)",
            ],
        ]
        return text_table(
            ["quantity", "value"], rows, title="Storage overheads (paper §5.2.3)"
        )


def run(config: Optional[SystemConfig] = None) -> StorageResult:
    cfg = config or SystemConfig()
    phys = PhysicalMemory(cfg.phys_mem_bytes)
    allocator = FrameAllocator(phys)
    table = ProtectionTable.allocate(phys, allocator)
    bcc = cfg.bcc
    # The 16 GiB headline number, computed from the same layout rules.
    sixteen = 16 * GIB // 4096 // 4
    result = StorageResult(
        phys_bytes=cfg.phys_mem_bytes,
        table_bytes=table.size_bytes,
        table_fraction=table.storage_overhead_fraction(),
        bcc_bytes=bcc.size_bytes,
        bcc_reach_bytes=bcc.reach_bytes,
        sixteen_gib_table_bytes=sixteen,
    )
    table.deallocate(allocator)
    return result
