"""Figure 6 — BCC miss ratio vs. cache size, for several entry granularities.

The paper sweeps the Border Control Cache budget from tens of bytes to
1 KB for entry granularities of 1, 2, 32, and 512 pages per entry (each
entry carries a 36-bit tag) and plots the miss ratio averaged over the
benchmarks. Finding: sub-blocking pays — with 512 pages/entry a 1 KB BCC
already misses less than 0.1% of the time, thanks to spatial locality
across physical pages; the paper still provisions 8 KB for headroom.

Reproduction: we record the real (ppn, is_write) stream crossing the
border during a Border Control-BCC run of each workload, then replay the
stream through standalone BCC models of every swept geometry. Replaying
the genuine stream keeps the miss ratio faithful to what the in-system
BCC would see, without re-simulating the whole machine per point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.bcc import BCCConfig, BorderControlCache
from repro.experiments.common import text_table
from repro.sim.config import GPUThreading, SafetyMode
from repro.sim.runner import run_single
from repro.workloads.registry import workload_names

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from repro.sweep import Cell

__all__ = ["Fig6Result", "grid", "run", "replay_miss_ratio", "PAGES_PER_ENTRY_SWEEP"]

PAGES_PER_ENTRY_SWEEP = (1, 2, 32, 512)
DEFAULT_SIZES = (64, 128, 192, 256, 384, 512, 640, 768, 896, 1024)


class _AllPermissiveTable:
    """Protection Table stand-in for replay: every page readable+writable.

    Miss ratios depend only on the address stream and cache geometry, not
    on the permission values, so the replay backs fills with RW bits.
    """

    @staticmethod
    def read_bits(start_ppn: int, count: int) -> int:
        return (1 << (2 * count)) - 1

    @staticmethod
    def grant(ppn: int, perms) -> bool:  # pragma: no cover - replay never grants
        return False


def replay_miss_ratio(
    stream: Sequence[Tuple[int, bool]], config: BCCConfig
) -> float:
    """Miss ratio of one BCC geometry over a recorded border stream."""
    bcc = BorderControlCache(config)
    table = _AllPermissiveTable()
    for ppn, _write in stream:
        bcc.lookup(ppn, table)
    return bcc.miss_ratio()


@dataclass
class Fig6Result:
    sizes_bytes: List[int]
    # miss_ratio[pages_per_entry][size_index] averaged over workloads
    miss_ratio: Dict[int, List[Optional[float]]] = field(default_factory=dict)
    workloads: List[str] = field(default_factory=list)
    #: Workloads whose recording run failed under ``allow_partial``.
    missing: List[str] = field(default_factory=list)

    def render(self) -> str:
        headers = ["BCC bytes"] + [f"{ppe} pg/entry" for ppe in sorted(self.miss_ratio)]
        rows = []
        for i, size in enumerate(self.sizes_bytes):
            row = [str(size)]
            for ppe in sorted(self.miss_ratio):
                value = self.miss_ratio[ppe][i]
                row.append("-" if value is None else f"{value:.4f}")
            rows.append(row)
        title = "Figure 6: BCC miss ratio vs. size (avg over workloads)"
        if self.missing:
            title += f"  [PARTIAL: missing {', '.join(self.missing)}]"
        return text_table(headers, rows, title=title)


def grid(
    threading: GPUThreading = GPUThreading.HIGHLY,
    workloads: Optional[List[str]] = None,
    seed: int = 1234,
    ops_scale: float = 1.0,
) -> List["Cell"]:
    """The figure's simulation grid: one border-recording run per workload.

    These cells carry ``record_border=True`` so they bypass the disk
    cache (traces are never cached) and ship the recorded stream back
    from the worker.
    """
    from repro.sweep import Cell

    names = workloads or workload_names()
    return [
        Cell(
            name,
            SafetyMode.BC_BCC,
            threading,
            seed,
            ops_scale,
            record_border=True,
            tag="fig6",
        )
        for name in names
    ]


def run(
    sizes_bytes: Sequence[int] = DEFAULT_SIZES,
    pages_per_entry: Sequence[int] = PAGES_PER_ENTRY_SWEEP,
    workloads: Optional[List[str]] = None,
    threading: GPUThreading = GPUThreading.HIGHLY,
    seed: int = 1234,
    ops_scale: float = 1.0,
    workers: Optional[int] = 1,
    allow_partial: bool = False,
    journal=None,
) -> Fig6Result:
    """Record border streams once per workload, replay over the sweep.

    ``allow_partial`` averages the curves over workloads whose recording
    run survived instead of aborting. Trace cells are never cached, so a
    ``journal`` cannot skip them on resume, but it is still threaded to
    :func:`run_sweep` for uniform interrupt handling.
    """
    names = workloads or workload_names()
    missing: List[str] = []
    if workers is None or workers > 1 or journal is not None:
        from repro.sweep import run_sweep

        report = run_sweep(
            grid(threading, names, seed, ops_scale),
            workers=workers,
            journal=journal,
        )
        if allow_partial:
            pairs = report.partial_results()
            results = [res for _cell, res in pairs]
            got = {cell.workload for cell, _res in pairs}
            missing = [name for name in names if name not in got]
        else:
            results = report.results
    else:
        results = []
        for name in names:
            try:
                results.append(
                    run_single(
                        name,
                        SafetyMode.BC_BCC,
                        threading,
                        seed=seed,
                        ops_scale=ops_scale,
                        record_border=True,
                    )
                )
            except Exception:
                if not allow_partial:
                    raise
                missing.append(name)
    streams = [res.border_trace for res in results if res.border_trace]
    result = Fig6Result(
        sizes_bytes=list(sizes_bytes), workloads=list(names), missing=missing
    )
    for ppe in pages_per_entry:
        ratios: List[Optional[float]] = []
        for size in sizes_bytes:
            try:
                config = BCCConfig.from_budget(size, ppe)
            except Exception:
                ratios.append(None)  # budget too small for even one entry
                continue
            per_workload = [replay_miss_ratio(s, config) for s in streams]
            if not per_workload:
                ratios.append(None)  # no surviving streams to average
                continue
            ratios.append(sum(per_workload) / len(per_workload))
        result.miss_ratio[ppe] = ratios
    return result
