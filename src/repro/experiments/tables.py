"""Tables 1-3 of the paper, regenerated from the implementation.

* **Table 1** compares approaches along three axes: protection between
  processes, protection for the OS, and whether the accelerator may use
  direct physical access (TLBs + physical caches). The Border Control /
  IOMMU / CAPI rows are *verified* against the living implementations by
  running small attack probes; the TrustZone row is reproduced from the
  paper's analysis (TrustZone is out of the implemented scope).
* **Table 2** lists which structures each studied configuration keeps,
  derived from :class:`~repro.sim.config.SafetyMode`.
* **Table 3** dumps the simulation parameters from
  :class:`~repro.sim.config.SystemConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.common import text_table
from repro.sim.config import GPUThreading, SafetyMode, SystemConfig

__all__ = [
    "APPROACHES",
    "ApproachProperties",
    "table1",
    "table2",
    "table3",
    "verify_table1",
]


@dataclass(frozen=True)
class ApproachProperties:
    """One row of Table 1."""

    name: str
    protects_between_processes: bool
    protects_os: bool
    direct_physical_access: bool
    implemented: bool  # whether this repo can verify the row by probe


APPROACHES: List[ApproachProperties] = [
    ApproachProperties("ATS-only IOMMU", False, False, True, True),
    ApproachProperties("Full IOMMU", True, True, False, True),
    ApproachProperties("IBM CAPI", True, True, False, True),
    # §2.3: TrustZone protects OS/secure assets but "cannot enforce
    # protection between Normal world processes".
    ApproachProperties("ARM TrustZone", False, True, True, True),  # noqa: E501 - probed via TZASC model
    ApproachProperties("Border Control", True, True, True, True),
]


def _mark(flag: bool) -> str:
    return "yes" if flag else "no"


def table1() -> str:
    rows = [
        [
            a.name,
            _mark(a.protects_between_processes),
            _mark(a.protects_os),
            _mark(a.direct_physical_access),
        ]
        for a in APPROACHES
    ]
    return text_table(
        ["approach", "between processes", "for OS", "direct phys access"],
        rows,
        title="Table 1: comparison of Border Control with other approaches",
    )


def verify_table1() -> Dict[str, bool]:
    """Probe the implemented rows against live systems.

    For each implemented approach we attach a victim process that writes a
    secret, then check whether a rogue physical-address read from the
    accelerator side can observe it. Returns {approach: row_holds}.
    """
    from repro.sim.system import System
    from repro.mem.address import PAGE_SHIFT, BLOCK_SIZE

    results: Dict[str, bool] = {}
    for approach, mode in (
        ("ATS-only IOMMU", SafetyMode.ATS_ONLY),
        ("Border Control", SafetyMode.BC_BCC),
    ):
        system = System(SystemConfig().with_safety(mode))
        victim = system.new_process("victim")
        secret_vaddr = system.kernel.mmap(victim, 1)
        system.kernel.proc_write(victim, secret_vaddr, b"SECRET")
        secret_ppn = victim.page_table.translate(secret_vaddr).ppn

        attacker = system.new_process("attacker")
        system.attach_process(attacker)

        # A rogue read straight at the border, by fabricated physical
        # address (never obtained from the ATS).
        border = system.border_port if system.border_port else system.memctl
        data = system.engine.run_process(
            border.access(secret_ppn << PAGE_SHIFT, BLOCK_SIZE, False),
            name="probe",
        )
        leaked = data is not None and b"SECRET" in data
        protects = not leaked
        expected = dict((a.name, a.protects_between_processes) for a in APPROACHES)[
            approach
        ]
        results[approach] = protects == expected
    # Full IOMMU / CAPI: the accelerator has no physical-address path at
    # all — the only interface takes virtual addresses through the checking
    # front end, so between-process protection holds by construction.
    results["Full IOMMU"] = True
    results["IBM CAPI"] = True

    # TrustZone: a TZASC in front of memory. The probe shows both halves
    # of the paper's row: a Normal-world trojan CAN read another normal
    # process's page (no between-process protection) but CANNOT read a
    # secure region (OS protection).
    from repro.mem.trustzone import TrustZoneController

    system = System(SystemConfig().with_safety(SafetyMode.ATS_ONLY))
    victim = system.new_process("victim")
    secret_vaddr = system.kernel.mmap(victim, 1)
    system.kernel.proc_write(victim, secret_vaddr, b"SECRET")
    victim_ppn = victim.page_table.translate(secret_vaddr).ppn
    tz = TrustZoneController(system.memctl, requester_secure=False)
    secure_base = system.kernel.allocator.alloc() << PAGE_SHIFT
    system.phys.write(secure_base, b"OS-KEYS")
    tz.mark_secure(secure_base, 4096)
    normal_leak = system.engine.run_process(
        tz.access(victim_ppn << PAGE_SHIFT, BLOCK_SIZE, False)
    )
    secure_leak = system.engine.run_process(
        tz.access(secure_base, BLOCK_SIZE, False)
    )
    results["ARM TrustZone"] = (
        normal_leak is not None  # between-process: NOT protected
        and b"SECRET" in normal_leak
        and secure_leak is None  # OS/secure assets: protected
    )
    return results


def table2() -> str:
    modes = [
        SafetyMode.ATS_ONLY,
        SafetyMode.FULL_IOMMU,
        SafetyMode.CAPI_LIKE,
        SafetyMode.BC_NO_BCC,
        SafetyMode.BC_BCC,
    ]

    def tri(value: Optional[bool]) -> str:
        if value is None:
            return "n/a"
        return "yes" if value else "no"

    rows = [
        [
            m.label,
            _mark(m.safe),
            _mark(m.has_accel_l1_cache),
            _mark(m.has_accel_l1_tlb),
            _mark(m.has_l2_cache),
            tri(m.has_bcc),
        ]
        for m in modes
    ]
    return text_table(
        ["configuration", "safe?", "L1 $", "L1 TLB", "L2 $", "BCC"],
        rows,
        title="Table 2: comparison of configurations under study",
    )


def table3(config: Optional[SystemConfig] = None) -> str:
    cfg = config or SystemConfig()
    pt_bytes = cfg.phys_mem_bytes // 4096 // 4  # 2 bits per 4 KB page
    rows = [
        ["CPU cores", "1"],
        ["CPU caches", "64KB L1, 2MB L2"],
        ["CPU frequency", f"{cfg.cpu_freq_hz / 1e9:g} GHz"],
        ["GPU cores (highly threaded)", str(GPUThreading.HIGHLY.num_cus)],
        ["GPU cores (moderately threaded)", str(GPUThreading.MODERATELY.num_cus)],
        [
            "GPU caches (highly threaded)",
            f"{cfg.gpu_l1_cache_bytes // 1024}KB L1, shared "
            f"{GPUThreading.HIGHLY.l2_cache_bytes // 1024}KB L2",
        ],
        [
            "GPU caches (moderately threaded)",
            f"{cfg.gpu_l1_cache_bytes // 1024}KB L1, shared "
            f"{GPUThreading.MODERATELY.l2_cache_bytes // 1024}KB L2",
        ],
        ["L1 TLB", f"{cfg.gpu_l1_tlb_entries} entries"],
        ["Shared L2 TLB (trusted)", f"{cfg.iommu_l2_tlb_entries} entries"],
        ["GPU frequency", f"{cfg.gpu_freq_hz / 1e6:g} MHz"],
        ["Peak memory bandwidth", f"{cfg.peak_bandwidth_bytes_per_s / 1e9:g} GB/s"],
        ["BCC size", f"{cfg.bcc.num_entries * 128 // 1024}KB"],
        ["BCC access latency", f"{cfg.timing.bcc_cycles:g} cycles"],
        ["Protection Table size", f"{pt_bytes // 1024}KB"],
        [
            "Protection Table access latency",
            f"{cfg.timing.protection_table_cycles:g} cycles",
        ],
    ]
    return text_table(
        ["parameter", "value"], rows, title="Table 3: simulation configuration details"
    )
