"""Figure 7 — runtime overhead vs. permission-downgrade frequency.

Downgrades (context switches, swapping, memory compaction) force every
accelerator — trusted or not — to drain outstanding requests and drop
translations; Border Control additionally flushes the accelerator caches,
zeroes the Protection Table, and invalidates the BCC (paper §3.2.4). The
paper sweeps 0-1000 downgrades/second and finds the overhead negligible
(~0.02% at today's 10-200/s context-switch rates, <0.5% at 1000/s), with
Border Control costing roughly 2x the ATS-only baseline per downgrade.

Reproduction: our kernels run for tens of microseconds of simulated
time, so waiting for wall-clock-rate downgrades would observe none. We
instead inject downgrades densely (every few thousand GPU cycles),
measure the *marginal cost per downgrade* from the runtime delta, and
express the paper's curve as ``overhead(rate) = rate x cost_seconds``,
which is exactly the regime of Fig. 7 (costs are small and additive).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.experiments.common import cached_run, text_table
from repro.sim.clock import TICKS_PER_SECOND
from repro.sim.config import GPUThreading, SafetyMode
from repro.workloads.registry import workload_names

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from repro.sweep import Cell

__all__ = ["Fig7Result", "grid", "run", "DEFAULT_RATES"]

DEFAULT_RATES = (0, 100, 200, 400, 600, 800, 1000)
MODES = (SafetyMode.ATS_ONLY, SafetyMode.BC_BCC)

# The paper's rough reference points at 1000 downgrades/s.
PAPER_AT_1000 = {
    (SafetyMode.BC_BCC, GPUThreading.HIGHLY): 0.004,
    (SafetyMode.BC_BCC, GPUThreading.MODERATELY): 0.0035,
    (SafetyMode.ATS_ONLY, GPUThreading.HIGHLY): 0.002,
    (SafetyMode.ATS_ONLY, GPUThreading.MODERATELY): 0.0017,
}


@dataclass
class Fig7Result:
    rates: List[int]
    # cost per downgrade in seconds, per (mode, threading)
    cost_seconds: Dict[SafetyMode, Dict[GPUThreading, float]] = field(
        default_factory=dict
    )

    def overhead(self, mode: SafetyMode, threading: GPUThreading, rate: float) -> float:
        """Fractional runtime overhead at a downgrade rate (per second)."""
        return rate * self.cost_seconds[mode][threading]

    def series(self, mode: SafetyMode, threading: GPUThreading) -> List[float]:
        return [self.overhead(mode, threading, r) for r in self.rates]

    def bc_to_baseline_cost_ratio(self, threading: GPUThreading) -> float:
        """Paper: BC incurs ~2x the per-downgrade cost of ATS-only."""
        base = self.cost_seconds[SafetyMode.ATS_ONLY][threading]
        bc = self.cost_seconds[SafetyMode.BC_BCC][threading]
        return bc / base if base > 0 else float("inf")

    def render(self) -> str:
        headers = ["downgrades/s"] + [
            f"{mode.label} / {thr.label}"
            for mode in MODES
            for thr in (GPUThreading.HIGHLY, GPUThreading.MODERATELY)
        ]
        rows = []
        for i, rate in enumerate(self.rates):
            row = [str(rate)]
            for mode in MODES:
                for thr in (GPUThreading.HIGHLY, GPUThreading.MODERATELY):
                    row.append(f"{self.series(mode, thr)[i] * 100:.4f}%")
            rows.append(row)
        return text_table(
            headers, rows, title="Figure 7: overhead vs. permission downgrade rate"
        )


def grid(
    workloads: Optional[List[str]] = None,
    injection_interval_cycles: float = 4000.0,
    seed: int = 1234,
    ops_scale: float = 1.0,
) -> List["Cell"]:
    """The figure's grid: plain + downgrade-injected cells, all configs."""
    from repro.sweep import Cell

    names = workloads or workload_names()
    return [
        Cell(
            name,
            mode,
            threading,
            seed,
            ops_scale,
            downgrade_interval_cycles=interval,
            tag="fig7",
        )
        for mode in MODES
        for threading in (GPUThreading.HIGHLY, GPUThreading.MODERATELY)
        for name in names
        for interval in (None, injection_interval_cycles)
    ]


def run(
    rates: Sequence[int] = DEFAULT_RATES,
    workloads: Optional[List[str]] = None,
    injection_interval_cycles: float = 4000.0,
    seed: int = 1234,
    ops_scale: float = 1.0,
    workers: Optional[int] = 1,
    allow_partial: bool = False,
    journal=None,
) -> Fig7Result:
    """Measure per-downgrade costs and build the Fig. 7 curves.

    ``allow_partial`` averages each curve over the workloads whose
    cells survived instead of aborting on the first failure;
    ``journal`` makes the parallel prewarm resumable.
    """
    if workers is None or workers > 1 or journal is not None:
        from repro.sweep import prewarm

        prewarm(
            grid(workloads, injection_interval_cycles, seed, ops_scale),
            workers=workers,
            journal=journal,
            allow_partial=allow_partial,
        )
    names = workloads or workload_names()
    result = Fig7Result(rates=list(rates))
    for mode in MODES:
        result.cost_seconds[mode] = {}
        for threading in (GPUThreading.HIGHLY, GPUThreading.MODERATELY):
            costs: List[float] = []
            for name in names:
                try:
                    plain = cached_run(name, mode, threading, seed, ops_scale)
                    downgraded = cached_run(
                        name,
                        mode,
                        threading,
                        seed,
                        ops_scale,
                        downgrade_interval_cycles=injection_interval_cycles,
                    )
                except Exception:
                    if not allow_partial:
                        raise
                    continue  # cell failed: curve averages the survivors
                if downgraded.downgrades <= 0:
                    continue
                delta_ticks = max(0, downgraded.ticks - plain.ticks)
                costs.append(
                    delta_ticks / downgraded.downgrades / TICKS_PER_SECOND
                )
            result.cost_seconds[mode][threading] = (
                sum(costs) / len(costs) if costs else 0.0
            )
    return result
