"""Figure 4 — runtime overhead of each safety approach vs. the unsafe
ATS-only IOMMU baseline, per workload, for both GPU configurations.

Paper reference values (geometric means):

======================  ================  ====================
Configuration           Highly threaded   Moderately threaded
======================  ================  ====================
Full IOMMU              374%              85%
CAPI-like               3.81%             16.5%
Border Control-noBCC    2.04%             7.26%
Border Control-BCC      0.15%             0.84%
======================  ================  ====================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.experiments.common import cached_run, fmt_percent, text_table
from repro.sim.config import GPUThreading, SafetyMode
from repro.sim.runner import geometric_mean, runtime_overhead
from repro.workloads.registry import workload_names

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from repro.sweep import Cell

__all__ = ["Fig4Result", "grid", "run", "PAPER_GEOMEANS", "SAFETY_MODES"]

SAFETY_MODES = [
    SafetyMode.FULL_IOMMU,
    SafetyMode.CAPI_LIKE,
    SafetyMode.BC_NO_BCC,
    SafetyMode.BC_BCC,
]

PAPER_GEOMEANS: Dict[GPUThreading, Dict[SafetyMode, float]] = {
    GPUThreading.HIGHLY: {
        SafetyMode.FULL_IOMMU: 3.74,
        SafetyMode.CAPI_LIKE: 0.0381,
        SafetyMode.BC_NO_BCC: 0.0204,
        SafetyMode.BC_BCC: 0.0015,
    },
    GPUThreading.MODERATELY: {
        SafetyMode.FULL_IOMMU: 0.85,
        SafetyMode.CAPI_LIKE: 0.165,
        SafetyMode.BC_NO_BCC: 0.0726,
        SafetyMode.BC_BCC: 0.0084,
    },
}

# Per-workload full-IOMMU overheads readable from Fig. 4a's annotations.
PAPER_FULL_IOMMU_HIGHLY = {
    "backprop": 1.43,
    "bfs": 9.83,
    "hotspot": 1.60,
    "lud": 8.98,
    "nn": 1.76,
    "nw": 8.14,
    "pathfinder": 2.15,
}


@dataclass
class Fig4Result:
    """Per-workload overheads for one GPU threading configuration."""

    threading: GPUThreading
    # overheads[mode][workload] -> fractional overhead (0.15 == 15%)
    overheads: Dict[SafetyMode, Dict[str, float]] = field(default_factory=dict)
    baseline_cycles: Dict[str, float] = field(default_factory=dict)

    def geomean(self, mode: SafetyMode) -> float:
        return geometric_mean(list(self.overheads[mode].values()))

    def render(self) -> str:
        headers = ["workload"] + [m.label for m in SAFETY_MODES]
        rows = []
        for name in self.overheads[SAFETY_MODES[0]]:
            rows.append(
                [name]
                + [fmt_percent(self.overheads[m][name]) for m in SAFETY_MODES]
            )
        rows.append(
            ["GEOMEAN"] + [fmt_percent(self.geomean(m)) for m in SAFETY_MODES]
        )
        rows.append(
            ["paper"]
            + [fmt_percent(PAPER_GEOMEANS[self.threading][m]) for m in SAFETY_MODES]
        )
        return text_table(
            headers,
            rows,
            title=(
                f"Figure 4{'a' if self.threading is GPUThreading.HIGHLY else 'b'}: "
                f"runtime overhead vs. ATS-only IOMMU ({self.threading.label})"
            ),
        )


def grid(
    threading: GPUThreading = GPUThreading.HIGHLY,
    workloads: Optional[List[str]] = None,
    seed: int = 1234,
    ops_scale: float = 1.0,
) -> List["Cell"]:
    """The figure's simulation grid: baseline + every safety mode."""
    from repro.sweep import Cell

    names = workloads or workload_names()
    return [
        Cell(name, mode, threading, seed, ops_scale, tag="fig4")
        for name in names
        for mode in [SafetyMode.ATS_ONLY] + SAFETY_MODES
    ]


def run(
    threading: GPUThreading = GPUThreading.HIGHLY,
    workloads: Optional[List[str]] = None,
    seed: int = 1234,
    ops_scale: float = 1.0,
    workers: Optional[int] = 1,
) -> Fig4Result:
    """Simulate every (workload, safety mode) pair for one GPU config.

    With ``workers`` > 1 (or ``None`` = all cores) the grid is prewarmed
    in parallel via :func:`repro.sweep.prewarm`; the assembly below then
    consumes memoized results, so output is identical either way.
    """
    if workers is None or workers > 1:
        from repro.sweep import prewarm

        prewarm(grid(threading, workloads, seed, ops_scale), workers=workers)
    names = workloads or workload_names()
    result = Fig4Result(threading=threading)
    for mode in SAFETY_MODES:
        result.overheads[mode] = {}
    for name in names:
        base = cached_run(name, SafetyMode.ATS_ONLY, threading, seed, ops_scale)
        result.baseline_cycles[name] = base.gpu_cycles
        for mode in SAFETY_MODES:
            res = cached_run(name, mode, threading, seed, ops_scale)
            result.overheads[mode][name] = runtime_overhead(res, base)
    return result
