"""Figure 4 — runtime overhead of each safety approach vs. the unsafe
ATS-only IOMMU baseline, per workload, for both GPU configurations.

Paper reference values (geometric means):

======================  ================  ====================
Configuration           Highly threaded   Moderately threaded
======================  ================  ====================
Full IOMMU              374%              85%
CAPI-like               3.81%             16.5%
Border Control-noBCC    2.04%             7.26%
Border Control-BCC      0.15%             0.84%
======================  ================  ====================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.experiments.common import cached_run, fmt_percent, text_table
from repro.sim.config import GPUThreading, SafetyMode
from repro.sim.runner import geometric_mean, runtime_overhead
from repro.workloads.registry import workload_names

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycle)
    from repro.sweep import Cell

__all__ = ["Fig4Result", "grid", "run", "PAPER_GEOMEANS", "SAFETY_MODES"]

SAFETY_MODES = [
    SafetyMode.FULL_IOMMU,
    SafetyMode.CAPI_LIKE,
    SafetyMode.BC_NO_BCC,
    SafetyMode.BC_BCC,
]

PAPER_GEOMEANS: Dict[GPUThreading, Dict[SafetyMode, float]] = {
    GPUThreading.HIGHLY: {
        SafetyMode.FULL_IOMMU: 3.74,
        SafetyMode.CAPI_LIKE: 0.0381,
        SafetyMode.BC_NO_BCC: 0.0204,
        SafetyMode.BC_BCC: 0.0015,
    },
    GPUThreading.MODERATELY: {
        SafetyMode.FULL_IOMMU: 0.85,
        SafetyMode.CAPI_LIKE: 0.165,
        SafetyMode.BC_NO_BCC: 0.0726,
        SafetyMode.BC_BCC: 0.0084,
    },
}

# Per-workload full-IOMMU overheads readable from Fig. 4a's annotations.
PAPER_FULL_IOMMU_HIGHLY = {
    "backprop": 1.43,
    "bfs": 9.83,
    "hotspot": 1.60,
    "lud": 8.98,
    "nn": 1.76,
    "nw": 8.14,
    "pathfinder": 2.15,
}


@dataclass
class Fig4Result:
    """Per-workload overheads for one GPU threading configuration.

    Under ``allow_partial``, cells that failed are recorded as ``None``
    and rendered as explicit ``—`` gap markers; the geomean covers the
    surviving workloads only.
    """

    threading: GPUThreading
    # overheads[mode][workload] -> fractional overhead (0.15 == 15%),
    # or None for a gap (cell failed, partial rendering allowed)
    overheads: Dict[SafetyMode, Dict[str, Optional[float]]] = field(
        default_factory=dict
    )
    baseline_cycles: Dict[str, Optional[float]] = field(default_factory=dict)

    def geomean(self, mode: SafetyMode) -> Optional[float]:
        values = [v for v in self.overheads[mode].values() if v is not None]
        return geometric_mean(values) if values else None

    @property
    def complete(self) -> bool:
        return all(
            v is not None
            for per_mode in self.overheads.values()
            for v in per_mode.values()
        )

    def render(self) -> str:
        def fmt(value: Optional[float]) -> str:
            return "—" if value is None else fmt_percent(value)

        headers = ["workload"] + [m.label for m in SAFETY_MODES]
        rows = []
        for name in self.overheads[SAFETY_MODES[0]]:
            rows.append(
                [name] + [fmt(self.overheads[m][name]) for m in SAFETY_MODES]
            )
        rows.append(["GEOMEAN"] + [fmt(self.geomean(m)) for m in SAFETY_MODES])
        rows.append(
            ["paper"]
            + [fmt_percent(PAPER_GEOMEANS[self.threading][m]) for m in SAFETY_MODES]
        )
        title = (
            f"Figure 4{'a' if self.threading is GPUThreading.HIGHLY else 'b'}: "
            f"runtime overhead vs. ATS-only IOMMU ({self.threading.label})"
        )
        if not self.complete:
            title += "  [PARTIAL: — marks failed cells]"
        return text_table(headers, rows, title=title)


def grid(
    threading: GPUThreading = GPUThreading.HIGHLY,
    workloads: Optional[List[str]] = None,
    seed: int = 1234,
    ops_scale: float = 1.0,
) -> List["Cell"]:
    """The figure's simulation grid: baseline + every safety mode."""
    from repro.sweep import Cell

    names = workloads or workload_names()
    return [
        Cell(name, mode, threading, seed, ops_scale, tag="fig4")
        for name in names
        for mode in [SafetyMode.ATS_ONLY] + SAFETY_MODES
    ]


def run(
    threading: GPUThreading = GPUThreading.HIGHLY,
    workloads: Optional[List[str]] = None,
    seed: int = 1234,
    ops_scale: float = 1.0,
    workers: Optional[int] = 1,
    allow_partial: bool = False,
    journal=None,
) -> Fig4Result:
    """Simulate every (workload, safety mode) pair for one GPU config.

    With ``workers`` > 1 (or ``None`` = all cores) the grid is prewarmed
    in parallel via :func:`repro.sweep.prewarm`; the assembly below then
    consumes memoized results, so output is identical either way.
    ``allow_partial`` degrades gracefully instead of aborting: failed
    cells become ``None`` gaps in the result. A ``journal``
    (:class:`repro.journal.RunJournal`) makes the prewarm resumable.
    """
    if workers is None or workers > 1 or journal is not None:
        from repro.sweep import prewarm

        prewarm(
            grid(threading, workloads, seed, ops_scale),
            workers=workers,
            journal=journal,
            allow_partial=allow_partial,
        )
    names = workloads or workload_names()
    result = Fig4Result(threading=threading)
    for mode in SAFETY_MODES:
        result.overheads[mode] = {}
    for name in names:
        try:
            base = cached_run(name, SafetyMode.ATS_ONLY, threading, seed, ops_scale)
        except Exception:
            if not allow_partial:
                raise
            base = None
        result.baseline_cycles[name] = None if base is None else base.gpu_cycles
        for mode in SAFETY_MODES:
            if base is None:
                result.overheads[mode][name] = None
                continue
            try:
                res = cached_run(name, mode, threading, seed, ops_scale)
            except Exception:
                if not allow_partial:
                    raise
                result.overheads[mode][name] = None
                continue
            result.overheads[mode][name] = runtime_overhead(res, base)
    return result
