"""``repro.fleet.coordinator`` — lease-based fan-out across workers.

The coordinator owns a private asyncio loop in a daemon thread and a
TCP server workers dial into; :meth:`FleetCoordinator.map_cells` is the
synchronous, thread-safe bridge the sweep layer calls — it runs one
*campaign* on that loop and returns ``(outcomes, leftovers)`` where
``outcomes`` maps cell index → journal-style entry and ``leftovers``
are the indexes the fleet could not place (zero workers, abort) for
the caller's local supervised pool.

The paper's detect → contain → recover → degrade loop, applied to the
fleet itself:

========================  =============================================
failure                   response
========================  =============================================
worker dies (SIGKILL)     TCP EOF or missed heartbeats → every lease it
                          held expires → cells reassigned (charge +1)
network partition         heartbeats stop → same as death; a worker
                          back from the dead reconnects and its
                          duplicate results are ignored
ASSIGN frame lost         lease never appears in the worker's heartbeat
                          ``held`` set → expired after a 2×heartbeat
                          grace → reassigned
RESULT frame lost         worker stops reporting the lease → reassigned
                          → worker answers from its finished-index
                          memory (no recompute)
worker wedged on a cell   lease outlives ``lease_seconds`` → reassigned
cell kills every worker   per-index reassignment bound → finalized as a
                          crash failure (the fleet's poison quarantine)
coordinator dies          workers keep computing into journal shards;
                          the restarted run merges shards first and
                          re-executes nothing that finished anywhere
zero workers              campaign returns every cell as a leftover —
                          the sweep layer degrades to the local pool
========================  =============================================

Work-stealing: when the pending queue is dry and a worker sits idle,
queued (not yet started) leases are revoked from the most loaded
worker and reassigned — the tail of a campaign is bounded by the
slowest *cell*, not the slowest worker's queue.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import FleetError
from repro.faults.plan import FaultPlan
from repro.fleet import protocol
from repro.fleet.transport import FaultyTransport, FrameTransport
from repro.service.wire import WireError
from repro.supervisor import ERROR_CRASH, ERROR_TRANSIENT
from repro.sweep import Cell

__all__ = ["FleetCoordinator"]

OnEntryFn = Callable[[int, dict], None]


class _WorkerState:
    """The coordinator's book on one worker (survives reconnects)."""

    __slots__ = (
        "worker_id",
        "transport",
        "slots",
        "last_seen",
        "welcomed",
        "held",
        "reported_held",
        "report_time",
        "reported_running",
        "steal_inflight",
    )

    def __init__(self, worker_id: str, transport: FrameTransport) -> None:
        self.worker_id = worker_id
        self.transport = transport
        self.slots = 1
        self.last_seen = 0.0
        self.welcomed = False
        self.held: Set[str] = set()  # lease ids we believe it holds
        self.reported_held: Optional[Set[str]] = None
        self.report_time = 0.0
        self.reported_running = 0
        self.steal_inflight = False


class _Lease:
    __slots__ = ("lease_id", "index", "worker_id", "granted")

    def __init__(
        self, lease_id: str, index: int, worker_id: str, granted: float
    ) -> None:
        self.lease_id = lease_id
        self.index = index
        self.worker_id = worker_id
        self.granted = granted


class _Campaign:
    """Mutable state of one map_cells call."""

    def __init__(
        self,
        campaign_id: str,
        cells: Sequence[Cell],
        use_disk: bool,
        fresh: bool,
        run_id: Optional[str],
        journal_dir: Optional[str],
        on_entry: Optional[OnEntryFn],
    ) -> None:
        self.id = campaign_id
        self.cells = list(cells)
        self.use_disk = use_disk
        self.fresh = fresh
        self.run_id = run_id
        self.journal_dir = journal_dir
        self.on_entry = on_entry
        self.pending: "deque[int]" = deque(range(len(cells)))
        self.leases: Dict[str, _Lease] = {}
        self.charges: Dict[int, int] = {}
        self.outcomes: Dict[int, dict] = {}
        self.grant_counter = 0

    @property
    def done(self) -> bool:
        return len(self.outcomes) >= len(self.cells)

    def welcome_frame(self, heartbeat_seconds: float) -> dict:
        return protocol.welcome(
            self.id,
            [cell.to_dict() for cell in self.cells],
            self.use_disk,
            self.fresh,
            heartbeat_seconds,
            run_id=self.run_id,
            journal_dir=self.journal_dir,
        )


class FleetCoordinator:
    """The fleet's single control point (one per sweep host/service).

    Start it once; workers connect and stay connected across campaigns.
    ``fault_plan`` (a :class:`repro.faults.FaultPlan` with
    ``fleet.<worker_id>.{in,out}`` sites) turns every worker link into
    a :class:`~repro.fleet.transport.FaultyTransport` — the chaos gate's
    entry point. ``telemetry_path`` appends one JSON line per fleet
    event (connects, grants, expiries, steals, results), the artifact
    the CI fleet smoke uploads.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_seconds: float = 0.5,
        lease_seconds: float = 120.0,
        max_reassigns: int = 5,
        wait_seconds: float = 5.0,
        min_workers: int = 1,
        fault_plan: Optional[FaultPlan] = None,
        telemetry_path: Optional[Path] = None,
        steal: bool = True,
        log=None,
    ) -> None:
        self.host = host
        self.port = port
        self.heartbeat_seconds = heartbeat_seconds
        self.lease_seconds = lease_seconds
        self.max_reassigns = max_reassigns
        self.wait_seconds = wait_seconds
        self.min_workers = max(0, min_workers)
        self.fault_plan = fault_plan
        self.telemetry_path = Path(telemetry_path) if telemetry_path else None
        self.steal = steal
        self.log = log or (lambda message: None)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._start_error: Optional[BaseException] = None
        self._workers: Dict[str, _WorkerState] = {}
        self._camp: Optional[_Campaign] = None
        self._campaign_lock: Optional[asyncio.Lock] = None
        self._wake: Optional[asyncio.Event] = None
        self._telemetry_fh = None
        self._fault_counters: Dict[str, int] = {}
        self.stats: Dict[str, int] = {
            "workers_seen": 0,
            "assigned": 0,
            "results": 0,
            "duplicate_results": 0,
            "expired_leases": 0,
            "reassigned": 0,
            "stolen": 0,
            "dead_workers": 0,
            "finalized_failures": 0,
            "campaigns": 0,
        }

    # -- lifecycle (called from any thread) --------------------------------

    def start(self) -> "FleetCoordinator":
        """Bind the listener and start the coordinator thread.

        Returns once the server is accepting; with ``port=0`` the
        chosen port is in :attr:`port` afterwards.
        """
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._thread_main, name="fleet-coordinator", daemon=True
        )
        self._thread.start()
        self._started.wait(10.0)
        if self._start_error is not None:
            raise FleetError(
                f"coordinator failed to listen on {self.host}:{self.port}: "
                f"{self._start_error}"
            )
        if not self._started.is_set():
            raise FleetError("coordinator thread did not start in time")
        return self

    def stop(self) -> None:
        loop = self._loop
        if loop is None or self._thread is None:
            return
        asyncio.run_coroutine_threadsafe(self._shutdown(), loop).result(10.0)
        loop.call_soon_threadsafe(loop.stop)
        self._thread.join(10.0)
        self._thread = None
        self._loop = None

    def __enter__(self) -> "FleetCoordinator":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def worker_count(self) -> int:
        return len(self._workers)

    def shutdown_fleet(self, reason: str = "campaign complete") -> None:
        """Tell every connected worker to exit (standalone sweeps only).

        Long-lived coordinators (the job server) never call this —
        their workers stay connected across campaigns.
        """
        loop = self._loop
        if loop is None:
            return

        async def _broadcast() -> None:
            for ws in list(self._workers.values()):
                try:
                    await ws.transport.send(protocol.shutdown(reason))
                except (WireError, ConnectionError, OSError):
                    pass

        try:
            asyncio.run_coroutine_threadsafe(_broadcast(), loop).result(5.0)
        except Exception:
            pass  # best-effort: workers also exit on reconnect timeout

    def stats_snapshot(self) -> Dict[str, int]:
        merged = dict(self.stats)
        merged.update(self._fault_counters)
        merged["workers_connected"] = len(self._workers)
        return merged

    # -- the coordinator thread --------------------------------------------

    def _thread_main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self._campaign_lock = asyncio.Lock()
        self._wake = asyncio.Event()
        if self.telemetry_path is not None:
            self.telemetry_path.parent.mkdir(parents=True, exist_ok=True)
            self._telemetry_fh = open(self.telemetry_path, "a")
        try:
            try:
                self._server = loop.run_until_complete(
                    asyncio.start_server(self._handle, self.host, self.port)
                )
            except OSError as exc:
                self._start_error = exc
                return
            sockets = self._server.sockets or []
            if sockets:
                self.port = sockets[0].getsockname()[1]
            self._started.set()
            loop.run_forever()
        finally:
            self._started.set()
            try:
                loop.run_until_complete(loop.shutdown_asyncgens())
            except Exception:
                pass
            loop.close()
            if self._telemetry_fh is not None:
                self._telemetry_fh.close()
                self._telemetry_fh = None

    async def _shutdown(self) -> None:
        for ws in list(self._workers.values()):
            ws.transport.close()
        self._workers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def _emit(self, event: str, **fields) -> None:
        if self._telemetry_fh is None:
            return
        record = {"time": round(time.time(), 3), "event": event, **fields}
        self._telemetry_fh.write(json.dumps(record, default=str) + "\n")
        self._telemetry_fh.flush()

    # -- connections -------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        if self.fault_plan is not None:
            transport: FrameTransport = FaultyTransport(
                reader, writer, plan=self.fault_plan, counters=self._fault_counters
            )
        else:
            transport = FrameTransport(reader, writer)
        try:
            frame = await transport.recv()
        except WireError:
            transport.close()
            return
        if not isinstance(frame, dict) or frame.get("type") != protocol.HELLO:
            transport.close()
            return
        worker_id = str(frame.get("worker_id", "")) or f"anon-{id(transport)}"
        if isinstance(transport, FaultyTransport):
            transport.bind(worker_id)
        now = self._now()
        ws = self._workers.get(worker_id)
        if ws is None:
            ws = _WorkerState(worker_id, transport)
            self._workers[worker_id] = ws
            self.stats["workers_seen"] += 1
        else:
            ws.transport.close()  # reconnect replaces the old stream
            ws.transport = transport
            ws.welcomed = False
        ws.slots = max(1, int(frame.get("slots", 1)))
        ws.last_seen = now
        self._emit("worker-connect", worker=worker_id, slots=ws.slots)
        self.log(f"fleet: worker {worker_id} connected ({ws.slots} slots)")
        if self._camp is not None:
            await self._send_welcome(ws, self._camp)
        self._wake_up()
        try:
            while True:
                frame = await transport.recv()
                if frame is None:
                    break
                ws.last_seen = self._now()
                ftype = frame.get("type")
                if ftype == protocol.HEARTBEAT:
                    ws.reported_held = set(
                        lid for lid in frame.get("held", []) if isinstance(lid, str)
                    )
                    ws.report_time = ws.last_seen
                    ws.reported_running = int(frame.get("running", 0))
                    camp = self._camp
                    if camp is not None and frame.get("campaign_id") != camp.id:
                        # The worker is alive but has not installed the
                        # active campaign — our WELCOME was lost on the
                        # wire. Re-send it (once per heartbeat at most)
                        # or the worker would absorb leases forever
                        # without ever executing a cell.
                        await self._send_welcome(ws, camp)
                elif ftype == protocol.RESULT:
                    self._on_result(ws, frame)
                elif ftype == protocol.REVOKED:
                    self._on_revoked(ws, frame)
        except (WireError, ConnectionError, OSError):
            pass
        finally:
            if ws.transport is transport:
                self._worker_lost(ws, "connection closed")
            transport.close()

    def _now(self) -> float:
        assert self._loop is not None
        return self._loop.time()

    def _wake_up(self) -> None:
        if self._wake is not None:
            self._wake.set()

    async def _send_welcome(self, ws: _WorkerState, camp: _Campaign) -> None:
        try:
            await ws.transport.send(camp.welcome_frame(self.heartbeat_seconds))
            ws.welcomed = True
        except (WireError, ConnectionError, OSError):
            self._worker_lost(ws, "welcome failed")

    def _worker_lost(self, ws: _WorkerState, reason: str) -> None:
        if self._workers.get(ws.worker_id) is not ws:
            return  # already replaced by a reconnect
        del self._workers[ws.worker_id]
        self.stats["dead_workers"] += 1
        self._emit("worker-lost", worker=ws.worker_id, reason=reason)
        self.log(f"fleet: worker {ws.worker_id} lost ({reason})")
        camp = self._camp
        if camp is not None:
            for lease_id in list(ws.held):
                lease = camp.leases.get(lease_id)
                if lease is not None:
                    self._expire_lease(camp, lease, f"worker lost: {reason}")
        ws.held.clear()
        self._wake_up()

    # -- lease bookkeeping -------------------------------------------------

    def _expire_lease(self, camp: _Campaign, lease: _Lease, reason: str) -> None:
        camp.leases.pop(lease.lease_id, None)
        ws = self._workers.get(lease.worker_id)
        if ws is not None:
            ws.held.discard(lease.lease_id)
        if lease.index in camp.outcomes:
            return  # already finalized through another lease
        self.stats["expired_leases"] += 1
        charge = camp.charges.get(lease.index, 0) + 1
        camp.charges[lease.index] = charge
        self._emit(
            "lease-expired",
            lease=lease.lease_id,
            index=lease.index,
            worker=lease.worker_id,
            reason=reason,
            charge=charge,
        )
        if charge > self.max_reassigns:
            # The fleet's poison quarantine: a cell that keeps taking
            # workers (or links) down with it is finalized, not retried
            # forever — the termination bound of the whole campaign.
            self._finalize(
                camp,
                lease.index,
                {
                    "label": camp.cells[lease.index].label,
                    "ok": False,
                    "error": (
                        f"FleetError: lease expired {charge} times "
                        f"(last: {reason}); cell abandoned as poison"
                    ),
                    "error_kind": ERROR_CRASH,
                    "wall_seconds": 0.0,
                    "attempts": charge,
                    "cacheable": camp.cells[lease.index].cacheable,
                    "cache_hit": False,
                    "result": None,
                },
            )
        else:
            self.stats["reassigned"] += 1
            camp.pending.appendleft(lease.index)

    def _finalize(self, camp: _Campaign, index: int, entry: dict) -> None:
        if index in camp.outcomes:
            return
        camp.outcomes[index] = entry
        if not entry.get("ok"):
            self.stats["finalized_failures"] += 1
        if camp.on_entry is not None:
            try:
                camp.on_entry(index, entry)
            except Exception:  # caller's journal/progress must not kill the loop
                pass
        self._wake_up()

    def _on_result(self, ws: _WorkerState, frame: dict) -> None:
        camp = self._camp
        lease_id = frame.get("lease_id")
        index = frame.get("index")
        entry = frame.get("entry")
        if camp is None or not isinstance(index, int) or not isinstance(entry, dict):
            return
        lease = camp.leases.pop(lease_id, None) if isinstance(lease_id, str) else None
        if lease is not None:
            owner = self._workers.get(lease.worker_id)
            if owner is not None:
                owner.held.discard(lease.lease_id)
        if index in camp.outcomes:
            self.stats["duplicate_results"] += 1
            self._emit("duplicate-result", index=index, worker=ws.worker_id)
            return
        if not (0 <= index < len(camp.cells)):
            return
        self.stats["results"] += 1
        self._emit(
            "result",
            index=index,
            worker=ws.worker_id,
            ok=bool(entry.get("ok")),
            cache_hit=bool(entry.get("cache_hit")),
        )
        kind = entry.get("error_kind")
        if (
            not entry.get("ok")
            and kind in (ERROR_CRASH, ERROR_TRANSIENT)
            and camp.charges.get(index, 0) < self.max_reassigns
        ):
            # Retryable failure reported by a live worker: charge the
            # cell and put it back instead of finalizing.
            camp.charges[index] = camp.charges.get(index, 0) + 1
            self.stats["reassigned"] += 1
            camp.pending.append(index)
            self._wake_up()
            return
        self._finalize(camp, index, entry)

    def _on_revoked(self, ws: _WorkerState, frame: dict) -> None:
        camp = self._camp
        ws.steal_inflight = False
        if camp is None:
            return
        for item in frame.get("leases", []):
            lease_id = item.get("lease_id")
            lease = camp.leases.pop(lease_id, None) if lease_id else None
            if lease is None:
                continue
            ws.held.discard(lease.lease_id)
            if lease.index not in camp.outcomes:
                camp.pending.append(lease.index)
                self.stats["stolen"] += 1
                self._emit(
                    "lease-stolen",
                    lease=lease.lease_id,
                    index=lease.index,
                    worker=ws.worker_id,
                )
        self._wake_up()

    # -- the campaign loop -------------------------------------------------

    def map_cells(
        self,
        cells: Sequence[Cell],
        use_disk: bool = True,
        fresh: bool = False,
        run_id: Optional[str] = None,
        journal_dir: Optional[Path] = None,
        on_entry: Optional[OnEntryFn] = None,
        should_abort: Optional[Callable[[], bool]] = None,
        min_workers: Optional[int] = None,
        wait_seconds: Optional[float] = None,
        shutdown_workers: bool = False,
    ) -> Tuple[Dict[int, dict], List[int]]:
        """Fan ``cells`` out to the fleet (synchronous, thread-safe).

        Blocks until every cell is finalized or given up on; returns
        ``(outcomes, leftovers)``. ``on_entry(index, entry)`` fires on
        the coordinator thread as each result lands — the sweep layer
        journals and reports progress from it. ``wait_seconds`` bounds
        both the initial wait for ``min_workers`` connections and the
        mid-campaign grace before declaring a workerless fleet dead and
        returning the remainder as leftovers.
        """
        if self._loop is None:
            raise FleetError("coordinator is not started")
        # The campaign id is unique per call — never the bare run id. A
        # resumed run reuses its run id with a re-indexed pending list,
        # and workers key index-addressed memory on the campaign id, so
        # sharing an id across calls would replay the wrong cells.
        future = asyncio.run_coroutine_threadsafe(
            self._campaign(
                _Campaign(
                    campaign_id=(
                        f"{run_id or 'campaign'}"
                        f"@{os.getpid()}.{time.time_ns()}"
                    ),
                    cells=cells,
                    use_disk=use_disk,
                    fresh=fresh,
                    run_id=run_id,
                    journal_dir=str(journal_dir) if journal_dir else None,
                    on_entry=on_entry,
                ),
                should_abort=should_abort,
                min_workers=(
                    self.min_workers if min_workers is None else max(0, min_workers)
                ),
                wait_seconds=(
                    self.wait_seconds if wait_seconds is None else wait_seconds
                ),
                shutdown_workers=shutdown_workers,
            ),
            self._loop,
        )
        return future.result()

    async def _sleep_or_wake(self, timeout: float) -> None:
        assert self._wake is not None
        try:
            await asyncio.wait_for(self._wake.wait(), timeout)
        except asyncio.TimeoutError:
            pass
        self._wake.clear()

    async def _campaign(
        self,
        camp: _Campaign,
        should_abort: Optional[Callable[[], bool]],
        min_workers: int,
        wait_seconds: float,
        shutdown_workers: bool,
    ) -> Tuple[Dict[int, dict], List[int]]:
        assert self._campaign_lock is not None
        async with self._campaign_lock:
            self.stats["campaigns"] += 1
            self._camp = camp
            self._emit(
                "campaign-start",
                campaign=camp.id,
                cells=len(camp.cells),
                workers=len(self._workers),
            )
            try:
                aborted = lambda: should_abort is not None and should_abort()
                deadline = self._now() + wait_seconds
                while self._now() < deadline and not aborted():
                    # Reap half-open connections first so a dead peer
                    # never satisfies min_workers.
                    self._reap_dead_workers()
                    if len(self._workers) >= min_workers:
                        break
                    await self._sleep_or_wake(0.05)
                for ws in list(self._workers.values()):
                    await self._send_welcome(ws, camp)
                tick = max(0.05, self.heartbeat_seconds / 2.0)
                workerless_since: Optional[float] = None
                while not camp.done and not aborted():
                    now = self._now()
                    if self._workers:
                        workerless_since = None
                    else:
                        if workerless_since is None:
                            workerless_since = now
                        elif now - workerless_since > wait_seconds:
                            break  # degrade: hand the rest back to the caller
                    self._check_expiries(camp)
                    await self._assign(camp)
                    if self.steal:
                        await self._request_steals(camp)
                    await self._sleep_or_wake(tick)
            finally:
                self._camp = None
                self._emit(
                    "campaign-end",
                    campaign=camp.id,
                    completed=len(camp.outcomes),
                    leftover=len(camp.cells) - len(camp.outcomes),
                    stats=self.stats_snapshot(),
                )
                if shutdown_workers:
                    for ws in list(self._workers.values()):
                        try:
                            await ws.transport.send(protocol.shutdown())
                        except (WireError, ConnectionError, OSError):
                            pass
        leftovers = [
            index for index in range(len(camp.cells)) if index not in camp.outcomes
        ]
        return camp.outcomes, leftovers

    def _reap_dead_workers(self) -> None:
        """Drop workers that stopped heartbeating — welcomed or not.

        Workers heartbeat from the moment they connect (pre-WELCOME at
        :data:`repro.fleet.protocol.DEFAULT_HEARTBEAT_SECONDS`), so an
        un-welcomed entry whose ``last_seen`` is older than the connect
        grace is a half-open connection, not a live idle worker — left
        alone it would count toward ``min_workers`` forever.
        """
        now = self._now()
        dead_after = 3.0 * self.heartbeat_seconds
        connect_grace = max(
            dead_after, 3.0 * protocol.DEFAULT_HEARTBEAT_SECONDS
        )
        for ws in list(self._workers.values()):
            idle = now - ws.last_seen
            if ws.welcomed and idle > dead_after:
                ws.transport.close()
                self._worker_lost(ws, "missed heartbeats")
            elif not ws.welcomed and idle > connect_grace:
                ws.transport.close()
                self._worker_lost(ws, "silent since connect")

    def _check_expiries(self, camp: _Campaign) -> None:
        self._reap_dead_workers()
        now = self._now()
        reconcile_after = 2.0 * self.heartbeat_seconds
        for lease in list(camp.leases.values()):
            ws = self._workers.get(lease.worker_id)
            if ws is None:
                self._expire_lease(camp, lease, "worker gone")
                continue
            if (
                ws.reported_held is not None
                and ws.report_time - lease.granted > reconcile_after
                and lease.lease_id not in ws.reported_held
            ):
                # The worker has heartbeated well after this grant and
                # does not hold it: the ASSIGN (or its RESULT) was lost.
                self._expire_lease(camp, lease, "not reported held")
            elif now - lease.granted > self.lease_seconds:
                self._expire_lease(camp, lease, "lease deadline")

    async def _assign(self, camp: _Campaign) -> None:
        if not camp.pending:
            return
        now = self._now()
        # Round-robin over welcomed workers with spare queue depth
        # (2× slots: enough to keep pipelines full, shallow enough that
        # stealing rarely needs to move much).
        for ws in list(self._workers.values()):
            if not camp.pending:
                return
            if not ws.welcomed:
                continue
            capacity = ws.slots * 2 - len(ws.held)
            grants = []
            while camp.pending and capacity > 0:
                index = camp.pending.popleft()
                if index in camp.outcomes:
                    continue
                camp.grant_counter += 1
                lease_id = f"{camp.id}:{index}:{camp.grant_counter}"
                lease = _Lease(lease_id, index, ws.worker_id, now)
                camp.leases[lease_id] = lease
                ws.held.add(lease_id)
                grants.append({"lease_id": lease_id, "index": index})
                capacity -= 1
            if not grants:
                continue
            self.stats["assigned"] += len(grants)
            for grant in grants:
                self._emit(
                    "lease-granted",
                    lease=grant["lease_id"],
                    index=grant["index"],
                    worker=ws.worker_id,
                )
            try:
                await ws.transport.send(protocol.assign(grants))
            except (WireError, ConnectionError, OSError):
                self._worker_lost(ws, "assign failed")

    async def _request_steals(self, camp: _Campaign) -> None:
        if camp.pending or camp.done:
            return
        idle = [
            ws
            for ws in self._workers.values()
            if ws.welcomed and not ws.held and not ws.steal_inflight
        ]
        if not idle:
            return
        # Steal from the most loaded worker with visibly queued leases
        # (held minus running, by its own last report).
        donors = sorted(
            (
                ws
                for ws in self._workers.values()
                if ws.welcomed
                and not ws.steal_inflight
                and ws.reported_held is not None
                and len(ws.held) - ws.reported_running > 1
            ),
            key=lambda ws: len(ws.held),
            reverse=True,
        )
        for donor in donors[: len(idle)]:
            queued = len(donor.held) - donor.reported_running
            count = max(1, queued // 2)
            donor.steal_inflight = True
            self._emit("steal-request", worker=donor.worker_id, count=count)
            try:
                await donor.transport.send(protocol.revoke(count=count))
            except (WireError, ConnectionError, OSError):
                self._worker_lost(donor, "revoke failed")
