"""``repro.fleet`` — a fault-tolerant distributed worker fleet.

PR 7 made one host's sweep workers warm and crash-contained; this
package extends :mod:`repro.supervisor` + :mod:`repro.journal` across
hosts (ROADMAP item 3): an asyncio coordinator fans sweep cells out to
remote workers over length-prefixed JSON frames (the
:func:`repro.service.wire.encode_frame` framing), and the whole stack
is built so that *node failure is the common case*:

* **Leases, not RPCs** — every cell is a lease with a deadline. A
  worker that dies (SIGKILL, OOM, unplugged) or vanishes behind a
  partition stops heartbeating; its leases expire and the cells are
  reassigned. Delivery is at-least-once; the content-hashed result
  cache plus the journal's last-wins idempotent replay make it
  effectively exactly-once (duplicate results are ignored, duplicate
  appends are harmless, and re-execution of a deterministic cell is
  bit-identical anyway).
* **Heartbeat lease reconciliation** — heartbeats carry the worker's
  held lease-ids, so a *dropped* ASSIGN or RESULT frame (not just a
  dead worker) is detected: a lease old enough that the worker should
  be reporting it, but absent from the report, is expired and
  reassigned.
* **Work-stealing** — queued (not yet started) leases are revoked from
  saturated workers when others sit idle.
* **Journal shards** — each worker journals its completions into a
  private :class:`repro.journal.JournalShard`; the coordinator merges
  shards last-wins into the authoritative journal, so a SIGKILLed
  coordinator restarts with zero re-execution of anything any worker
  finished.
* **Seeded network chaos** — :class:`~repro.fleet.transport.FaultyTransport`
  drops/delays/duplicates/partitions frames from a
  :class:`repro.faults.FaultPlan`, the same seeded-plan machinery the
  simulated hardware uses.
* **Graceful degradation** — zero connected workers is not an error:
  ``run_sweep(fleet=...)`` hands unplaced cells back to the local
  supervised pool.
"""

from repro.fleet.coordinator import FleetCoordinator
from repro.fleet.transport import FaultyTransport, FrameTransport, chaos_plan
from repro.fleet.worker import FleetWorker

__all__ = [
    "FaultyTransport",
    "FleetCoordinator",
    "FleetWorker",
    "FrameTransport",
    "chaos_plan",
]
