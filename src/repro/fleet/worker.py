"""``repro.fleet.worker`` — one remote host's share of a sweep.

A :class:`FleetWorker` dials the coordinator, announces itself
(HELLO), receives the campaign context (WELCOME), and then executes
assigned cells in a local :class:`~concurrent.futures.ProcessPoolExecutor`
— the *same* worker-side entry points as a single-host sweep
(:func:`repro.sweep._worker_init` warm pinning,
:func:`repro.sweep._run_cell` execution), so a cell computes
identically whether it ran locally or across the fleet.

Robustness posture:

* every completed cell is appended to the worker's private journal
  shard *before* the RESULT frame is sent — a dead coordinator (or a
  dropped frame) loses nothing, the shard merge recovers it;
* *successfully* finished indexes are remembered; a duplicate ASSIGN
  (the coordinator reassigning after a lost RESULT) is answered by
  re-sending the stored entry, never by recomputing. Failures are
  deliberately not memoized — a fresh lease for a failed index is a
  retry and re-executes the cell;
* the connection is disposable: on any error the worker reconnects
  with a fresh HELLO and the coordinator re-WELCOMEs it (same
  campaign id *and* cell list → pool, shard, and finished-index
  memory are kept; anything else reinstalls from scratch, so a stale
  campaign can never replay the wrong cell for an index);
* a died pool process (the cell SIGKILLed the worker, OOM, ...) is
  contained: the pool is rebuilt and the cell reported as a crash —
  the coordinator decides whether to retry it elsewhere.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import pickle
import re
import socket
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Dict, Optional, Set, Tuple

from repro.experiments import common
from repro.fleet import protocol
from repro.fleet.transport import FrameTransport
from repro.journal import JournalShard
from repro.service.wire import WireError
from repro.supervisor import ERROR_CRASH, traced_call
from repro.sweep import Cell, _run_cell, _worker_init

__all__ = ["FleetWorker", "sanitize_worker_id"]


def sanitize_worker_id(worker_id: str) -> str:
    """A filesystem-safe worker id (shard files embed it)."""
    return re.sub(r"[^A-Za-z0-9._-]", "_", worker_id) or "worker"


class FleetWorker:
    """One fleet worker process: connect, lease cells, compute, report."""

    def __init__(
        self,
        host: str,
        port: int,
        worker_id: Optional[str] = None,
        slots: Optional[int] = None,
        reconnect_seconds: float = 0.5,
        log=None,
    ) -> None:
        self.host = host
        self.port = port
        self.worker_id = sanitize_worker_id(
            worker_id or f"{socket.gethostname()}-{os.getpid()}"
        )
        self.slots = max(1, slots if slots is not None else (os.cpu_count() or 1))
        self.reconnect_seconds = reconnect_seconds
        self.log = log or (lambda message: None)
        self._stop = False
        self._transport: Optional[FrameTransport] = None
        # campaign state (survives reconnects within one campaign)
        self._campaign_id: Optional[str] = None
        self._campaign_digest: Optional[str] = None
        self._cells: Tuple[Cell, ...] = ()
        self._heartbeat_seconds = protocol.DEFAULT_HEARTBEAT_SECONDS
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_args: Tuple = ()
        self._shard: Optional[JournalShard] = None
        self._leases: Dict[str, int] = {}  # lease_id -> cell index
        self._running: Set[str] = set()
        self._done: Dict[int, Tuple[str, dict, Optional[int]]] = {}
        self._sem: Optional[asyncio.Semaphore] = None
        self._hb_wake: Optional[asyncio.Event] = None
        self.cells_executed = 0

    # -- lifecycle ---------------------------------------------------------

    def run(self) -> int:
        """Blocking entry point (the CLI ``worker`` subcommand)."""
        asyncio.run(self.run_async())
        return 0

    def stop(self) -> None:
        self._stop = True

    async def run_async(self) -> None:
        """Connect-and-serve until told to SHUTDOWN (or :meth:`stop`)."""
        try:
            while not self._stop:
                try:
                    reader, writer = await asyncio.open_connection(
                        self.host, self.port
                    )
                except OSError:
                    await asyncio.sleep(self.reconnect_seconds)
                    continue
                transport = FrameTransport(reader, writer)
                self._transport = transport
                try:
                    await transport.send(
                        protocol.hello(self.worker_id, self.slots)
                    )
                    await self._session(transport)
                except (WireError, ConnectionError, OSError):
                    pass  # disposable connection: reconnect below
                finally:
                    if self._transport is transport:
                        self._transport = None
                    transport.close()
                if not self._stop:
                    await asyncio.sleep(self.reconnect_seconds)
        finally:
            self._teardown_campaign()

    def _teardown_campaign(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        if self._shard is not None:
            self._shard.close()
            self._shard = None

    # -- one connection ----------------------------------------------------

    async def _session(self, transport: FrameTransport) -> None:
        # Heartbeat from the first moment of the session — not gated on
        # a WELCOME — so the coordinator can distinguish a live idle
        # worker (between campaigns) from a half-open connection and
        # reap the latter.
        self._hb_wake = asyncio.Event()
        heartbeat_task = asyncio.ensure_future(self._heartbeat_loop(transport))
        try:
            while True:
                frame = await transport.recv()
                if frame is None:
                    return
                ftype = frame.get("type")
                if ftype == protocol.WELCOME:
                    await self._install(frame)
                elif ftype == protocol.ASSIGN:
                    await self._on_assign(frame)
                elif ftype == protocol.REVOKE:
                    await self._on_revoke(transport, frame)
                elif ftype == protocol.SHUTDOWN:
                    self.log(f"shutdown: {frame.get('reason', '')}")
                    self._stop = True
                    return
        finally:
            heartbeat_task.cancel()

    async def _heartbeat_loop(self, transport: FrameTransport) -> None:
        # Send-first, then wait: the coordinator must hear from us well
        # inside its 3×heartbeat death deadline even in the very first
        # interval. The wait is interruptible (`_hb_wake`) so a WELCOME
        # that installs a faster campaign cadence — or a campaign id we
        # need to acknowledge — takes effect immediately instead of
        # after one stale (possibly 1 s default) sleep.
        try:
            while True:
                await transport.send(
                    protocol.heartbeat(
                        self.worker_id,
                        held=list(self._leases),
                        running=len(self._running),
                        campaign_id=self._campaign_id,
                    )
                )
                assert self._hb_wake is not None
                try:
                    await asyncio.wait_for(
                        self._hb_wake.wait(), self._heartbeat_seconds
                    )
                except asyncio.TimeoutError:
                    pass
                self._hb_wake.clear()
        except (asyncio.CancelledError, WireError, ConnectionError, OSError):
            return

    # -- campaign install --------------------------------------------------

    @staticmethod
    def _campaign_fingerprint(frame: dict) -> str:
        """Content hash of everything that defines cell-index meaning."""
        payload = json.dumps(
            [
                frame.get("cells", []),
                frame.get("use_disk", True),
                frame.get("fresh", False),
                frame.get("run_id"),
                frame.get("journal_dir"),
            ],
            sort_keys=True,
            default=str,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    async def _install(self, frame: dict) -> None:
        campaign_id = frame.get("campaign_id")
        digest = self._campaign_fingerprint(frame)
        self._heartbeat_seconds = float(
            frame.get("heartbeat_seconds", protocol.DEFAULT_HEARTBEAT_SECONDS)
        )
        if self._hb_wake is not None:
            # Re-announce on the new cadence right away; the coordinator
            # is waiting to see this campaign id in a heartbeat.
            self._hb_wake.set()
        if campaign_id == self._campaign_id and digest == self._campaign_digest:
            return  # re-WELCOME after a reconnect: keep pool/shard/memory
        # A matching id with a *different* cell list (a resumed run
        # reusing its id with a re-indexed pending set) must never reuse
        # index-keyed memory — lease indexes would point at the wrong
        # cells and the coordinator would journal wrong-cell entries.
        self._teardown_campaign()
        self._campaign_id = campaign_id
        self._campaign_digest = digest
        self._cells = tuple(Cell.from_dict(d) for d in frame.get("cells", []))
        use_disk = bool(frame.get("use_disk", True))
        fresh = bool(frame.get("fresh", False))
        self._leases = {}
        self._running = set()
        self._done = {}
        self._sem = asyncio.Semaphore(self.slots)
        # Same warm-worker recipe as the single-host sweep: the grid is
        # pickled once into the pool initializer, tasks are bare ints,
        # workers are pinned to this host's resolved cache dir.
        cache_dir = str(Path(common._cache_dir()).resolve())
        grid_blob = pickle.dumps(
            (self._cells, use_disk, fresh), protocol=pickle.HIGHEST_PROTOCOL
        )
        self._pool_args = (cache_dir, grid_blob, True)
        self._pool = self._new_pool()
        run_id = frame.get("run_id")
        journal_directory = frame.get("journal_dir")
        if run_id and journal_directory:
            self._shard = JournalShard.open(
                str(run_id), self.worker_id, Path(str(journal_directory))
            )
        self.log(
            f"campaign {campaign_id}: {len(self._cells)} cells, "
            f"{self.slots} slot(s), shard="
            + (str(self._shard.path) if self._shard else "off")
        )

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.slots,
            initializer=_worker_init,
            initargs=self._pool_args,
        )

    # -- leases ------------------------------------------------------------

    async def _on_assign(self, frame: dict) -> None:
        for lease in frame.get("leases", []):
            lease_id = lease.get("lease_id")
            index = lease.get("index")
            if not isinstance(lease_id, str) or not isinstance(index, int):
                continue
            if lease_id in self._leases:
                continue  # duplicated ASSIGN frame
            if index in self._done:
                # The coordinator lost our RESULT and reassigned; answer
                # from memory instead of recomputing.
                key, entry, seq = self._done[index]
                await self._send_result(lease_id, index, key, entry, seq)
                continue
            if not (0 <= index < len(self._cells)):
                continue
            self._leases[lease_id] = index
            asyncio.ensure_future(self._execute(lease_id, index))

    async def _on_revoke(self, transport: FrameTransport, frame: dict) -> None:
        """Release queued (never started) leases back to the coordinator."""
        wanted = list(frame.get("lease_ids", []))
        count = int(frame.get("count", 0))
        released = []
        for lease_id in list(self._leases):
            if lease_id in self._running:
                continue  # running cells are not preemptible
            if wanted and lease_id not in wanted:
                continue
            if not wanted and count <= len(released):
                break
            index = self._leases.pop(lease_id)
            released.append({"lease_id": lease_id, "index": index})
        await transport.send(protocol.revoked(released))

    async def _compute(self, index: int):
        """Run one cell in the pool; ``None`` means the pool is gone."""
        loop = asyncio.get_event_loop()
        try:
            return await loop.run_in_executor(
                self._pool, traced_call, _run_cell, index
            )
        except BrokenProcessPool:
            # The cell killed its process (or OOM did): contain it,
            # rebuild, and let the coordinator decide whether to retry
            # the cell on another worker.
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = self._new_pool()
            return (
                None,
                "BrokenProcessPool: pool process died mid-cell",
                0.0,
                ERROR_CRASH,
            )
        except RuntimeError:
            return None  # pool torn down under us (shutdown race)

    async def _execute(self, lease_id: str, index: int) -> None:
        assert self._sem is not None
        async with self._sem:
            if lease_id not in self._leases:
                return  # revoked while queued
            self._running.add(lease_id)
            try:
                outcome = await self._compute(index)
            finally:
                self._running.discard(lease_id)
                self._leases.pop(lease_id, None)
        if outcome is None:
            return
        value, error, wall, kind = outcome
        cell = self._cells[index]
        result_payload = None
        cache_hit = False
        if error is None and value is not None and cell.cacheable:
            result_payload = common._result_to_dict(value[0])
            cache_hit = bool(value[1])
        entry = {
            "label": cell.label,
            "ok": error is None,
            "error": error,
            "error_kind": kind,
            "wall_seconds": round(wall, 6),
            "attempts": 1,
            "cacheable": cell.cacheable,
            "cache_hit": cache_hit,
            "result": result_payload,
            "worker": self.worker_id,
        }
        key = cell.journal_key()
        seq = None
        if self._shard is not None:
            # Shard first, frame second: once this append lands, the
            # cell survives any combination of lost frames and dead
            # coordinators.
            seq = self._shard.record(key, entry)
        if entry["ok"]:
            # Only successes are answered from memory on a duplicate
            # ASSIGN; a reassigned *failed* index is the coordinator
            # retrying and must actually re-execute here.
            self._done[index] = (key, entry, seq)
        self.cells_executed += 1
        await self._send_result(lease_id, index, key, entry, seq)

    async def _send_result(
        self,
        lease_id: str,
        index: int,
        key: str,
        entry: dict,
        seq: Optional[int],
    ) -> None:
        transport = self._transport
        if transport is None:
            return  # between connections; the shard (or a re-ASSIGN) covers it
        try:
            await transport.send(protocol.result(lease_id, index, key, entry, seq))
        except (WireError, ConnectionError, OSError):
            pass
