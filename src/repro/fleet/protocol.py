"""``repro.fleet.protocol`` — the coordinator↔worker frame vocabulary.

Every frame is one length-prefixed JSON object (see
:func:`repro.service.wire.encode_frame`) with a ``type`` field. The
builders here are the single source of truth for frame shapes; both
ends (and the tests) construct frames through them.

Conversation shape::

    worker                        coordinator
      | -- HELLO ------------------> |   (identity + slot count)
      | <------------------ WELCOME |   (campaign: run id, cells, ...)
      | <------------------- ASSIGN |   (leases: cell indexes)
      | -- HEARTBEAT --------------> |   (held lease ids + running count)
      | -- RESULT -----------------> |   (one cell's journal entry)
      | <------------------- REVOKE |   (work-stealing / cleanup)
      | -- REVOKED ----------------> |   (queued leases actually released)
      | <----------------- SHUTDOWN |   (campaign over; standalone mode)

Failure taxonomy (who notices what):

* dead worker — TCP EOF, or missed heartbeats: every lease it held is
  expired and reassigned;
* dropped ASSIGN — the lease never shows up in the worker's heartbeat
  ``held`` set: expired and reassigned (the worker ignores nothing — it
  simply never knew);
* dropped RESULT — the worker no longer reports the lease as held, so
  the coordinator reassigns; the worker remembers *successfully*
  finished indexes and answers a duplicate ASSIGN by re-sending the
  stored RESULT instead of recomputing (failed indexes are retried
  for real — a duplicate ASSIGN for one re-executes the cell);
* half-open connection — workers heartbeat from the moment the
  session opens (pre-WELCOME, at :data:`DEFAULT_HEARTBEAT_SECONDS`),
  so a peer that connected but went silent is reaped after a connect
  grace instead of counting toward ``min_workers`` forever;
* dropped REVOKED — the released leases linger in the coordinator's
  table until heartbeat reconciliation expires them;
* duplicated anything — lease and index dedup on both ends makes a
  repeated frame a no-op;
* dead coordinator — workers keep computing and journaling to their
  shards; the restarted coordinator merges shards before assigning.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = [
    "ASSIGN",
    "DEFAULT_HEARTBEAT_SECONDS",
    "HEARTBEAT",
    "HELLO",
    "PROTOCOL_VERSION",
    "RESULT",
    "REVOKE",
    "REVOKED",
    "SHUTDOWN",
    "WELCOME",
    "assign",
    "heartbeat",
    "hello",
    "result",
    "revoke",
    "revoked",
    "shutdown",
    "welcome",
]

PROTOCOL_VERSION = 1

#: Heartbeat cadence a worker uses before its first WELCOME tells it
#: the campaign cadence; the coordinator's connect-grace reaping of
#: un-welcomed workers is sized against this.
DEFAULT_HEARTBEAT_SECONDS = 1.0

HELLO = "hello"
WELCOME = "welcome"
ASSIGN = "assign"
HEARTBEAT = "heartbeat"
RESULT = "result"
REVOKE = "revoke"
REVOKED = "revoked"
SHUTDOWN = "shutdown"


def hello(worker_id: str, slots: int) -> Dict[str, object]:
    return {
        "type": HELLO,
        "protocol": PROTOCOL_VERSION,
        "worker_id": worker_id,
        "slots": slots,
    }


def welcome(
    campaign_id: str,
    cells: Sequence[Dict[str, object]],
    use_disk: bool,
    fresh: bool,
    heartbeat_seconds: float,
    run_id: Optional[str] = None,
    journal_dir: Optional[str] = None,
) -> Dict[str, object]:
    """The whole campaign context, shipped once per (re)connection.

    ``campaign_id`` must be unique per ``map_cells`` call (the
    coordinator appends a nonce to the run id): a worker keys its
    index-addressed memory on it, and a resumed run re-indexes the
    pending cells, so two campaigns must never share an id. Workers
    additionally fingerprint the cell list and reinstall on any
    mismatch.

    Cells travel as :meth:`repro.sweep.Cell.to_dict` payloads — the
    worker rebuilds the grid and pickles it once into its local pool
    initializer, exactly like the single-host sweep. ``journal_dir``
    (when the campaign journals) is where the worker opens its shard;
    ``None`` disables sharding (nothing to resume into).
    """
    return {
        "type": WELCOME,
        "campaign_id": campaign_id,
        "run_id": run_id,
        "journal_dir": journal_dir,
        "cells": list(cells),
        "use_disk": use_disk,
        "fresh": fresh,
        "heartbeat_seconds": heartbeat_seconds,
    }


def assign(leases: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """``leases`` is a list of ``{"lease_id": ..., "index": ...}``."""
    return {"type": ASSIGN, "leases": list(leases)}


def heartbeat(
    worker_id: str,
    held: Sequence[str],
    running: int,
    campaign_id: Optional[str] = None,
) -> Dict[str, object]:
    """Liveness plus the worker's view of its leases.

    ``held`` is every lease the worker still considers its own
    (queued or running); the coordinator reconciles it against the
    lease table to detect frames lost in either direction.
    ``campaign_id`` is the campaign the worker has *installed* (None
    before any WELCOME arrived) — a mismatch against the active
    campaign tells the coordinator its WELCOME was lost and must be
    re-sent, since a heartbeating-but-uninstalled worker would
    otherwise absorb leases forever without executing anything.
    """
    return {
        "type": HEARTBEAT,
        "worker_id": worker_id,
        "held": list(held),
        "running": int(running),
        "campaign_id": campaign_id,
    }


def result(
    lease_id: str,
    index: int,
    key: str,
    entry: Dict[str, object],
    seq: Optional[int] = None,
) -> Dict[str, object]:
    """One finished cell: its journal entry, verbatim.

    ``entry`` is the same payload ``run_sweep`` journals locally
    (label/ok/error/wall_seconds/attempts/cacheable/cache_hit/result),
    so the coordinator can append it to the authoritative journal
    unchanged; ``seq`` is the worker-shard sequence for provenance.
    """
    return {
        "type": RESULT,
        "lease_id": lease_id,
        "index": int(index),
        "key": key,
        "entry": dict(entry),
        "seq": seq,
    }


def revoke(count: int = 0, lease_ids: Optional[Sequence[str]] = None) -> Dict[str, object]:
    """Ask for queued leases back: up to ``count``, or specific ids."""
    return {
        "type": REVOKE,
        "count": int(count),
        "lease_ids": list(lease_ids or []),
    }


def revoked(leases: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """``leases``: the ``{"lease_id", "index"}`` pairs actually released."""
    return {"type": REVOKED, "leases": list(leases)}


def shutdown(reason: str = "campaign complete") -> Dict[str, object]:
    return {"type": SHUTDOWN, "reason": reason}
