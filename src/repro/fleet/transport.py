"""``repro.fleet.transport`` — framed streams, optionally faulty.

:class:`FrameTransport` is the thin pairing of an asyncio stream with
the :func:`repro.service.wire.encode_frame` framing plus a send lock
(heartbeats and results interleave on one connection).

:class:`FaultyTransport` layers seeded network chaos on top, driven by
the same :class:`repro.faults.FaultPlan` machinery the simulated
hardware uses. Faults act on whole frames — the framing guarantees a
fault can lose, repeat, stall, or black-hole a *message*, never tear
one — at two sites per worker link:

* ``fleet.<worker_id>.out`` — coordinator→worker sends
  (:data:`~repro.faults.FaultKind.DROP`, ``DELAY`` [param = ms],
  ``DUP_FRAME``, ``PARTITION`` [param = frames swallowed]);
* ``fleet.<worker_id>.in`` — worker→coordinator receives (same kinds).

``PARTITION`` is symmetric: it swallows the next ``param`` frames in
*both* directions, modeling a link that goes dark rather than a single
lost datagram. Injection lives on the coordinator's side of every
connection so one seed governs the whole fleet's fault sequence.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Sequence

from repro.faults.plan import FaultKind, FaultPlan, FaultSpec, SiteInjector
from repro.service.wire import encode_frame, read_frame

__all__ = ["FaultyTransport", "FrameTransport", "chaos_plan"]


class FrameTransport:
    """One bidirectional length-prefixed-JSON stream."""

    def __init__(self, reader, writer) -> None:
        self._reader = reader
        self._writer = writer
        self._send_lock = asyncio.Lock()

    async def send(self, frame: dict) -> None:
        data = encode_frame(frame)
        async with self._send_lock:
            self._writer.write(data)
            await self._writer.drain()

    async def recv(self) -> Optional[dict]:
        """The next frame, or ``None`` on EOF (peer gone)."""
        return await read_frame(self._reader)

    def close(self) -> None:
        try:
            self._writer.close()
        except Exception:  # already torn down
            pass


class FaultyTransport(FrameTransport):
    """A :class:`FrameTransport` with seeded frame faults.

    Injectors are bound *after* the HELLO frame (sites are named by
    worker id, which HELLO carries), so the handshake is always clean;
    everything after it is fair game. ``counters`` is a shared dict the
    coordinator aggregates into its fleet stats.
    """

    def __init__(
        self,
        reader,
        writer,
        plan: Optional[FaultPlan] = None,
        counters: Optional[Dict[str, int]] = None,
    ) -> None:
        super().__init__(reader, writer)
        self._plan = plan
        self._out: Optional[SiteInjector] = None
        self._in: Optional[SiteInjector] = None
        self._blackout = 0  # frames (either direction) still swallowed
        self._redeliver: List[dict] = []  # DUP_FRAME on the recv side
        self.counters = counters if counters is not None else {}

    def bind(self, worker_id: str) -> None:
        """Attach this link's injectors once the peer has a name."""
        if self._plan is not None:
            self._out = self._plan.for_site(f"fleet.{worker_id}.out")
            self._in = self._plan.for_site(f"fleet.{worker_id}.in")

    def _count(self, what: str) -> None:
        self.counters[what] = self.counters.get(what, 0) + 1

    def _consume_blackout(self) -> bool:
        if self._blackout > 0:
            self._blackout -= 1
            self._count("frames_partitioned")
            return True
        return False

    async def _apply(self, spec: Optional[FaultSpec], frame: dict) -> str:
        """Returns ``"drop"``, ``"dup"``, or ``"pass"``."""
        if spec is None:
            return "pass"
        if spec.kind is FaultKind.DROP:
            self._count("frames_dropped")
            return "drop"
        if spec.kind is FaultKind.PARTITION:
            # This frame opens the partition and is swallowed by it.
            self._blackout = max(1, spec.param)
            self._count("partitions")
            return "drop"
        if spec.kind is FaultKind.DELAY:
            self._count("frames_delayed")
            await asyncio.sleep(max(0, spec.param) / 1000.0)
            return "pass"
        if spec.kind is FaultKind.DUP_FRAME:
            self._count("frames_duplicated")
            return "dup"
        return "pass"  # non-network kinds pass through untouched

    async def send(self, frame: dict) -> None:
        if self._consume_blackout():
            return
        spec = self._out.draw() if self._out is not None else None
        action = await self._apply(spec, frame)
        if action == "drop":
            return
        await super().send(frame)
        if action == "dup":
            await super().send(frame)

    async def recv(self) -> Optional[dict]:
        while True:
            if self._redeliver:
                return self._redeliver.pop()
            frame = await super().recv()
            if frame is None:
                return None
            if self._consume_blackout():
                continue
            spec = self._in.draw() if self._in is not None else None
            action = await self._apply(spec, frame)
            if action == "drop":
                continue
            if action == "dup":
                self._redeliver.append(frame)
            return frame


def chaos_plan(
    seed: int,
    worker_ids: Sequence[str],
    drop_rate: float = 0.05,
    delay_rate: float = 0.05,
    delay_ms: int = 25,
    dup_rate: float = 0.05,
    partition_rate: float = 0.0,
    partition_frames: int = 8,
    max_partitions: int = 1,
) -> FaultPlan:
    """A seeded fleet-network fault plan covering every worker link.

    The chaos gate uses this: frames to and from each named worker are
    dropped/delayed/duplicated at the given rates, plus (optionally) a
    bounded number of symmetric partitions that swallow
    ``partition_frames`` consecutive frames. Same seed → same fault
    sequence per link, the property the bit-identity gate leans on.
    """
    specs: List[FaultSpec] = []
    for worker_id in worker_ids:
        for direction in ("out", "in"):
            site = f"fleet.{worker_id}.{direction}"
            if partition_rate > 0:
                specs.append(
                    FaultSpec(
                        FaultKind.PARTITION,
                        site,
                        partition_rate,
                        max_count=max_partitions,
                        param=partition_frames,
                    )
                )
            if drop_rate > 0:
                specs.append(FaultSpec(FaultKind.DROP, site, drop_rate))
            if delay_rate > 0:
                specs.append(
                    FaultSpec(FaultKind.DELAY, site, delay_rate, param=delay_ms)
                )
            if dup_rate > 0:
                specs.append(FaultSpec(FaultKind.DUP_FRAME, site, dup_rate))
    return FaultPlan(seed, specs)
