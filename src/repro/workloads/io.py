"""Trace persistence: save/load kernel traces for reproducibility.

Traces are deterministic given a seed, but persisting them lets a study
pin the *exact* request stream across library versions (the calibrated
specs may evolve) or import traces produced by external tools.

Format: JSON with a version tag; ops are ``[gap, vaddr, write]`` triples
(``vaddr`` null for pure-compute segments).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.accel.gpu import KernelTrace

__all__ = ["save_trace", "load_trace", "TRACE_FORMAT_VERSION"]

TRACE_FORMAT_VERSION = 1


def save_trace(trace: KernelTrace, path: Union[str, Path]) -> None:
    """Serialize a trace to JSON."""
    payload = {
        "version": TRACE_FORMAT_VERSION,
        "name": trace.name,
        "footprint_pages": trace.footprint_pages,
        "cu_wavefronts": [
            [[[gap, vaddr, bool(write)] for gap, vaddr, write in wf] for wf in cu]
            for cu in trace.cu_wavefronts
        ],
    }
    Path(path).write_text(json.dumps(payload))


def load_trace(path: Union[str, Path]) -> KernelTrace:
    """Deserialize a trace saved by :func:`save_trace`."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("version")
    if version != TRACE_FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format version {version!r} "
            f"(expected {TRACE_FORMAT_VERSION})"
        )
    cu_wavefronts = [
        [
            [
                (int(gap), None if vaddr is None else int(vaddr), bool(write))
                for gap, vaddr, write in wf
            ]
            for wf in cu
        ]
        for cu in payload["cu_wavefronts"]
    ]
    return KernelTrace(
        name=payload["name"],
        cu_wavefronts=cu_wavefronts,
        footprint_pages=int(payload.get("footprint_pages", 0)),
    )
