"""``nw`` — Needleman-Wunsch sequence alignment (Rodinia).

Dynamic programming over a 2-D score matrix processed in anti-diagonal
wavefronts: strided accesses across rows with reuse of the previous
diagonal and little compute per cell. Cache-friendly once a diagonal is
resident — so, like lud, it suffers badly (~814%) when the full IOMMU
strips the caches away (Fig. 4a).
"""

from repro.workloads.base import WorkloadSpec

SPEC = WorkloadSpec(
    name="nw",
    description="sequence-alignment DP (anti-diagonal wavefronts)",
    footprint_bytes=8 * 1024 * 1024,
    ops_per_wavefront=800,
    write_fraction=0.35,
    compute_gap_mean=1.0,
    pattern="diagonal",
    l1_reuse=0.846,
    l2_reuse=0.15,
    l2_region_bytes=12 * 1024,
    row_blocks=128,
)
