"""``pathfinder`` — grid shortest path (Rodinia).

Row-by-row dynamic programming: each step reads the previous row and
writes the current one, so the working set is a sliding two-row window.
Regular and latency-tolerant — the paper shows almost no degradation for
pathfinder under the CAPI-like configuration (Fig. 4a).
"""

from repro.workloads.base import WorkloadSpec

SPEC = WorkloadSpec(
    name="pathfinder",
    description="grid DP over a sliding row window",
    footprint_bytes=2 * 1024 * 1024,
    ops_per_wavefront=600,
    write_fraction=0.3,
    compute_gap_mean=34.4,
    pattern="rows",
    l1_reuse=0.841,
    l2_reuse=0.155,
    l2_region_bytes=8 * 1024,
    row_blocks=256,
    row_window=2,
)
