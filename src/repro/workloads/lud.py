"""``lud`` — LU decomposition (Rodinia).

Blocked dense linear algebra: each submatrix tile is loaded and then
reused for many multiply-accumulate passes before the kernel moves to the
next tile. Caches are extremely effective, which is exactly why the
cache-less full-IOMMU configuration devastates it (~898% overhead in
Fig. 4a) while the Border Control configurations, which keep the caches,
barely register.
"""

from repro.workloads.base import WorkloadSpec

SPEC = WorkloadSpec(
    name="lud",
    description="blocked LU decomposition (dense, high tile reuse)",
    footprint_bytes=4 * 1024 * 1024,
    ops_per_wavefront=800,
    write_fraction=0.25,
    compute_gap_mean=1.1,
    pattern="blocked",
    l1_reuse=0.846,
    l2_reuse=0.15,
    l2_region_bytes=8 * 1024,
    tile_blocks=32,
    tile_passes=6,
)
