"""``hotspot`` — thermal simulation stencil (Rodinia).

A 2-D 5-point stencil over the chip temperature grid: row-major sweeps
where each output cell reads its neighbors, so the previous two rows stay
hot in cache. Regular, moderately compute-intensive; the paper shows it
among the workloads with almost no CAPI-like degradation (Fig. 4a).
"""

from repro.workloads.base import WorkloadSpec

SPEC = WorkloadSpec(
    name="hotspot",
    description="2-D thermal stencil (regular, good row reuse)",
    footprint_bytes=4 * 1024 * 1024,
    ops_per_wavefront=600,
    write_fraction=0.3,
    compute_gap_mean=43.1,
    pattern="stencil",
    l1_reuse=0.891,
    l2_reuse=0.1,
    l2_region_bytes=8 * 1024,
    row_blocks=64,
)
