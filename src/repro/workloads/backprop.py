"""``backprop`` — machine-learning layer training (Rodinia).

Backpropagation sweeps the weight matrices of a neural network layer by
layer: long unit-stride streams over large arrays with real arithmetic
between memory operations, plus heavy reuse of the small per-layer
weight/delta vectors. It is the most compute-rich workload in the suite —
the paper measures only ~0.025 border requests per cycle for it (Fig. 5)
and the smallest full-IOMMU penalty (~143%, Fig. 4a).
"""

from repro.workloads.base import WorkloadSpec

SPEC = WorkloadSpec(
    name="backprop",
    description="neural-network training sweep (regular, compute-rich)",
    footprint_bytes=16 * 1024 * 1024,
    ops_per_wavefront=560,
    write_fraction=0.3,
    compute_gap_mean=46.5,
    pattern="stream",
    l1_reuse=0.936,
    l2_reuse=0.06,
    l2_region_bytes=8 * 1024,
)
