"""``bfs`` — breadth-first search (Rodinia).

Graph traversal is the suite's stress case: short sequential runs over
adjacency lists separated by data-dependent jumps to effectively random
pages, with almost no arithmetic per edge. The paper measures the highest
border-crossing rate (~0.29 requests/cycle, Fig. 5) and by far the worst
full-IOMMU penalty (~983%, Fig. 4a) for bfs.
"""

from repro.workloads.base import WorkloadSpec

SPEC = WorkloadSpec(
    name="bfs",
    description="breadth-first graph traversal (irregular, memory-bound)",
    footprint_bytes=8 * 1024 * 1024,
    ops_per_wavefront=800,
    write_fraction=0.15,
    compute_gap_mean=1.0,
    pattern="graph",
    l1_reuse=0.844,
    l2_reuse=0.15,
    l2_region_bytes=12 * 1024,
    run_length=6,
)
