"""Workload specification and trace generation.

A :class:`WorkloadSpec` captures the statistics of one benchmark's memory
behavior; :func:`generate_trace` turns it into a concrete
:class:`~repro.accel.gpu.KernelTrace` against a process's freshly mmapped
buffers. Addresses are block-granular (already coalesced, as a GPU
load/store unit would emit them) and deterministic given the seed.

Each memory access is drawn from a three-level locality mixture, which is
what makes the specs calibratable against the paper's measurements:

* with probability ``l1_reuse`` the wavefront re-touches one of its
  recently used blocks (register-tile / shared-structure reuse — lands in
  the 16 KB L1);
* with probability ``l2_reuse`` it touches the compute unit's shared
  medium-sized region (weights, frontier bitmaps, the current submatrix —
  lands in the shared L2);
* otherwise it advances the benchmark's *cold pattern* — the part of the
  stream that actually crosses the border and reaches DRAM. The pattern
  flavor (streaming, graph runs, tiles, stencil rows, anti-diagonals,
  sliding row windows) determines page-touch behavior and hence TLB and
  page-walk pressure.

Stores follow the same mixture with probability ``write_fraction``; dirty
L2 lines later cross the border as writebacks.
"""

from __future__ import annotations

import random
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import List

from repro.accel.gpu import KernelTrace, Op
from repro.core.permissions import Perm
from repro.mem.address import BLOCK_SIZE, PAGE_SIZE
from repro.osmodel.kernel import Kernel
from repro.osmodel.process import Process
from repro.sim.config import GPUThreading

__all__ = ["WorkloadSpec", "generate_trace", "clear_trace_cache"]

BLOCKS_PER_PAGE = PAGE_SIZE // BLOCK_SIZE  # 32

# Memoized traces. The op streams are a pure function of
# (spec, threading, seed, ops_scale, large_pages, base_vaddr): the RNG is
# seeded fresh below and never observes any other state. Sweeps and
# benchmarks run the same cell many times (every safety mode shares one
# trace), so reusing the materialized stream — and its lazily built SoA
# mirror — removes the whole generation phase from repeat runs. The mmap
# + CPU-touch side effects above the cache lookup still replay per run.
_TRACE_CACHE: "OrderedDict[tuple, KernelTrace]" = OrderedDict()
_TRACE_CACHE_MAX = 8


def clear_trace_cache() -> None:
    """Drop memoized traces (tests; bounding memory between sweeps)."""
    _TRACE_CACHE.clear()


@dataclass(frozen=True)
class WorkloadSpec:
    """Statistical description of one benchmark's kernel."""

    name: str
    description: str
    footprint_bytes: int
    ops_per_wavefront: int
    write_fraction: float
    compute_gap_mean: float  # mean GPU cycles between memory instructions
    pattern: str  # cold-stream flavor, see module docstring
    l1_reuse: float = 0.0  # P(re-touch a recent block)
    l2_reuse: float = 0.0  # P(touch the CU's L2-resident region)
    l2_region_bytes: int = 24 * 1024  # per-CU shared region size
    recent_window: int = 6  # recent blocks eligible for L1 reuse
    run_length: int = 8  # 'graph': mean blocks per sequential run
    tile_blocks: int = 32  # 'blocked': tile size in blocks
    tile_passes: int = 4  # 'blocked': passes over each tile
    row_blocks: int = 64  # 'stencil'/'diagonal'/'rows': row width in blocks
    row_window: int = 2  # 'rows': rows in the working window

    def __post_init__(self) -> None:
        if not 0.0 <= self.l1_reuse + self.l2_reuse <= 1.0:
            raise ValueError("l1_reuse + l2_reuse must lie in [0, 1]")

    @property
    def cold_fraction(self) -> float:
        return max(0.0, 1.0 - self.l1_reuse - self.l2_reuse)

    @property
    def footprint_pages(self) -> int:
        return (self.footprint_bytes + PAGE_SIZE - 1) // PAGE_SIZE

    @property
    def footprint_blocks(self) -> int:
        return self.footprint_bytes // BLOCK_SIZE


class _AddressStream:
    """Stateful per-wavefront address generator."""

    def __init__(
        self,
        spec: WorkloadSpec,
        base_vaddr: int,
        wavefront_index: int,
        total_wavefronts: int,
        cu_index: int,
        rng: random.Random,
    ) -> None:
        self.spec = spec
        self.base = base_vaddr
        self.rng = rng
        self.total_blocks = max(1, spec.footprint_blocks)
        # Cold-stream slice owned by this wavefront (streaming patterns).
        slice_blocks = max(1, self.total_blocks // max(1, total_wavefronts))
        self.slice_start = (wavefront_index * slice_blocks) % self.total_blocks
        self.slice_blocks = slice_blocks
        # Start at a random point in the slice: real kernels' wavefronts do
        # not march in cache-set lockstep, and aligned slice starts would
        # pile every wavefront's working blocks into the same sets.
        self.cursor = rng.randrange(slice_blocks) if slice_blocks > 1 else 0
        # The CU's L2-resident shared region.
        region_blocks = max(1, spec.l2_region_bytes // BLOCK_SIZE)
        self.region_start = (cu_index * region_blocks) % self.total_blocks
        self.region_blocks = region_blocks
        # Recent blocks for L1 reuse, prefilled so reuse starts immediately.
        self.recent: "deque[int]" = deque(
            (self.slice_start + self.cursor + i) % self.total_blocks
            for i in range(spec.recent_window)
        )
        # Random per-wavefront base for the structured patterns (tiles,
        # stencil rows, diagonals, row windows). Real kernels assign each
        # wavefront its own region of the matrix/grid; deriving bases from
        # the wavefront index alone would align every wavefront's working
        # blocks to the same cache sets.
        self.pattern_base = rng.randrange(self.total_blocks)
        # blocked-pattern state
        self.tile_index = 0
        self.tile_pos = 0
        self.tile_pass = 0
        # graph-pattern state
        self.run_remaining = 0
        self.run_block = 0
        # stencil/diagonal/rows state
        self.step = 0
        # Trace generation is a measurable slice of a cell's wall time, so
        # next_address avoids per-call attribute chases: reuse thresholds
        # are precomputed (same float arithmetic, so identical draws) and
        # uniform draws go through Random._randbelow, which is exactly what
        # randrange(n) calls for a positive int bound.
        self._l1_reuse = spec.l1_reuse
        self._reuse_cum = spec.l1_reuse + spec.l2_reuse
        self._recent_window = spec.recent_window
        self._randbelow = getattr(rng, "_randbelow", None) or rng.randrange

    def _addr(self, block_index: int) -> int:
        return self.base + (block_index % self.total_blocks) * BLOCK_SIZE

    def next_address(self) -> int:
        rng = self.rng
        recent = self.recent
        draw = rng.random()
        if recent and draw < self._l1_reuse:
            block = recent[self._randbelow(len(recent))]
        elif draw < self._reuse_cum:
            block = self.region_start + self._randbelow(self.region_blocks)
        else:
            block = self._next_cold_block()
            recent.append(block)
            if len(recent) > self._recent_window:
                recent.popleft()
        return self.base + (block % self.total_blocks) * BLOCK_SIZE

    def _next_cold_block(self) -> int:
        spec = self.spec
        pattern = spec.pattern
        if pattern == "stream":
            block = self.slice_start + (self.cursor % self.slice_blocks)
            self.cursor += 1
            return block
        if pattern == "random":
            return self.rng.randrange(self.total_blocks)
        if pattern == "graph":
            if self.run_remaining <= 0:
                self.run_block = self.rng.randrange(self.total_blocks)
                self.run_remaining = max(
                    1, int(self.rng.expovariate(1.0 / spec.run_length))
                )
            self.run_remaining -= 1
            block, self.run_block = self.run_block, self.run_block + 1
            return block
        if pattern == "blocked":
            block = self.pattern_base + self.tile_index * spec.tile_blocks + self.tile_pos
            self.tile_pos += 1
            if self.tile_pos >= spec.tile_blocks:
                self.tile_pos = 0
                self.tile_pass += 1
                if self.tile_pass >= spec.tile_passes:
                    self.tile_pass = 0
                    self.tile_index += 1
            return block
        if pattern == "stencil":
            row_blocks = spec.row_blocks
            row, col = divmod(self.step, row_blocks)
            self.step += 1
            # Alternate between the current row and the two rows above it
            # (the 5-point stencil's vertical neighbors).
            touch_row = max(0, row - (self.step % 3))
            return self.pattern_base + touch_row * row_blocks + col
        if pattern == "diagonal":
            row_blocks = spec.row_blocks
            diag = self.step // row_blocks
            pos = self.step % row_blocks
            self.step += 1
            if self.step % 2:
                diag = max(0, diag - 1)  # revisit the previous diagonal
            return self.pattern_base + pos * row_blocks + (diag % row_blocks)
        if pattern == "rows":
            row_blocks = spec.row_blocks
            window_blocks = row_blocks * spec.row_window
            block = self.pattern_base + self.step % window_blocks
            self.step += 1
            if self.step % window_blocks == 0:
                self.pattern_base += row_blocks  # slide the window one row
            return block
        raise ValueError(f"unknown access pattern {pattern!r}")


def generate_trace(
    spec: WorkloadSpec,
    kernel: Kernel,
    proc: Process,
    threading: GPUThreading,
    seed: int = 1234,
    ops_scale: float = 1.0,
    touch_on_cpu: bool = True,
    large_pages: bool = False,
) -> KernelTrace:
    """Materialize a workload: mmap its buffers, emit per-wavefront ops.

    ``touch_on_cpu`` mirrors Rodinia's CPU-side initialization: frames are
    populated before kernel launch (the kernel's eager mmap does this), so
    the accelerator's ATS walks always find present mappings.

    ``large_pages`` backs the footprint with 2 MB pages (§3.4.4): one ATS
    translation then covers 512 base pages, and Border Control records
    all of them in a single insertion.
    """
    if large_pages:
        from repro.mem.address import PAGES_PER_LARGE_PAGE

        pages = -(-spec.footprint_pages // PAGES_PER_LARGE_PAGE) * PAGES_PER_LARGE_PAGE
        base_vaddr = kernel.mmap(proc, pages, Perm.RW, large=True)
    else:
        base_vaddr = kernel.mmap(proc, spec.footprint_pages, Perm.RW)
    if touch_on_cpu:
        # Write a recognizable header per page group so reads return data.
        for page in range(0, spec.footprint_pages, 64):
            kernel.proc_write(
                proc, base_vaddr + page * PAGE_SIZE, page.to_bytes(8, "little")
            )
    cache_key = (spec, threading, seed, ops_scale, large_pages, base_vaddr)
    cached = _TRACE_CACHE.get(cache_key)
    if cached is not None:
        _TRACE_CACHE.move_to_end(cache_key)
        return cached
    rng = random.Random(seed)
    num_cus = threading.num_cus
    wf_per_cu = threading.wavefronts_per_cu
    total_wf = num_cus * wf_per_cu
    ops_per_wf = max(1, int(spec.ops_per_wavefront * ops_scale))
    gap_mean = spec.compute_gap_mean

    # Hot generation loop: methods bound once, the exponential rate
    # computed once (identical float, hence identical draws). RNG call
    # order per op is unchanged: gap, address, write.
    inv_gap = 1.0 / gap_mean if gap_mean > 0 else 0.0
    expovariate = rng.expovariate
    rand = rng.random
    write_fraction = spec.write_fraction
    cu_wavefronts: List[List[List[Op]]] = []
    wf_global = 0
    for cu in range(num_cus):
        wavefronts: List[List[Op]] = []
        for _wf in range(wf_per_cu):
            stream = _AddressStream(spec, base_vaddr, wf_global, total_wf, cu, rng)
            next_address = stream.next_address
            ops: List[Op] = []
            append = ops.append
            if gap_mean > 0:
                for _i in range(ops_per_wf):
                    append(
                        (
                            int(expovariate(inv_gap)),
                            next_address(),
                            rand() < write_fraction,
                        )
                    )
            else:
                for _i in range(ops_per_wf):
                    append((0, next_address(), rand() < write_fraction))
            wavefronts.append(ops)
            wf_global += 1
        cu_wavefronts.append(wavefronts)
    trace = KernelTrace(
        name=spec.name,
        cu_wavefronts=cu_wavefronts,
        footprint_pages=spec.footprint_pages,
    )
    _TRACE_CACHE[cache_key] = trace
    if len(_TRACE_CACHE) > _TRACE_CACHE_MAX:
        _TRACE_CACHE.popitem(last=False)
    return trace
