"""Synthetic Rodinia-proxy workloads (paper §5.1).

The paper evaluates Border Control with seven Rodinia benchmarks running
on gem5-gpu. We do not have Rodinia binaries or a cycle-accurate GPU, so
each workload here is a *trace generator* whose memory-access statistics
are calibrated to the published behavior of its namesake: access pattern
(regular streaming for ``lud``-style kernels vs. irregular,
data-dependent accesses for ``bfs``), cache reuse, compute intensity, and
read/write mix. Border Control's overhead depends only on the request
stream that crosses the border, so matching those statistics preserves
the experiment (see DESIGN.md, substitutions table).
"""

from repro.workloads.base import WorkloadSpec, generate_trace
from repro.workloads.registry import (
    WORKLOADS,
    get_workload,
    workload_names,
)

__all__ = [
    "WORKLOADS",
    "WorkloadSpec",
    "generate_trace",
    "get_workload",
    "workload_names",
]
