"""``nn`` — nearest neighbor (Rodinia).

A scan over a large record array computing distances to a query point:
pure streaming reads with a small hot query/result structure and light
arithmetic. Very few writes (only the running best-candidates list).
"""

from repro.workloads.base import WorkloadSpec

SPEC = WorkloadSpec(
    name="nn",
    description="nearest-neighbor record scan (streaming reads)",
    footprint_bytes=8 * 1024 * 1024,
    ops_per_wavefront=600,
    write_fraction=0.05,
    compute_gap_mean=40.1,
    pattern="stream",
    l1_reuse=0.77,
    l2_reuse=0.2,
    l2_region_bytes=12 * 1024,
)
