"""Registry of the seven Rodinia-proxy workloads (paper Fig. 4/5 order)."""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.base import WorkloadSpec
from repro.workloads import backprop, bfs, hotspot, lud, nn, nw, pathfinder

__all__ = ["WORKLOADS", "get_workload", "workload_names"]

WORKLOADS: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        backprop.SPEC,
        bfs.SPEC,
        hotspot.SPEC,
        lud.SPEC,
        nn.SPEC,
        nw.SPEC,
        pathfinder.SPEC,
    )
}


def get_workload(name: str) -> WorkloadSpec:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(WORKLOADS)}"
        ) from None


def workload_names() -> List[str]:
    """Paper order: backprop, bfs, hotspot, lud, nn, nw, pathfinder."""
    return list(WORKLOADS)
