"""Setup shim.

All metadata lives in pyproject.toml; this file exists so that editable
installs work on machines without the ``wheel`` package (offline
environments), via ``python setup.py develop``.
"""

from setuptools import setup

setup()
