"""Warm worker reuse, cache provenance, and incremental sweep caching.

These tests pin the two halves of the parallel-sweep repair:

* **Warm Systems** — a worker reuses constructed ``System`` instances
  via in-place reset, and the reuse is bit-identical to building fresh.
* **Honest caching** — cache-hit accounting is the provenance fact
  ``cached_run_ex`` returns (never a racy file-existence probe), a
  repeat sweep over an identical grid is 100% hits with zero recompute,
  and workers are pinned to the parent's resolved cache dir regardless
  of their inherited environment or start method.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import tempfile
from pathlib import Path

import pytest

from repro import sweep
from repro.experiments import common
from repro.journal import RunJournal
from repro.sim.config import GPUThreading, SafetyMode
from repro.sim.runner import (
    clear_warm_registry,
    run_single,
    warm_enabled,
    warm_registry_stats,
)
from repro.supervisor import supervised_map

SCALE = 0.05


def _cell(**overrides) -> sweep.Cell:
    params = dict(
        workload="bfs",
        safety=SafetyMode.ATS_ONLY,
        threading=GPUThreading.MODERATELY,
        ops_scale=SCALE,
    )
    params.update(overrides)
    return sweep.Cell(**params)


@pytest.fixture(autouse=True)
def isolated_state(tmp_path, monkeypatch):
    """Fresh cache dir, cold memory cache, cold warm registry, warm off."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_WARM", raising=False)
    monkeypatch.delenv("REPRO_WARM_MAX", raising=False)
    common._memory_cache.clear()
    clear_warm_registry()
    yield
    common._memory_cache.clear()
    clear_warm_registry()


def _fields(result) -> dict:
    return {
        f.name: getattr(result, f.name)
        for f in dataclasses.fields(type(result))
    }


def _run(cell: sweep.Cell):
    return run_single(
        cell.workload,
        cell.safety,
        cell.threading,
        seed=cell.seed,
        ops_scale=cell.ops_scale,
        record_border=cell.record_border,
        downgrade_interval_cycles=cell.downgrade_interval_cycles,
    )


# ---------------------------------------------------------------------------
# warm System registry: reuse must be invisible in the data
# ---------------------------------------------------------------------------


class TestWarmRegistry:
    def test_warm_off_by_default(self):
        assert not warm_enabled()
        _run(_cell())
        assert warm_registry_stats()["size"] == 0

    def test_warm_reuse_bit_identical(self, monkeypatch):
        cells = [_cell(safety=safety) for safety in SafetyMode]
        cells.append(_cell(downgrade_interval_cycles=5e4))
        fresh = [_fields(_run(cell)) for cell in cells]

        monkeypatch.setenv("REPRO_WARM", "1")
        clear_warm_registry()
        first_warm = [_fields(_run(cell)) for cell in cells]
        second_warm = [_fields(_run(cell)) for cell in cells]

        for cell, expect, w1, w2 in zip(cells, fresh, first_warm, second_warm):
            assert w1 == expect, f"{cell.label}: first warm pass diverged"
            assert w2 == expect, f"{cell.label}: reused System diverged"
        stats = warm_registry_stats()
        # Second pass runs every cell on a reused System.
        assert stats["hits"] >= len(cells)
        assert stats["size"] > 0

    def test_warm_reuse_with_vector_tier_bit_identical(self, monkeypatch):
        """A warm-reused System running the vectorized tier (PR 10) must
        carry no batch state across runs: snapshots, SoA bindings, and
        per-launch dispatchers die with reset_for_reuse, so the reused
        run is bit-identical to a fresh build in either mode."""
        from repro.sim import batch

        if not batch.numpy_available():  # pragma: no cover
            pytest.skip("numpy unavailable; vector tier cannot engage")
        cell = _cell(safety=SafetyMode.BC_BCC)
        monkeypatch.setenv("REPRO_VECTOR", "0")
        scalar_fresh = _fields(_run(cell))

        monkeypatch.setenv("REPRO_VECTOR", "1")
        vector_fresh = _fields(_run(cell))
        assert vector_fresh == scalar_fresh

        monkeypatch.setenv("REPRO_WARM", "1")
        clear_warm_registry()
        batch.reset_stats()
        first = _fields(_run(cell))
        second = _fields(_run(cell))  # reused System, batch state reset
        assert warm_registry_stats()["hits"] >= 1
        assert first == scalar_fresh
        assert second == scalar_fresh
        # The vector tier really ran on the warm path (not silently off).
        assert batch.STATS.as_dict()["ops_flattened"] > 0

    def test_trace_hooks_do_not_leak_across_reuse(self, monkeypatch):
        plain = _cell(safety=SafetyMode.BC_BCC)
        traced = _cell(safety=SafetyMode.BC_BCC, record_border=True)
        expected = _fields(_run(plain))

        monkeypatch.setenv("REPRO_WARM", "1")
        clear_warm_registry()
        traced_result = _run(traced)
        assert traced_result.border_trace  # the hook did record
        reused = _run(plain)  # same config → reuses the traced System
        assert warm_registry_stats()["hits"] >= 1
        assert reused.border_trace is None
        got = _fields(reused)
        expected.pop("border_trace"), got.pop("border_trace")
        assert got == expected

    def test_registry_cap_evicts_lru(self, monkeypatch):
        monkeypatch.setenv("REPRO_WARM", "1")
        monkeypatch.setenv("REPRO_WARM_MAX", "1")
        clear_warm_registry()
        _run(_cell(safety=SafetyMode.ATS_ONLY))
        _run(_cell(safety=SafetyMode.FULL_IOMMU))
        stats = warm_registry_stats()
        assert stats["size"] == 1
        assert stats["evictions"] >= 1


# ---------------------------------------------------------------------------
# cache provenance: the hit flag is what cached_run_ex reports
# ---------------------------------------------------------------------------


class TestCacheProvenance:
    ARGS = ("bfs", SafetyMode.ATS_ONLY, GPUThreading.MODERATELY)

    def test_sources_computed_memory_disk(self):
        _, source = common.cached_run_ex(*self.ARGS, ops_scale=SCALE)
        assert source == "computed"
        _, source = common.cached_run_ex(*self.ARGS, ops_scale=SCALE)
        assert source == "memory"
        common._memory_cache.clear()
        _, source = common.cached_run_ex(*self.ARGS, ops_scale=SCALE)
        assert source == "disk"

    def test_run_cell_hit_flag_is_provenance(self):
        task = (_cell(), True, False)
        _result, hit = sweep._run_cell(task)
        assert hit is False
        _result, hit = sweep._run_cell(task)
        assert hit is True

    def test_two_worker_race_reports_true_computes(self, tmp_path):
        """Two cold processes race one key: reported provenance must match
        the number of simulations that actually ran (the old
        ``cache_path(...).exists()`` probe misreported exactly here)."""
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("race test needs fork to inherit the patched runner")
        ctx = multiprocessing.get_context("fork")
        sentinel_dir = tmp_path / "sentinels"
        sentinel_dir.mkdir()
        cache_dir = os.environ["REPRO_CACHE_DIR"]
        barrier = ctx.Barrier(2)
        queue = ctx.Queue()
        procs = [
            ctx.Process(
                target=_race_probe,
                args=(barrier, cache_dir, str(sentinel_dir), queue),
            )
            for _ in range(2)
        ]
        for proc in procs:
            proc.start()
        reports = [queue.get(timeout=120) for _ in procs]
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        sources = [source for source, _ticks in reports]
        computes = len(list(Path(sentinel_dir).glob("compute.*")))
        assert all(s in ("computed", "disk", "memory") for s in sources)
        assert sources.count("computed") == computes
        assert computes >= 1
        # Both racers agree on the data, and exactly one entry exists.
        assert len({ticks for _source, ticks in reports}) == 1
        key = common.cache_key("bfs", SafetyMode.ATS_ONLY,
                               GPUThreading.MODERATELY, seed=99,
                               ops_scale=SCALE)
        assert common.cache_path(key).exists()


def _race_probe(barrier, cache_dir, sentinel_dir, queue):
    """Forked child: cold caches, counted computes, one cached_run_ex."""
    os.environ["REPRO_CACHE_DIR"] = cache_dir
    common._memory_cache.clear()
    real = common.run_single

    def counted(*args, **kwargs):
        fd, _path = tempfile.mkstemp(dir=sentinel_dir, prefix="compute.")
        os.close(fd)
        return real(*args, **kwargs)

    common.run_single = counted
    barrier.wait()
    result, source = common.cached_run_ex(
        "bfs",
        SafetyMode.ATS_ONLY,
        GPUThreading.MODERATELY,
        seed=99,
        ops_scale=SCALE,
    )
    queue.put((source, result.ticks))


# ---------------------------------------------------------------------------
# worker initializer: cache-dir pinning under both start methods
# ---------------------------------------------------------------------------


def _worker_init_probe(cache_dir_arg, warm, queue):
    """Child without REPRO_CACHE_DIR — the old initializer left such a
    worker unpinned (caching wherever its cwd pointed)."""
    os.environ.pop("REPRO_CACHE_DIR", None)
    sweep._worker_init(cache_dir_arg, None, warm)
    queue.put(
        (
            os.environ["REPRO_CACHE_DIR"],
            str(common._cache_dir()),
            os.environ["REPRO_WARM"],
        )
    )


class TestWorkerInitEnv:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_unset_env_worker_is_pinned(self, tmp_path, start_method):
        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{start_method} unavailable")
        ctx = multiprocessing.get_context(start_method)
        target = str((tmp_path / "pinned").resolve())
        queue = ctx.Queue()
        proc = ctx.Process(target=_worker_init_probe, args=(target, True, queue))
        proc.start()
        env_dir, effective_dir, warm = queue.get(timeout=60)
        proc.join(timeout=60)
        assert proc.exitcode == 0
        assert env_dir == target
        assert effective_dir == target
        assert warm == "1"

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_none_resolves_absolute_default(self, tmp_path, start_method):
        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{start_method} unavailable")
        ctx = multiprocessing.get_context(start_method)
        queue = ctx.Queue()
        proc = ctx.Process(target=_worker_init_probe, args=(None, False, queue))
        proc.start()
        env_dir, effective_dir, warm = queue.get(timeout=60)
        proc.join(timeout=60)
        assert proc.exitcode == 0
        assert os.path.isabs(env_dir)
        assert Path(env_dir).name == ".exp_cache"
        assert effective_dir == env_dir
        assert warm == "0"

    def test_worker_init_installs_and_clears_grid(self):
        import pickle

        cells = (_cell(),)
        blob = pickle.dumps((cells, True, False))
        try:
            sweep._worker_init(None, blob, False)
            assert sweep._grid_context == (cells, True, False)
            sweep._worker_init(None, None, False)
            assert sweep._grid_context is None
        finally:
            sweep._clear_grid()

    def test_run_cell_without_context_is_loud(self):
        sweep._clear_grid()
        with pytest.raises(RuntimeError, match="grid context"):
            sweep._run_cell(0)


# ---------------------------------------------------------------------------
# incremental reuse: repeat sweeps must not recompute
# ---------------------------------------------------------------------------


@pytest.fixture
def counted_runs(monkeypatch):
    """Count actual simulations executed by the in-process serial path."""
    computes = []
    real = common.run_single

    def counting(*args, **kwargs):
        computes.append(args[0] if args else kwargs.get("workload"))
        return real(*args, **kwargs)

    monkeypatch.setattr(common, "run_single", counting)
    return computes


class TestIncrementalReuse:
    def _grid(self):
        return [
            _cell(safety=safety)
            for safety in (
                SafetyMode.ATS_ONLY,
                SafetyMode.FULL_IOMMU,
                SafetyMode.BC_BCC,
            )
        ]

    def test_second_sweep_is_all_hits_zero_compute(self, counted_runs):
        cells = self._grid()
        first = sweep.run_sweep(cells, workers=1)
        assert first.ok
        assert first.cache_hit_rate == 0.0
        assert len(counted_runs) == len(cells)

        second = sweep.run_sweep(cells, workers=1)
        assert second.ok
        assert second.cache_hit_rate == 1.0
        assert len(counted_runs) == len(cells)  # zero new compute
        assert all(out.cache_hit for out in second.outcomes)

    def test_repeat_hits_survive_process_restart(self, counted_runs):
        """Only the disk cache survives a new process; hits must too."""
        cells = self._grid()
        sweep.run_sweep(cells, workers=1)
        baseline = len(counted_runs)
        common._memory_cache.clear()  # simulate a fresh process
        again = sweep.run_sweep(cells, workers=1)
        assert again.cache_hit_rate == 1.0
        assert len(counted_runs) == baseline
        assert all(
            out.cache_hit and not out.resumed for out in again.outcomes
        )

    def test_full_hits_after_journal_resume(self, counted_runs):
        cells = self._grid()
        with RunJournal.create("warm-resume") as journal:
            sweep.run_sweep(cells[:2], workers=1, journal=journal)
        interrupted = len(counted_runs)
        assert interrupted == 2

        common.clear_cache(disk=True)  # journal, not cache, rehydrates
        with RunJournal.open("warm-resume") as journal:
            resumed = sweep.run_sweep(cells, workers=1, journal=journal)
        assert resumed.ok
        assert resumed.resumed_cells == 2
        assert len(counted_runs) == len(cells)  # only the new cell ran

        follow_up = sweep.run_sweep(cells, workers=1)
        assert follow_up.cache_hit_rate == 1.0
        assert len(counted_runs) == len(cells)

    def test_changed_seed_invalidates_only_itself(self, counted_runs):
        cells = self._grid()
        sweep.run_sweep(cells, workers=1)
        baseline = len(counted_runs)

        changed = list(cells)
        changed[1] = dataclasses.replace(changed[1], seed=changed[1].seed + 1)
        repeat = sweep.run_sweep(changed, workers=1)
        assert len(counted_runs) == baseline + 1  # exactly one recompute
        assert repeat.cache_hit_rate == pytest.approx(
            (len(cells) - 1) / len(cells)
        )
        assert not repeat.outcomes[1].cache_hit
        assert all(
            out.cache_hit for i, out in enumerate(repeat.outcomes) if i != 1
        )


# ---------------------------------------------------------------------------
# supervisor serial hooks: the serial path brackets setup/teardown
# ---------------------------------------------------------------------------


def _identity(task):
    return task


def _boom(task):
    raise ValueError("boom")


class TestSerialHooks:
    def test_hooks_bracket_serial_path(self):
        events = []
        outcomes, mode = supervised_map(
            _identity,
            [1, 2],
            workers=1,
            serial_setup=lambda: events.append("setup"),
            serial_teardown=lambda: events.append("teardown"),
        )
        assert mode == "serial"
        assert [out.value for out in outcomes] == [1, 2]
        assert events == ["setup", "teardown"]

    def test_teardown_runs_after_failures(self):
        events = []
        outcomes, mode = supervised_map(
            _boom,
            [1],
            workers=1,
            serial_setup=lambda: events.append("setup"),
            serial_teardown=lambda: events.append("teardown"),
        )
        assert mode == "serial"
        assert not outcomes[0].ok
        assert events == ["setup", "teardown"]
